"""The HBM-PIM bank-level-MAC substrate (fully simulated).

:class:`HBMPIMArray` implements the
:class:`~repro.substrate.protocol.Substrate` protocol over the banked
structural model in :mod:`repro.hardware.banked_memory`: matrices are
block-distributed across MAC-equipped DRAM banks, every wave is an
all-bank lockstep MOV/FILL/MAC/drain command stream priced by
per-command DRAM timing, and arithmetic is digital int64 truncated to
the accumulator width — bit-identical to the crossbar substrate and to
the host oracle by construction.

The class mirrors the :class:`~repro.hardware.pim_array.PIMArray`
surface (including the crossbar-era ``crossbar_ids_of`` /
``remap_crossbar(s)`` names) so the fault injectors, the repair
controller, the chunked serving engine and the stats aggregation all
run unmodified on banks; backend-specific activity (MAC commands, row
activations, ...) lands in ``stats.extra`` instead of new fields.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import CapacityError, OperandError, ProgrammingError
from repro.hardware import bitslice
from repro.hardware.banked_memory import (
    BankedMatrixStore,
    BankLayout,
    bank_batch_timing,
    bank_instruction_counts,
    bank_program_ns,
    bank_wave_timing,
    plan_bank_layout,
)
from repro.hardware.buffer import BufferArray
from repro.hardware.config import (
    HardwareConfig,
    HBMPIMConfig,
    hbm_pim_platform,
)
from repro.hardware.endurance import EnduranceTracker
from repro.hardware.energy import EnergyModel
from repro.hardware.pim_array import (
    PIMBatchResult,
    PIMQueryResult,
    PIMStats,
)
from repro.substrate.protocol import SubstrateCapabilities
from repro.telemetry import get_recorder


def hbm_config_for(hardware: HardwareConfig) -> HBMPIMConfig:
    """The HBM-PIM stack description of a platform.

    An explicit ``hardware.hbm`` wins; otherwise a default stack is
    derived, mirroring the platform's PIM operand/accumulator widths so
    quantized datasets (including 1-bit Hamming codes) transfer between
    substrates without re-quantization.
    """
    if hardware.hbm is not None:
        return hardware.hbm
    base = HBMPIMConfig()
    if hardware.pim is not None and (
        hardware.pim.operand_bits != base.operand_bits
        or hardware.pim.accumulator_bits != base.accumulator_bits
    ):
        base = dataclasses.replace(
            base,
            operand_bits=hardware.pim.operand_bits,
            accumulator_bits=hardware.pim.accumulator_bits,
        )
    return base


class _BankedMatrix:
    """Internal record of one programmed matrix on the banks."""

    def __init__(
        self,
        matrix: np.ndarray,
        layout: BankLayout,
        bank_ids: list[int],
        bytes_per_bank: int,
        store: BankedMatrixStore | None,
    ) -> None:
        self.matrix = matrix
        self.layout = layout
        self.bank_ids = bank_ids  # block j of vectors lives on bank_ids[j]
        self.bytes_per_bank = bytes_per_bank
        self.store = store


class HBMPIMArray:
    """Bank-level-MAC HBM-PIM stack serving exact dot-product waves.

    Parameters
    ----------
    hardware:
        Platform description. The stack geometry comes from
        :func:`hbm_config_for`; defaults to
        :func:`~repro.hardware.config.hbm_pim_platform`.
    spare_banks:
        Banks withheld from data placement as a repair pool, mirroring
        the crossbar spare-pool semantics (least-worn spare chosen on
        remap, retired ids never reused).
    reference:
        Execute every wave through the MOV/FILL/MAC instruction-stream
        oracle (:meth:`BankedMatrixStore.dot_reference`) instead of the
        fused int64 matmul. Bit-identical, much slower to simulate.
    simulate_cells:
        Accepted for factory symmetry with the crossbar backend; the
        instruction-level oracle *is* this substrate's cell-faithful
        mode, so the flag selects the same path as ``reference``.
    """

    unit_name = "bank"

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        spare_banks: int = 0,
        reference: bool = False,
        simulate_cells: bool = False,
    ) -> None:
        self.hardware = (
            hardware if hardware is not None else hbm_pim_platform()
        )
        self.config: HBMPIMConfig = hbm_config_for(self.hardware)
        self.reference = bool(reference or simulate_cells)
        self.buffer = BufferArray(self.hardware.memory)
        self.endurance = EnduranceTracker(self.config.endurance)
        self.stats = PIMStats(backend="hbm_pim")
        self._matrices: dict[str, _BankedMatrix] = {}
        self.spare_banks = int(spare_banks)
        if self.spare_banks >= self.config.total_banks:
            raise CapacityError(
                f"{self.spare_banks} spare banks leave no data banks "
                f"(stack has {self.config.total_banks})"
            )
        # spares take the first physical ids, like the crossbar pool
        self._spare_ids: list[int] = list(range(self.spare_banks))
        self._data_bank_ids: list[int] = list(
            range(self.spare_banks, self.config.total_banks)
        )
        self._bank_bytes_used: dict[int, int] = {
            b: 0 for b in self._data_bank_ids
        }
        self.data_capacity = len(self._data_bank_ids)
        self.remap_table: dict[int, int] = {}
        self._retired_ids: set[int] = set()

    # alias kept for call sites written against the crossbar name
    @property
    def spare_crossbars(self) -> int:
        return self.spare_banks

    # ------------------------------------------------------------------
    # programming (offline stage)
    # ------------------------------------------------------------------
    def program_matrix(
        self, name: str, matrix: np.ndarray, input_bits: int | None = None
    ) -> BankLayout:
        """Program a named ``(n_vectors, dims)`` integer matrix.

        Vectors are block-distributed over the least-loaded data banks;
        programming is plain DRAM writes (burst-paced, rows opened
        once), so it is orders of magnitude cheaper than crossbar
        SET/RESET programming — the asymmetry the cost router exploits
        for churny placements.
        """
        if name in self._matrices:
            raise ProgrammingError(
                f"matrix {name!r} already programmed; reset it first"
            )
        matrix = np.ascontiguousarray(matrix)
        if matrix.ndim != 2:
            raise OperandError("expected a 2-D (vectors x dims) matrix")
        bitslice.check_non_negative_integers(matrix, self.config.operand_bits)
        n_vectors, dims = matrix.shape
        layout = plan_bank_layout(
            n_vectors, dims, self.config, data_banks=len(self._data_bank_ids)
        )
        bytes_per_bank = (
            layout.vectors_per_bank
            * layout.bursts_per_vector
            * self.config.burst_bytes
        )
        # least-loaded banks first; ties resolve by physical id so the
        # placement is deterministic run to run
        candidates = sorted(
            self._data_bank_ids,
            key=lambda b: (self._bank_bytes_used[b], b),
        )[: layout.n_data_banks]
        over = [
            b
            for b in candidates
            if self._bank_bytes_used[b] + bytes_per_bank
            > self.config.bank_bytes
        ]
        if over:
            raise CapacityError(
                f"programming {name!r} would overflow {len(over)} banks "
                f"(need {bytes_per_bank} B/bank on {layout.n_data_banks} "
                "banks)"
            )
        bank_ids = sorted(candidates)
        for b in bank_ids:
            self._bank_bytes_used[b] += bytes_per_bank
            self.endurance.record_write(b)
        store = None
        matrix64 = matrix.astype(np.int64)
        if self.reference:
            store = BankedMatrixStore(matrix64, layout, self.config)
        self._matrices[name] = _BankedMatrix(
            matrix64, layout, bank_ids, bytes_per_bank, store
        )
        self.stats.crossbars_used += layout.n_data_banks
        self.stats.matrices[name] = layout
        program_ns = bank_program_ns(layout, self.config)
        self.stats.programming_time_ns += program_ns
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.program", "pim_program",
                matrix=name, vectors=n_vectors, dims=dims,
                crossbars=layout.n_data_banks, substrate="hbm_pim",
            ):
                tele.advance(program_ns)
            tele.metrics.counter("pim.programmed_crossbars").add(
                layout.n_data_banks
            )
        return layout

    def reset_matrix(self, name: str) -> None:
        """Erase a programmed matrix, freeing its bank bytes."""
        record = self._matrices.pop(name, None)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        for b in record.bank_ids:
            if b in self._bank_bytes_used:
                self._bank_bytes_used[b] -= record.bytes_per_bank
        self.stats.crossbars_used -= record.layout.n_data_banks
        del self.stats.matrices[name]
        self.stats.per_matrix.pop(name, None)
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("pim.matrix_resets").add(1)

    def layouts(self) -> dict[str, BankLayout]:
        """Layouts of all programmed matrices."""
        return {name: rec.layout for name, rec in self._matrices.items()}

    def matrix_of(self, name: str) -> np.ndarray:
        """The integer matrix currently programmed under ``name``."""
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        return record.matrix

    # ------------------------------------------------------------------
    # capacity / placement
    # ------------------------------------------------------------------
    def units_needed(self, n_vectors: int, dims: int) -> int:
        """Banks a fresh ``(n_vectors, dims)`` matrix would spread over."""
        layout = plan_bank_layout(
            n_vectors, dims, self.config, data_banks=len(self._data_bank_ids)
        )
        return layout.n_data_banks

    def fits_matrix(
        self, n_vectors: int, dims: int, exclude: str | None = None
    ) -> bool:
        """Would a ``(n_vectors, dims)`` matrix fit alongside current data?"""
        try:
            layout = plan_bank_layout(
                n_vectors, dims, self.config,
                data_banks=len(self._data_bank_ids),
            )
        except CapacityError:
            return False
        need = (
            layout.vectors_per_bank
            * layout.bursts_per_vector
            * self.config.burst_bytes
        )
        usage = dict(self._bank_bytes_used)
        if exclude is not None and exclude in self._matrices:
            rec = self._matrices[exclude]
            for b in rec.bank_ids:
                usage[b] -= rec.bytes_per_bank
        loads = sorted(usage[b] for b in self._data_bank_ids)
        return all(
            load + need <= self.config.bank_bytes
            for load in loads[: layout.n_data_banks]
        )

    # ------------------------------------------------------------------
    # spare pool + remap table (repair layer)
    # ------------------------------------------------------------------
    @property
    def spares_remaining(self) -> int:
        """Spare banks still available for remapping."""
        return len(self._spare_ids)

    def unit_ids_of(self, name: str) -> list[int]:
        """Physical bank ids currently backing matrix ``name``."""
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        return list(record.bank_ids)

    def crossbar_ids_of(self, name: str) -> list[int]:
        """Crossbar-era alias of :meth:`unit_ids_of` (repair layer)."""
        return self.unit_ids_of(name)

    def remap_crossbar(self, old_id: int) -> tuple[int, float]:
        """Remap one flagged bank onto the least-worn spare.

        Every matrix with vectors resident on ``old_id`` is rewritten
        onto the spare (DRAM burst writes, rows reopened); ``old_id`` is
        retired permanently. Returns ``(spare_id, reprogram_ns)``.
        """
        owners = [
            (name, rec)
            for name, rec in self._matrices.items()
            if old_id in rec.bank_ids
        ]
        if not owners:
            raise ProgrammingError(
                f"bank {old_id} backs no programmed matrix"
            )
        if not self._spare_ids:
            raise CapacityError(
                f"spare pool exhausted remapping bank {old_id}"
            )
        spare = min(
            self._spare_ids,
            key=lambda u: (self.endurance.write_count(u), u),
        )
        self._spare_ids.remove(spare)
        self.endurance.record_write(spare)
        cfg = self.config
        total_ns = 0.0
        moved_bytes = 0
        for name, rec in owners:
            rec.bank_ids[rec.bank_ids.index(old_id)] = spare
            moved_bytes += rec.bytes_per_bank
            bursts = rec.layout.vectors_per_bank * rec.layout.bursts_per_vector
            cycles = (
                rec.layout.rows_touched_per_bank
                * (cfg.trp_cycles + cfg.trcd_cycles)
                + bursts * cfg.write_burst_cycles
            )
            total_ns += cycles * cfg.tck_ns
        # the spare joins the data pool carrying the moved bytes; the
        # retired bank leaves it (all residents were just moved off)
        self._bank_bytes_used[spare] = (
            self._bank_bytes_used.get(spare, 0) + moved_bytes
        )
        self._bank_bytes_used.pop(old_id, None)
        if old_id in self._data_bank_ids:
            self._data_bank_ids.remove(old_id)
        if spare not in self._data_bank_ids:
            self._data_bank_ids.append(spare)
            self._data_bank_ids.sort()
        self.remap_table[old_id] = spare
        self._retired_ids.add(old_id)
        self.stats.programming_time_ns += total_ns
        self.stats.remaps += 1
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.remap", "pim_program",
                matrix=owners[0][0], old_crossbar=old_id, spare=spare,
                substrate="hbm_pim",
            ):
                tele.advance(total_ns)
            tele.metrics.counter("pim.remaps").add(1)
            tele.metrics.gauge("pim.spares_remaining").set(
                len(self._spare_ids)
            )
        return spare, total_ns

    def remap_crossbars(self, old_ids: list[int]) -> tuple[list[int], float]:
        """Remap several banks; returns the spares and total latency."""
        spares: list[int] = []
        total_ns = 0.0
        for old_id in old_ids:
            spare, ns = self.remap_crossbar(old_id)
            spares.append(spare)
            total_ns += ns
        return spares, total_ns

    def remap_unit(self, old_id: int) -> tuple[int, float]:
        """Substrate-neutral alias of :meth:`remap_crossbar`."""
        return self.remap_crossbar(old_id)

    def remap_units(self, old_ids: list[int]) -> tuple[list[int], float]:
        """Substrate-neutral alias of :meth:`remap_crossbars`."""
        return self.remap_crossbars(old_ids)

    def wear_report(self, top: int | None = None) -> dict:
        """Endurance wear summary of this stack's banks."""
        return self.endurance.wear_report(top=top)

    # ------------------------------------------------------------------
    # querying (online stage)
    # ------------------------------------------------------------------
    def _record(self, name: str) -> _BankedMatrix:
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        return record

    def _values(
        self, record: _BankedMatrix, vectors: np.ndarray
    ) -> np.ndarray:
        """Exact ``(B, n_vectors)`` accumulators, truncated.

        Fast path: one int64 matmul. Reference path: the per-bank
        burst-level instruction stream. Identical bit for bit — the
        property suite holds this line for the banked substrate just as
        the fusion suite does for the crossbars.
        """
        if record.store is not None:
            raw = record.store.dot_reference(vectors)
        else:
            raw = vectors.astype(np.int64) @ record.matrix.T
        return bitslice.truncate_result(raw, self.config.accumulator_bits)

    def _check_queries(
        self, record: _BankedMatrix, vectors: np.ndarray, input_bits
    ) -> int:
        bits = (
            input_bits if input_bits is not None else self.config.operand_bits
        )
        bitslice.check_non_negative_integers(vectors, bits)
        if vectors.shape[-1] != record.layout.dims:
            raise OperandError(
                f"queries must have length {record.layout.dims}"
            )
        return bits

    def _charge_extra(self, layout: BankLayout, n_queries: int) -> None:
        counts = bank_instruction_counts(layout, n_queries)
        banks = layout.n_data_banks
        self.stats.add_extra("mac_commands", counts["mac_commands"] * banks)
        self.stats.add_extra("mov_commands", counts["mov_commands"] * banks)
        self.stats.add_extra("fill_commands", counts["fill_commands"] * banks)
        self.stats.add_extra(
            "row_activations", counts["row_activations"] * banks
        )

    def query(
        self, name: str, vector: np.ndarray, input_bits: int | None = None
    ) -> PIMQueryResult:
        """Fire one all-bank wave for a single query vector."""
        record = self._record(name)
        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise OperandError(
                f"query must be a vector of length {record.layout.dims}"
            )
        self._check_queries(record, vector, input_bits)
        values = self._values(record, vector[np.newaxis, :])[0]
        timing = bank_wave_timing(record.layout, self.config, self.hardware)
        if values.nbytes <= self.buffer.free_bytes:
            self.buffer.push(values)
            self.buffer.pop()  # the host drains synchronously
        self.stats.waves += 1
        self.stats.pim_time_ns += timing.total_ns
        self.stats.results_produced += int(values.shape[0])
        state = self.stats.matrix_state(name)
        state.waves += 1
        state.pim_time_ns += timing.total_ns
        self._charge_extra(record.layout, 1)
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.wave", "pim_dispatch",
                matrix=name, queries=1, results=int(values.shape[0]),
                input_cycles=timing.input_cycles,
                gather_cycles=timing.gather_cycles,
                pipeline_cycles=timing.pipeline_cycles,
                crossbar_ns=timing.crossbar_ns,
                buffer_ns=timing.buffer_ns,
                substrate="hbm_pim",
            ):
                tele.advance(timing.total_ns)
        return PIMQueryResult(values=values, timing=timing)

    def query_many(
        self,
        name: str,
        vectors: np.ndarray,
        input_bits: int | None = None,
    ) -> PIMQueryResult:
        """One wave per row of ``vectors``, each charged separately."""
        record = self._record(name)
        vectors = np.atleast_2d(np.asarray(vectors))
        self._check_queries(record, vectors, input_bits)
        values = self._values(record, vectors)
        timing = bank_wave_timing(record.layout, self.config, self.hardware)
        n_queries = vectors.shape[0]
        self.stats.waves += n_queries
        self.stats.pim_time_ns += timing.total_ns * n_queries
        self.stats.results_produced += int(values.size)
        state = self.stats.matrix_state(name)
        state.waves += n_queries
        state.pim_time_ns += timing.total_ns * n_queries
        self._charge_extra(record.layout, n_queries)
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.wave_train", "pim_dispatch",
                matrix=name, queries=n_queries, results=int(values.size),
                crossbar_ns=timing.crossbar_ns * n_queries,
                buffer_ns=timing.buffer_ns * n_queries,
                substrate="hbm_pim",
            ):
                tele.advance(timing.total_ns * n_queries)
        return PIMQueryResult(values=values, timing=timing)

    def query_batch(
        self,
        name: str,
        vectors: np.ndarray,
        input_bits: int | None = None,
    ) -> PIMBatchResult:
        """All rows of ``vectors`` in one dispatch; rows stay open.

        The batch amortizes the row-activation setup across queries —
        the banked analogue of the crossbar's pipeline-setup
        amortization — so ``batch_saved_ns`` accounts the same way.
        """
        record = self._record(name)
        vectors = np.atleast_2d(np.asarray(vectors))
        self._check_queries(record, vectors, input_bits)
        values = self._values(record, vectors)
        n_queries = vectors.shape[0]
        timing = bank_batch_timing(
            record.layout, self.config, self.hardware, n_queries
        )
        single = bank_wave_timing(record.layout, self.config, self.hardware)
        self.buffer.pulse_rows(values)  # the host drains synchronously
        saved_ns = n_queries * single.total_ns - timing.total_ns
        self.stats.waves += n_queries
        self.stats.batches += 1
        self.stats.batched_queries += n_queries
        self.stats.pim_time_ns += timing.total_ns
        self.stats.batch_saved_ns += saved_ns
        self.stats.results_produced += int(values.size)
        state = self.stats.matrix_state(name)
        state.waves += n_queries
        state.batches += 1
        state.batched_queries += n_queries
        state.pim_time_ns += timing.total_ns
        self._charge_extra(record.layout, n_queries)
        tele = get_recorder()
        if tele.enabled:
            tele.begin_span(
                "pim.batch_wave", "pim_dispatch",
                matrix=name, queries=n_queries, results=int(values.size),
                saved_ns=saved_ns,
                setup_cycles=timing.setup_cycles,
                per_query_cycles=timing.per_query_cycles,
                crossbar_ns=timing.crossbar_ns,
                buffer_ns=timing.buffer_ns,
                substrate="hbm_pim",
            )
            tele.advance(timing.total_ns)
            tele.end_span()
        return PIMBatchResult(values=values, timing=timing)

    # ------------------------------------------------------------------
    def total_pim_time_ns(self) -> float:
        """Cumulative simulated PIM time (waves only)."""
        return self.stats.pim_time_ns

    def capabilities(self) -> "HBMPIMCapabilities":
        """The HBM-PIM capability descriptor (cost-prediction hooks)."""
        return HBMPIMCapabilities(self.hardware)


class HBMPIMCapabilities(SubstrateCapabilities):
    """Cost model of the bank-level-MAC stack.

    Latency scales with resident vectors per bank times bursts per
    vector (plus a GRF-pressure penalty past ``grf_entries`` bursts),
    while programming is cheap DRAM writes — the opposite shape of the
    crossbar model, which is what makes routing interesting.
    """

    name = "hbm_pim"
    unit_name = "bank"
    memory_device = "dram"
    supports_cell_simulation = True  # the instruction-stream oracle

    def __init__(
        self, hardware: HardwareConfig | None = None, energy=None
    ) -> None:
        super().__init__(
            hardware if hardware is not None else hbm_pim_platform()
        )
        self.config = hbm_config_for(self.hardware)
        self.energy = energy if energy is not None else EnergyModel()

    def _layout(self, n_vectors: int, dims: int, spare_units: int = 0):
        return plan_bank_layout(
            n_vectors, dims, self.config,
            data_banks=self.config.total_banks - spare_units,
        )

    def units_needed(self, n_vectors: int, dims: int) -> int:
        return self._layout(n_vectors, dims).n_data_banks

    def fits_fresh(
        self, n_vectors: int, dims: int, spare_units: int = 0
    ) -> bool:
        try:
            self._layout(n_vectors, dims, spare_units)
        except CapacityError:
            return False
        return True

    def predict_query_ns(
        self,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        layout = self._layout(n_vectors, dims)
        return bank_batch_timing(
            layout, self.config, self.hardware, n_queries
        ).total_ns

    def predict_program_ns(self, n_vectors: int, dims: int) -> float:
        return bank_program_ns(self._layout(n_vectors, dims), self.config)

    def predict_query_energy_j(
        self,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        layout = self._layout(n_vectors, dims)
        return self.energy.hbm_wave_energy_j(layout, n_queries)

    def predict_program_energy_j(self, n_vectors: int, dims: int) -> float:
        return self.energy.hbm_programming_energy_j(
            self._layout(n_vectors, dims)
        )

    @property
    def endurance(self) -> float:
        return self.config.endurance


def build_hbm_pim(
    hardware: HardwareConfig | None = None,
    spare_units: int = 0,
    reference: bool = False,
    simulate_cells: bool = False,
) -> HBMPIMArray:
    """Registry factory for the ``"hbm_pim"`` backend."""
    return HBMPIMArray(
        hardware=hardware,
        spare_banks=spare_units,
        reference=reference,
        simulate_cells=simulate_cells,
    )
