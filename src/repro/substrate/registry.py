"""Substrate registry: name → (device factory, capability descriptor).

The registry is the single seam between substrate-agnostic layers and
concrete backends: serving, the CLI and the benchmarks create devices
with :func:`create_substrate` and price workloads with
:func:`substrate_capabilities`, never importing a backend module
directly. Third-party backends register with
:func:`register_substrate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, ProgrammingError
from repro.substrate.protocol import Substrate, SubstrateCapabilities


@dataclass(frozen=True)
class SubstrateSpec:
    """One registered backend.

    ``factory(hardware, spare_units, reference, simulate_cells)`` builds
    a live device; ``capabilities(hardware)`` builds the planner-facing
    descriptor without touching a device.
    """

    name: str
    factory: Callable[..., Substrate]
    capabilities: Callable[..., SubstrateCapabilities]


_REGISTRY: dict[str, SubstrateSpec] = {}


def register_substrate(spec: SubstrateSpec, replace: bool = False) -> None:
    """Register a backend under its spec name.

    Raises :class:`ProgrammingError` on a duplicate name unless
    ``replace=True`` (tests swapping in instrumented backends).
    """
    if spec.name in _REGISTRY and not replace:
        raise ProgrammingError(
            f"substrate {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec


def available_substrates() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def _spec(name: str) -> SubstrateSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown substrate {name!r}; registered: "
            f"{', '.join(available_substrates())}"
        )
    return spec


def create_substrate(
    name: str,
    hardware=None,
    spare_units: int = 0,
    reference: bool = False,
    simulate_cells: bool = False,
) -> Substrate:
    """Build a live device of the named backend."""
    return _spec(name).factory(
        hardware=hardware,
        spare_units=spare_units,
        reference=reference,
        simulate_cells=simulate_cells,
    )


def substrate_capabilities(name: str, hardware=None) -> SubstrateCapabilities:
    """The capability descriptor of the named backend."""
    return _spec(name).capabilities(hardware)


def _register_builtins() -> None:
    from repro.substrate.crossbar import CrossbarCapabilities, build_crossbar
    from repro.substrate.hbm_pim import HBMPIMCapabilities, build_hbm_pim

    register_substrate(
        SubstrateSpec(
            name="crossbar",
            factory=build_crossbar,
            capabilities=CrossbarCapabilities,
        ),
        replace=True,
    )
    register_substrate(
        SubstrateSpec(
            name="hbm_pim",
            factory=build_hbm_pim,
            capabilities=HBMPIMCapabilities,
        ),
        replace=True,
    )


_register_builtins()
