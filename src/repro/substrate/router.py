"""Planner cost-router: pick the winning substrate per query batch.

Replicas of a chunk may live on unlike substrates. For each dispatch
the router prices the batch on every candidate replica's backend using
the capability descriptors (analytic predictions — no device is
touched) and ranks the replicas cheapest first; the serving layer
prefers that order, falling back down the ranking on faults exactly as
it always fell back through its round-robin order. Exactness is
untouched — routing only permutes *which replica answers first*.

Predictions are memoized per ``(substrate, n_vectors, dims, n_queries,
input_bits)``: serving dispatches the same shapes over and over, and
the router sits on the dispatch path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.substrate.registry import substrate_capabilities


@dataclass(frozen=True)
class RoutingDecision:
    """One routed dispatch: candidates ranked cheapest-first."""

    chunk: int
    n_queries: int
    #: ``(shard_id, substrate, predicted_ns)`` cheapest first
    ranked: tuple[tuple[int, str, float], ...]

    @property
    def winner(self) -> int:
        """Shard id the router wants to answer this dispatch."""
        return self.ranked[0][0]

    @property
    def winner_substrate(self) -> str:
        return self.ranked[0][1]

    def to_dict(self) -> dict:
        """JSON-friendly form for the routing-decision artifact."""
        return {
            "chunk": self.chunk,
            "n_queries": self.n_queries,
            "winner": self.winner,
            "winner_substrate": self.winner_substrate,
            "ranked": [
                {"shard": s, "substrate": b, "predicted_ns": ns}
                for s, b, ns in self.ranked
            ],
        }


class CostRouter:
    """Rank candidate replicas by predicted per-substrate cost.

    Parameters
    ----------
    hardware:
        Platform the capability descriptors price against.
    objective:
        ``"latency"`` ranks by predicted batch ns, ``"energy"`` by
        predicted batch Joules. Ties (identical predictions — e.g. two
        replicas on the same backend) break toward the lower shard id,
        keeping routed serving deterministic.
    observed_weight:
        Blend factor for measured service times under the latency
        objective: per-replica cost becomes ``(1 - w) * predicted +
        w * observed_ewma`` when the caller passes an observation for
        that shard. ``0.0`` (the default) keeps pure capability-model
        routing; the energy objective never blends (no energy is
        observed at serve time).
    """

    def __init__(
        self,
        hardware=None,
        objective: str = "latency",
        observed_weight: float = 0.0,
    ) -> None:
        if objective not in ("latency", "energy"):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown routing objective {objective!r}"
            )
        if not 0.0 <= observed_weight <= 1.0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"observed_weight must lie in [0, 1] "
                f"(got {observed_weight})"
            )
        self.hardware = hardware
        self.objective = objective
        self.observed_weight = float(observed_weight)
        self._caps: dict[str, object] = {}
        self._predictions: dict[tuple, float] = {}
        self.decisions = 0

    def _capabilities(self, substrate: str):
        caps = self._caps.get(substrate)
        if caps is None:
            caps = substrate_capabilities(substrate, self.hardware)
            self._caps[substrate] = caps
        return caps

    def predict(
        self,
        substrate: str,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        """Predicted cost of one batch under the routing objective."""
        key = (substrate, n_vectors, dims, n_queries, input_bits)
        cost = self._predictions.get(key)
        if cost is None:
            caps = self._capabilities(substrate)
            if self.objective == "latency":
                cost = caps.predict_query_ns(
                    n_vectors, dims, n_queries, input_bits
                )
            else:
                cost = caps.predict_query_energy_j(
                    n_vectors, dims, n_queries, input_bits
                )
            self._predictions[key] = cost
        return cost

    def order(
        self,
        chunk: int,
        candidates: list[tuple[int, str, int, int]],
        n_queries: int = 1,
        input_bits: int | None = None,
        observed: "dict[int, float] | None" = None,
    ) -> RoutingDecision:
        """Rank ``(shard_id, substrate, n_vectors, dims)`` candidates.

        Returns the full ranking, not just the winner: callers keep the
        tail as the failover order, so a dead winner degrades to the
        next-cheapest replica instead of an arbitrary one.

        ``observed`` maps shard id -> measured per-dispatch service-time
        EWMA in ns; when present (and ``observed_weight > 0`` under the
        latency objective) each replica's cost blends the capability
        prediction with its measured history, so a shard that *should*
        be fast but is observed slow loses the ranking it would win on
        paper.
        """
        blend = (
            self.observed_weight
            if self.objective == "latency" and observed
            else 0.0
        )

        def _cost(shard: int, substrate: str, n_vectors: int, dims: int):
            predicted = self.predict(
                substrate, n_vectors, dims, n_queries, input_bits
            )
            seen = observed.get(shard) if blend else None
            if seen is None or seen <= 0.0:
                return predicted
            return (1.0 - blend) * predicted + blend * seen

        ranked = sorted(
            (
                (shard, substrate, _cost(shard, substrate, n, d))
                for shard, substrate, n, d in candidates
            ),
            key=lambda item: (item[2], item[0]),
        )
        self.decisions += 1
        return RoutingDecision(
            chunk=chunk, n_queries=n_queries, ranked=tuple(ranked)
        )
