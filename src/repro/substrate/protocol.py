"""The ``Substrate`` protocol and its capability descriptor.

A *substrate* is anything that can hold named integer matrices and
evaluate dot-product waves against them under a simulated cost model.
The protocol below is extracted verbatim from the surface the mining,
serving, fault and repair layers already used on
:class:`~repro.hardware.pim_array.PIMArray`; any class implementing it
(structurally — no inheritance required) can serve queries, be wrapped
by the fault injectors, be scrubbed and repaired, and aggregate into
fleet-wide :class:`~repro.hardware.pim_array.PIMStats`.

The :class:`SubstrateCapabilities` descriptor is the *planner-facing*
half: it predicts query/programming latency and energy for a workload
shape without instantiating (or touching) a device, which is what the
cost router uses to pick a backend per query batch.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Substrate(Protocol):
    """Structural interface of one memory-side compute device.

    Implementations: :class:`~repro.hardware.pim_array.PIMArray`
    (``"crossbar"``) and
    :class:`~repro.substrate.hbm_pim.HBMPIMArray` (``"hbm_pim"``).

    Conventions every implementation must honour — the exactness and
    repair invariants lean on them:

    * arithmetic is exact integer dot products truncated to
      ``config.accumulator_bits`` (``bitslice.truncate_result``), so
      answers are independent of the backend;
    * ``stats`` is a :class:`~repro.hardware.pim_array.PIMStats` whose
      ``backend`` field names the substrate and whose backend-specific
      counters live in ``stats.extra``;
    * physical units (crossbars, banks, ...) are integers; the
      crossbar-era ``crossbar_ids_of``/``remap_crossbar(s)`` names are
      kept as aliases so the repair layer runs unmodified on any
      backend;
    * ``reference=True`` construction selects a slow instruction-level
      oracle that is bit-identical to the fast path.
    """

    unit_name: str
    stats: object
    endurance: object
    spares_remaining: int

    # -- programming (offline stage) --
    def program_matrix(
        self, name: str, matrix: np.ndarray, input_bits: int | None = None
    ): ...

    def reset_matrix(self, name: str) -> None: ...

    def layouts(self) -> dict: ...

    def matrix_of(self, name: str) -> np.ndarray: ...

    # -- querying (online stage) --
    def query(
        self, name: str, vector: np.ndarray, input_bits: int | None = None
    ): ...

    def query_many(
        self, name: str, vectors: np.ndarray, input_bits: int | None = None
    ): ...

    def query_batch(
        self, name: str, vectors: np.ndarray, input_bits: int | None = None
    ): ...

    def total_pim_time_ns(self) -> float: ...

    # -- capacity / placement --
    def units_needed(self, n_vectors: int, dims: int) -> int: ...

    def fits_matrix(
        self, n_vectors: int, dims: int, exclude: str | None = None
    ) -> bool: ...

    # -- endurance + spare/remap hooks (repair layer) --
    def unit_ids_of(self, name: str) -> list[int]: ...

    def crossbar_ids_of(self, name: str) -> list[int]: ...

    def remap_crossbar(self, old_id: int) -> tuple[int, float]: ...

    def remap_crossbars(
        self, old_ids: list[int]
    ) -> tuple[list[int], float]: ...

    def wear_report(self, top: int | None = None) -> dict: ...

    # -- planner surface --
    def capabilities(self) -> "SubstrateCapabilities": ...


class SubstrateCapabilities:
    """Planner-facing descriptor of one substrate's cost model.

    Subclasses predict latency and energy analytically from the
    workload shape ``(n_vectors, dims, n_queries)``; the predictions
    must agree with what the live device would charge (the property
    suite pins router predictions against device accounting), because
    the cost router trusts them to pick a backend per batch.
    """

    #: registry name of the backend this descriptor prices
    name: str = "abstract"
    #: what the backend calls one physical unit
    unit_name: str = "unit"
    #: device class of the backing storage ("reram", "dram", ...) —
    #: selects the MemoryArray write-slowdown when staging side data
    memory_device: str = "dram"
    #: whether the backend offers a cell/instruction-faithful slow mode
    supports_cell_simulation: bool = False

    def __init__(self, hardware) -> None:
        self.hardware = hardware

    # -- capacity --
    def units_needed(self, n_vectors: int, dims: int) -> int:
        raise NotImplementedError

    def fits_fresh(
        self, n_vectors: int, dims: int, spare_units: int = 0
    ) -> bool:
        """Would a fresh matrix fit on an empty device of this kind?"""
        raise NotImplementedError

    # -- latency --
    def predict_query_ns(
        self,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        """Simulated ns of one batched wave of ``n_queries`` queries."""
        raise NotImplementedError

    def predict_program_ns(self, n_vectors: int, dims: int) -> float:
        """Simulated ns to program a fresh matrix."""
        raise NotImplementedError

    # -- energy --
    def predict_query_energy_j(
        self,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        raise NotImplementedError

    def predict_program_energy_j(self, n_vectors: int, dims: int) -> float:
        raise NotImplementedError

    #: wear budget per unit (writes before EnduranceExceededError)
    @property
    def endurance(self) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        """Flat summary for reports and routing-decision artifacts."""
        return {
            "name": self.name,
            "unit_name": self.unit_name,
            "memory_device": self.memory_device,
            "supports_cell_simulation": self.supports_cell_simulation,
            "endurance": self.endurance,
        }
