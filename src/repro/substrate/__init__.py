"""Pluggable PIM substrates.

The mining and serving layers talk to memory-side compute through the
:class:`~repro.substrate.protocol.Substrate` protocol — program integer
matrices, fire dot-product waves, account simulated time/energy/wear —
rather than to one concrete device. Two backends ship registered:

* ``"crossbar"`` — the paper's analog ReRAM crossbar array
  (:class:`~repro.hardware.pim_array.PIMArray`), bit-sliced DAC/ADC
  waves, expensive SET/RESET programming, flat per-wave latency;
* ``"hbm_pim"`` — a commercial-style HBM-PIM stack
  (:class:`~repro.substrate.hbm_pim.HBMPIMArray`), one digital MAC per
  DRAM bank fed by burst reads under per-command DRAM timing, cheap
  programming, latency that scales with resident vectors per bank.

Both compute exact integer dot products (mod ``2**accumulator_bits``),
so every mining task is bit-identical across backends and any mixed
placement — only the cost model differs, which is what the
:class:`~repro.substrate.router.CostRouter` exploits.
"""

from repro.substrate.protocol import Substrate, SubstrateCapabilities
from repro.substrate.registry import (
    SubstrateSpec,
    available_substrates,
    create_substrate,
    register_substrate,
    substrate_capabilities,
)
from repro.substrate.router import CostRouter, RoutingDecision

__all__ = [
    "Substrate",
    "SubstrateCapabilities",
    "SubstrateSpec",
    "available_substrates",
    "create_substrate",
    "register_substrate",
    "substrate_capabilities",
    "CostRouter",
    "RoutingDecision",
]
