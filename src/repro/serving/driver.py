"""Workload generation for the serving layer: arrivals plus tenants.

:class:`WorkloadDriver` turns the repo's query-difficulty generators
(:mod:`repro.data.workloads`) into timed request traces:

* **open loop** — arrivals are independent of service: Poisson (i.i.d.
  exponential gaps) or bursty (geometric bursts of near-simultaneous
  arrivals separated by exponential gaps, preserving the mean rate).
  The trace is generated up front from one seeded RNG, so the same
  driver settings always produce the same offered load — the property
  every determinism test and the throughput bench relies on.
* **closed loop** — a fixed population of clients, each submitting its
  next request one think time after its previous response; arrival
  times therefore depend on service times, which is the standard model
  for latency-vs-concurrency curves.

Tenant identity, query class, ``k`` and deadlines all come from the
:class:`~repro.serving.service.TenantSpec` mix.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.workloads import make_workload
from repro.errors import ServingError, WatchdogTimeoutError
from repro.serving.service import QueryService, Request, TenantSpec

ARRIVALS = ("poisson", "bursty")


class WorkloadDriver:
    """Generate deterministic request traces against one dataset.

    Parameters
    ----------
    data:
        The served dataset (queries are derived from it so tenants can
        exercise the member/near/far/uniform/adversarial spectrum).
    tenants:
        The tenant mix; ``weight`` sets each tenant's traffic share and
        ``workload``/``k``/``deadline_ns`` shape its requests.
    seed:
        Master seed; all draws flow from one generator.
    pool_size:
        Pre-generated queries per tenant, cycled through by the trace.
    """

    def __init__(
        self,
        data: np.ndarray,
        tenants: list[TenantSpec],
        seed: int = 0,
        pool_size: int = 64,
    ) -> None:
        if not tenants:
            raise ServingError("the tenant mix is empty")
        self.data = np.asarray(data, dtype=np.float64)
        self.tenants = list(tenants)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        weights = np.array([t.weight for t in tenants], dtype=np.float64)
        if weights.min() < 0 or weights.sum() <= 0:
            raise ServingError("tenant weights must be non-negative")
        self._weights = weights / weights.sum()
        self._pools = {
            t.name: make_workload(
                self.data, t.workload, n_queries=pool_size,
                seed=seed + 1000 + i,
            )
            for i, t in enumerate(tenants)
        }
        self._served = {t.name: 0 for t in tenants}
        self._seq = 0

    # ------------------------------------------------------------------
    def _next_request(self, arrival_ns: float) -> Request:
        pick = int(
            self._rng.choice(len(self.tenants), p=self._weights)
        )
        spec = self.tenants[pick]
        pool = self._pools[spec.name]
        cursor = self._served[spec.name]
        self._served[spec.name] = cursor + 1
        query = pool[cursor % len(pool)]
        request = Request(
            request_id=f"r{self._seq:06d}",
            tenant=spec.name,
            query=query,
            k=spec.k,
            arrival_ns=arrival_ns,
            deadline_ns=(
                arrival_ns + spec.deadline_ns
                if spec.deadline_ns is not None
                else None
            ),
        )
        self._seq += 1
        return request

    def open_loop(
        self,
        rate_qps: float,
        n_requests: int,
        arrival: str = "poisson",
        burstiness: float = 4.0,
    ) -> list[Request]:
        """An offered-load trace of ``n_requests`` timed arrivals.

        ``rate_qps`` is the *mean* rate in simulated queries/second for
        both arrival processes; ``burstiness`` is the mean burst size of
        the bursty process (its gaps stretch by the same factor, so the
        long-run rate stays ``rate_qps``).
        """
        if rate_qps <= 0:
            raise ServingError("rate_qps must be positive")
        if n_requests < 1:
            raise ServingError("n_requests must be >= 1")
        if arrival not in ARRIVALS:
            raise ServingError(
                f"unknown arrival process {arrival!r}; one of {ARRIVALS}"
            )
        mean_gap_ns = 1e9 / rate_qps
        requests: list[Request] = []
        now = 0.0
        if arrival == "poisson":
            for _ in range(n_requests):
                now += float(self._rng.exponential(mean_gap_ns))
                requests.append(self._next_request(now))
            return requests
        if burstiness < 1.0:
            raise ServingError("burstiness must be >= 1")
        while len(requests) < n_requests:
            now += float(
                self._rng.exponential(mean_gap_ns * burstiness)
            )
            size = int(self._rng.geometric(1.0 / burstiness))
            size = min(size, n_requests - len(requests))
            for j in range(size):
                # members of a burst land back to back (1 us apart)
                requests.append(self._next_request(now + j * 1_000.0))
        return requests

    def closed_loop(
        self,
        service: QueryService,
        n_clients: int,
        n_requests: int,
        think_ns: float = 1e6,
    ) -> list:
        """Drive ``service`` with a closed population of clients.

        Each client keeps one request outstanding: submit, wait for the
        response, think, repeat. Clients whose ready times coincide are
        submitted together so the service can batch them. Returns the
        service's terminal responses.
        """
        if n_clients < 1:
            raise ServingError("n_clients must be >= 1")
        if n_requests < 1:
            raise ServingError("n_requests must be >= 1")
        if think_ns < 0:
            raise ServingError("think_ns must be >= 0")
        # stagger starts so the opening volley is not one giant batch
        ready = [
            (c * (think_ns / max(n_clients, 1)), c)
            for c in range(n_clients)
        ]
        heapq.heapify(ready)
        submitted = 0
        done = 0
        responses_seen = 0
        while done < n_requests:
            if submitted < n_requests and ready:
                t, client = heapq.heappop(ready)
                arrival = max(t, service.now_ns)
                ids = [self._submit_closed(service, arrival)]
                submitted += 1
                # co-submit every client ready by the same instant
                while (
                    submitted < n_requests
                    and ready
                    and ready[0][0] <= service.now_ns
                ):
                    t2, _ = heapq.heappop(ready)
                    ids.append(
                        self._submit_closed(
                            service, max(t2, service.now_ns)
                        )
                    )
                    submitted += 1
            service.drain()
            new = service.responses[responses_seen:]
            responses_seen = len(service.responses)
            for response in new:
                done += 1
                heapq.heappush(
                    ready, (response.completion_ns + think_ns, 0)
                )
            if not new and submitted >= n_requests:
                # every request is in but responses stopped coming —
                # terminate diagnosably instead of spinning forever
                raise WatchdogTimeoutError(
                    f"closed loop stalled: {done}/{n_requests} responses "
                    f"after all submissions (t={service.now_ns:.0f}ns)"
                )
        return service.responses

    def _submit_closed(self, service: QueryService, arrival: float) -> str:
        request = self._next_request(arrival)
        service.submit(request)
        return request.request_id
