"""Sharded multi-array query serving on the simulated PIM substrate.

The production-shaped layer the ROADMAP's north star asks for: a
:class:`ShardManager` placing one dataset across N independent PIM
arrays with exact, placement-invariant scatter/gather; a
:class:`QueryService` event loop with per-tenant admission control,
bounded queues (reject / drop-oldest / degrade-to-approximate
backpressure) and deadline-aware batched dispatch; a
:class:`WorkloadDriver` for open- and closed-loop traffic; and an
:class:`SLOTracker` reducing the run to p50/p95/p99 latency,
throughput, shed rate and per-shard utilization via
:mod:`repro.telemetry`. See DESIGN.md section 8 and
``examples/serving_tour.py``.

The layer also survives hardware faults: k-replica placement
(``replication=`` on :class:`ShardManager`), a
:class:`~repro.serving.health.RecoveryPolicy` of timeouts, bounded
retries with capped exponential backoff, replica failover and hedged
re-dispatch, a per-shard circuit breaker
(:class:`~repro.serving.health.ShardHealthTracker`), and — last resort
— host-side exact recompute of an unavailable chunk. Combined with the
fault injectors in :mod:`repro.faults`, a seeded chaos run stays
bit-identical to a fault-free one on every completed response. See
DESIGN.md section 9 and ``examples/faults_tour.py``.

Gray failures — shards that are *slow* rather than dead — get their own
defense: a :class:`LatencyOutlierDetector` (phi-accrual suspicion over
per-(shard, substrate) service times) drives outlier ejection with
probed re-admission in :class:`ShardHealthTracker`, adaptive p95-based
hedging under a global :class:`HedgeBudget`, and observed-latency-aware
replica routing. See DESIGN.md section 14 and
``examples/chaos_tour.py``.
"""

from repro.serving.driver import WorkloadDriver
from repro.serving.health import (
    HedgeBudget,
    LatencyOutlierDetector,
    RecoveryPolicy,
    ShardHealthTracker,
)
from repro.serving.service import (
    QueryService,
    Request,
    Response,
    TenantSpec,
)
from repro.serving.sharding import (
    AssignAnswer,
    GatherTiming,
    KNNAnswer,
    ShardManager,
    ShardPlacement,
    plan_placement,
)
from repro.serving.slo import SLOTracker

__all__ = [
    "AssignAnswer",
    "GatherTiming",
    "HedgeBudget",
    "KNNAnswer",
    "LatencyOutlierDetector",
    "QueryService",
    "RecoveryPolicy",
    "Request",
    "Response",
    "SLOTracker",
    "ShardHealthTracker",
    "ShardManager",
    "ShardPlacement",
    "TenantSpec",
    "WorkloadDriver",
    "plan_placement",
]
