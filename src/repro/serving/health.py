"""Per-shard health tracking: circuit breaker, MTTR, recovery policy.

:class:`RecoveryPolicy` is the knob set governing how the
:class:`~repro.serving.sharding.ShardManager` reacts to shard faults —
per-dispatch timeouts, capped exponential backoff, bounded retries,
optional hedged re-dispatch, and whether a chunk with no live replica
may fall back to host-side exact recomputation.

:class:`ShardHealthTracker` is the circuit breaker: it watches per-shard
successes and failures on the simulated clock, opens a shard's circuit
after ``breaker_threshold`` consecutive failures (dispatch planning then
routes around it for ``breaker_reset_ns``, after which one half-open
probe is allowed through), marks crashed shards permanently dead, and
records down-to-up durations as MTTR samples the
:class:`~repro.serving.slo.SLOTracker` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError
from repro.telemetry import get_recorder


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the serving layer survives shard faults.

    Attributes
    ----------
    max_retries:
        Failed attempts tolerated per chunk per dispatch beyond the
        first try; exhausted chunks fall back to degraded recompute.
    backoff_base_ns / backoff_factor / backoff_cap_ns:
        Capped exponential backoff between a chunk's attempts
        (``base * factor**(failures-1)``, never above the cap).
    dispatch_timeout_ns:
        Per-attempt watchdog: a wave that would run longer (a hung or
        pathologically slow shard) is abandoned at this bound and the
        chunk fails over. ``None`` disables the watchdog — a hung shard
        then raises :class:`~repro.errors.ShardHungError` instead of
        silently looping.
    hedge_after_ns:
        When set, a wave still running past this bound triggers a hedged
        duplicate on an idle replica holding the same chunks; whichever
        finishes first defines the latency (values are identical either
        way). ``None`` disables hedging.
    crash_detect_ns:
        Simulated time to notice a fail-fast crash (connection-refused
        analogue) before failing over.
    breaker_threshold / breaker_reset_ns:
        Consecutive failures that open a shard's circuit, and how long
        the circuit stays open before a half-open probe.
    quarantine_probes:
        Clean probe dispatches a *repaired* shard must serve before it
        re-enters full rotation (see
        :meth:`ShardHealthTracker.mark_repaired`). While quarantined the
        shard takes one probe at a time, like a half-open circuit.
    allow_degraded:
        Permit host-side exact recomputation of a chunk none of whose
        replicas answered (slow but exact, response flagged degraded).
        When ``False`` such a chunk raises
        :class:`~repro.errors.ChunkUnavailableError`.
    """

    max_retries: int = 3
    backoff_base_ns: float = 50_000.0
    backoff_factor: float = 2.0
    backoff_cap_ns: float = 1_000_000.0
    dispatch_timeout_ns: float | None = 50_000_000.0
    hedge_after_ns: float | None = None
    crash_detect_ns: float = 10_000.0
    breaker_threshold: int = 3
    breaker_reset_ns: float = 500_000_000.0
    quarantine_probes: int = 3
    allow_degraded: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServingError("max_retries must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ServingError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ServingError("backoff_factor must be >= 1")
        if self.dispatch_timeout_ns is not None and self.dispatch_timeout_ns <= 0:
            raise ServingError("dispatch_timeout_ns must be positive or None")
        if self.hedge_after_ns is not None and self.hedge_after_ns <= 0:
            raise ServingError("hedge_after_ns must be positive or None")
        if self.crash_detect_ns < 0:
            raise ServingError("crash_detect_ns must be >= 0")
        if self.breaker_threshold < 1:
            raise ServingError("breaker_threshold must be >= 1")
        if self.quarantine_probes < 0:
            raise ServingError("quarantine_probes must be >= 0")

    def backoff_ns(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        if failures < 1:
            return 0.0
        raw = self.backoff_base_ns * self.backoff_factor ** (failures - 1)
        return min(raw, self.backoff_cap_ns)


class _ShardHealth:
    """Mutable health record of one shard."""

    __slots__ = (
        "consecutive_failures",
        "open_until_ns",
        "dead",
        "dead_since_ns",
        "down_since_ns",
        "failures",
        "successes",
        "probe_in_flight",
        "quarantine_probes",
        "quarantine_left",
        "quarantined_since_ns",
    )

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open_until_ns: float | None = None
        self.dead = False
        self.dead_since_ns: float | None = None
        self.down_since_ns: float | None = None
        self.failures = 0
        self.successes = 0
        self.probe_in_flight = False
        self.quarantine_probes = 0
        self.quarantine_left = 0
        self.quarantined_since_ns: float | None = None


class ShardHealthTracker:
    """Circuit breaker + MTTR bookkeeping over ``n_shards`` shards."""

    def __init__(
        self, n_shards: int, policy: RecoveryPolicy | None = None
    ) -> None:
        if n_shards < 1:
            raise ServingError("need at least one shard")
        self.policy = policy if policy is not None else RecoveryPolicy()
        self._shards = [_ShardHealth() for _ in range(n_shards)]
        self._recoveries: list[float] = []

    # ------------------------------------------------------------------
    def record_success(self, shard_id: int, t_ns: float) -> None:
        """A dispatch on ``shard_id`` completed cleanly at ``t_ns``."""
        h = self._shards[shard_id]
        h.successes += 1
        h.probe_in_flight = False
        h.consecutive_failures = 0
        if h.quarantine_left > 0:
            h.quarantine_left -= 1
            if h.quarantine_left > 0:
                return  # still probationary: more clean probes needed
            h.quarantined_since_ns = None
            tele = get_recorder()
            if tele.enabled:
                tele.metrics.counter("serving.health.readmissions").add(1)
        if h.down_since_ns is not None:
            self._recoveries.append(max(t_ns - h.down_since_ns, 0.0))
            h.down_since_ns = None
            tele = get_recorder()
            if tele.enabled:
                tele.metrics.counter("serving.health.recoveries").add(1)
        h.open_until_ns = None

    def record_failure(
        self, shard_id: int, t_ns: float, permanent: bool = False
    ) -> None:
        """A dispatch on ``shard_id`` failed at ``t_ns``."""
        h = self._shards[shard_id]
        h.failures += 1
        h.consecutive_failures += 1
        h.probe_in_flight = False
        if h.down_since_ns is None:
            h.down_since_ns = t_ns
        if permanent:
            h.dead = True
            if h.dead_since_ns is None:
                h.dead_since_ns = t_ns
        elif h.quarantine_left > 0:
            # a failed probe during probation is conclusive: restart the
            # probation from scratch behind a fresh open window
            h.quarantine_left = h.quarantine_probes
            h.open_until_ns = t_ns + self.policy.breaker_reset_ns
        elif h.consecutive_failures >= self.policy.breaker_threshold:
            h.open_until_ns = t_ns + self.policy.breaker_reset_ns
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.health.failures").add(1)
            if h.open_until_ns is not None:
                tele.metrics.counter("serving.health.circuit_opens").add(1)

    def mark_repaired(
        self, shard_id: int, t_ns: float, probes: int | None = None
    ) -> None:
        """A repaired shard re-enters rotation via quarantine.

        The repair layer calls this after a spare-crossbar remap or a
        completed re-replication: the shard is revived (even from
        ``dead``) but must first serve ``probes`` clean dispatches —
        one at a time, gated by the probe token — before it is fully
        re-admitted. Its MTTR sample completes at *re-admission*, not at
        the repair itself, so the recorded outage covers the probation.
        """
        h = self._shards[shard_id]
        n = self.policy.quarantine_probes if probes is None else int(probes)
        if n < 0:
            raise ServingError("quarantine probes must be >= 0")
        h.dead = False
        h.dead_since_ns = None
        h.consecutive_failures = 0
        h.open_until_ns = None
        h.probe_in_flight = False
        h.quarantine_probes = n
        h.quarantine_left = n
        h.quarantined_since_ns = t_ns if n > 0 else None
        if h.down_since_ns is None:
            h.down_since_ns = t_ns
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.health.repairs").add(1)
        if n == 0:  # immediate re-admission requested
            self._recoveries.append(max(t_ns - h.down_since_ns, 0.0))
            h.down_since_ns = None

    # ------------------------------------------------------------------
    def available(self, shard_id: int, t_ns: float) -> bool:
        """Whether dispatch planning may route to ``shard_id`` at ``t_ns``.

        Dead shards never come back on their own; an open circuit blocks
        routing until ``breaker_reset_ns`` elapses, after which the shard
        is half-open: exactly one probe dispatch may route (claimed with
        :meth:`begin_probe`) and decides its fate. While that probe is in
        flight every other caller sees the shard as unavailable — the
        probe token closes the thundering-herd window where all callers
        piled onto a barely-recovered shard the moment the window
        elapsed. Quarantined (freshly repaired) shards are gated the
        same way.
        """
        h = self._shards[shard_id]
        if h.dead:
            return False
        if h.open_until_ns is not None and t_ns < h.open_until_ns:
            return False
        probationary = h.open_until_ns is not None or h.quarantine_left > 0
        if probationary and h.probe_in_flight:
            return False
        return True

    def probationary(self, shard_id: int, t_ns: float) -> bool:
        """Whether ``shard_id`` is half-open or quarantined at ``t_ns``.

        Probationary shards take one probe dispatch at a time; hedging
        skips them (a hedge is a latency optimisation, not a probe).
        """
        h = self._shards[shard_id]
        if h.dead:
            return False
        if h.quarantine_left > 0:
            return True
        return h.open_until_ns is not None and t_ns >= h.open_until_ns

    def begin_probe(self, shard_id: int, t_ns: float) -> bool:
        """Claim the single probe slot of a probationary shard.

        Returns ``True`` when the caller's dispatch is *the* probe —
        every later caller is refused (and sees ``available() == False``)
        until the probe's outcome is recorded or the claim released.
        """
        h = self._shards[shard_id]
        if not self.probationary(shard_id, t_ns):
            return False
        if h.probe_in_flight:
            return False
        h.probe_in_flight = True
        return True

    def release_probe(self, shard_id: int) -> None:
        """Release a probe claim whose dispatch was abandoned unrecorded."""
        self._shards[shard_id].probe_in_flight = False

    def alive(self, shard_id: int) -> bool:
        """Whether ``shard_id`` is not permanently dead."""
        return not self._shards[shard_id].dead

    @property
    def dead_shards(self) -> list[int]:
        """Ids of permanently dead shards."""
        return [s for s, h in enumerate(self._shards) if h.dead]

    def drain_recoveries(self) -> list[float]:
        """Down-to-up durations observed since the last drain (MTTR samples)."""
        out = self._recoveries
        self._recoveries = []
        return out

    def snapshot(self, t_ns: float) -> list[dict]:
        """Per-shard health as JSON-friendly records.

        Includes the breaker window (``open_until_ns``) and the
        dead/down/quarantine timestamps, so operators can read *when* a
        shard went dark and how far its probation has progressed — not
        just its instantaneous status.
        """
        out = []
        for s, h in enumerate(self._shards):
            if h.dead:
                status = "dead"
            elif h.quarantine_left > 0:
                status = "quarantine"
            elif h.open_until_ns is not None and t_ns < h.open_until_ns:
                status = "open"
            elif h.down_since_ns is not None:
                status = "suspect"
            else:
                status = "up"
            out.append(
                {
                    "shard": s,
                    "status": status,
                    "failures": h.failures,
                    "successes": h.successes,
                    "consecutive_failures": h.consecutive_failures,
                    "open_until_ns": h.open_until_ns,
                    "down_since_ns": h.down_since_ns,
                    "dead_since_ns": h.dead_since_ns,
                    "quarantined_since_ns": h.quarantined_since_ns,
                    "quarantine_left": h.quarantine_left,
                    "probe_in_flight": h.probe_in_flight,
                }
            )
        return out
