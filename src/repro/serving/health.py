"""Per-shard health tracking: circuit breaker, MTTR, recovery policy.

:class:`RecoveryPolicy` is the knob set governing how the
:class:`~repro.serving.sharding.ShardManager` reacts to shard faults —
per-dispatch timeouts, capped exponential backoff, bounded retries,
optional hedged re-dispatch, and whether a chunk with no live replica
may fall back to host-side exact recomputation.

:class:`ShardHealthTracker` is the circuit breaker: it watches per-shard
successes and failures on the simulated clock, opens a shard's circuit
after ``breaker_threshold`` consecutive failures (dispatch planning then
routes around it for ``breaker_reset_ns``, after which one half-open
probe is allowed through), marks crashed shards permanently dead, and
records down-to-up durations as MTTR samples the
:class:`~repro.serving.slo.SLOTracker` consumes.

The *gray*-failure half (``outlier_ejection=True``) is distinct from
the breaker: the breaker trips on hard failures, while the
:class:`LatencyOutlierDetector` watches *successful* wave service times
per (shard, substrate), maintains an EWMA + sliding quantile sketch,
and turns sustained deviation from the peer baseline into a
phi-accrual-style suspicion score. A suspected-slow shard is *ejected*
— demoted in dispatch preference, not blocked — then periodically
probed through the same half-open probe tokens the breaker uses, and
re-admitted only after a consecutive streak of clean probes whose
required length doubles every time a probe comes back slow (hysteresis
against flap-admitting an intermittently slow shard).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.telemetry import get_recorder


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the serving layer survives shard faults.

    Attributes
    ----------
    max_retries:
        Failed attempts tolerated per chunk per dispatch beyond the
        first try; exhausted chunks fall back to degraded recompute.
    backoff_base_ns / backoff_factor / backoff_cap_ns:
        Capped exponential backoff between a chunk's attempts
        (``base * factor**(failures-1)``, never above the cap).
    dispatch_timeout_ns:
        Per-attempt watchdog: a wave that would run longer (a hung or
        pathologically slow shard) is abandoned at this bound and the
        chunk fails over. ``None`` disables the watchdog — a hung shard
        then raises :class:`~repro.errors.ShardHungError` instead of
        silently looping.
    hedge_after_ns:
        When set, a wave still running past this bound triggers a hedged
        duplicate on an idle replica holding the same chunks; whichever
        finishes first defines the latency (values are identical either
        way). ``None`` disables hedging.
    crash_detect_ns:
        Simulated time to notice a fail-fast crash (connection-refused
        analogue) before failing over.
    breaker_threshold / breaker_reset_ns:
        Consecutive failures that open a shard's circuit, and how long
        the circuit stays open before a half-open probe.
    quarantine_probes:
        Clean probe dispatches a *repaired* shard must serve before it
        re-enters full rotation (see
        :meth:`ShardHealthTracker.mark_repaired`). While quarantined the
        shard takes one probe at a time, like a half-open circuit.
    allow_degraded:
        Permit host-side exact recomputation of a chunk none of whose
        replicas answered (slow but exact, response flagged degraded).
        When ``False`` such a chunk raises
        :class:`~repro.errors.ChunkUnavailableError`.
    outlier_ejection:
        Attach a :class:`LatencyOutlierDetector` to the health tracker:
        shards whose successful-wave service times sustain a suspicion
        score >= ``suspicion_threshold`` are ejected (demoted in
        dispatch preference) and re-admitted through probes.
    suspicion_threshold:
        Phi-accrual-style suspicion level (roughly ``-log10`` of the
        probability the shard's recent service times come from the peer
        distribution) at which a shard is ejected. 2.0 ~ "less than 1%
        likely to be healthy".
    detector_alpha / detector_window / detector_min_samples:
        EWMA smoothing factor, sliding quantile-sketch width, and the
        sample floor before the detector may eject (or an adaptive
        hedge trigger may be derived).
    detector_min_ratio:
        Magnitude gate: a sample accrues suspicion only when it exceeds
        this multiple of the peer baseline mean (see
        :class:`LatencyOutlierDetector`).
    ejection_probes / ejection_probe_period_ns / ejection_max_probes:
        Clean probes in a row an ejected shard must serve to re-admit,
        how often a probe dispatch is routed through it, and the cap on
        the escalated streak requirement (every slow probe doubles the
        required streak up to this cap — the anti-flapping hysteresis).
    readmit_slack:
        A probe counts clean when its service time is at most this
        multiple of the peer baseline.
    adaptive_hedge:
        Derive the hedge trigger per shard from observed p95 service
        times (``hedge_p95_factor`` x p95, floored at ``hedge_min_ns``)
        instead of the fixed ``hedge_after_ns``. Falls back to
        ``hedge_after_ns`` until the detector has enough samples.
        Requires ``outlier_ejection`` (the detector provides the
        sketch).
    hedge_p95_factor / hedge_min_ns:
        The adaptive trigger's multiplier and floor.
    hedge_budget:
        Global cap on hedged waves as a fraction of wave attempts
        (token bucket: every attempt accrues ``hedge_budget`` tokens,
        each hedge spends one). ``None`` leaves hedging uncapped.
    """

    max_retries: int = 3
    backoff_base_ns: float = 50_000.0
    backoff_factor: float = 2.0
    backoff_cap_ns: float = 1_000_000.0
    dispatch_timeout_ns: float | None = 50_000_000.0
    hedge_after_ns: float | None = None
    crash_detect_ns: float = 10_000.0
    breaker_threshold: int = 3
    breaker_reset_ns: float = 500_000_000.0
    quarantine_probes: int = 3
    allow_degraded: bool = True
    outlier_ejection: bool = False
    suspicion_threshold: float = 2.0
    detector_alpha: float = 0.2
    detector_window: int = 64
    detector_min_samples: int = 8
    detector_min_ratio: float = 1.5
    ejection_probes: int = 3
    ejection_probe_period_ns: float = 500_000.0
    ejection_max_probes: int = 24
    readmit_slack: float = 1.5
    adaptive_hedge: bool = False
    hedge_p95_factor: float = 2.0
    hedge_min_ns: float = 1_000.0
    hedge_budget: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServingError("max_retries must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ServingError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ServingError("backoff_factor must be >= 1")
        if self.dispatch_timeout_ns is not None and self.dispatch_timeout_ns <= 0:
            raise ServingError("dispatch_timeout_ns must be positive or None")
        if self.hedge_after_ns is not None and self.hedge_after_ns <= 0:
            raise ServingError("hedge_after_ns must be positive or None")
        if self.crash_detect_ns < 0:
            raise ServingError("crash_detect_ns must be >= 0")
        if self.breaker_threshold < 1:
            raise ServingError("breaker_threshold must be >= 1")
        if self.quarantine_probes < 0:
            raise ServingError("quarantine_probes must be >= 0")
        if self.suspicion_threshold <= 0:
            raise ServingError("suspicion_threshold must be positive")
        if not 0.0 < self.detector_alpha <= 1.0:
            raise ServingError("detector_alpha must be in (0, 1]")
        if self.detector_window < 4:
            raise ServingError("detector_window must be >= 4")
        if self.detector_min_samples < 1:
            raise ServingError("detector_min_samples must be >= 1")
        if self.detector_min_ratio < 1.0:
            raise ServingError("detector_min_ratio must be >= 1")
        if self.ejection_probes < 1:
            raise ServingError("ejection_probes must be >= 1")
        if self.ejection_probe_period_ns < 0:
            raise ServingError("ejection_probe_period_ns must be >= 0")
        if self.ejection_max_probes < self.ejection_probes:
            raise ServingError(
                "ejection_max_probes must be >= ejection_probes"
            )
        if self.readmit_slack < 1.0:
            raise ServingError("readmit_slack must be >= 1")
        if self.adaptive_hedge and not self.outlier_ejection:
            raise ServingError(
                "adaptive_hedge needs outlier_ejection (the detector "
                "supplies the service-time sketch)"
            )
        if self.hedge_p95_factor < 1.0:
            raise ServingError("hedge_p95_factor must be >= 1")
        if self.hedge_min_ns <= 0:
            raise ServingError("hedge_min_ns must be positive")
        if self.hedge_budget is not None and not 0.0 <= self.hedge_budget <= 1.0:
            raise ServingError("hedge_budget must lie in [0, 1] or None")

    def backoff_ns(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        if failures < 1:
            return 0.0
        raw = self.backoff_base_ns * self.backoff_factor ** (failures - 1)
        return min(raw, self.backoff_cap_ns)


class _ShardLatency:
    """Streaming service-time state of one (shard, substrate)."""

    __slots__ = ("count", "ewma", "dev_ewma", "window", "suspicion")

    def __init__(self) -> None:
        self.count = 0
        self.ewma = 0.0
        self.dev_ewma = 0.0
        self.window: list[float] = []
        self.suspicion = 0.0


class LatencyOutlierDetector:
    """Per-(shard, substrate) latency-outlier scoring for gray failures.

    Each successful wave's service time feeds three streaming
    statistics per shard: an EWMA (the shard's "current speed"), an
    EWMA of absolute deviation (its jitter), and a sliding window of
    the last ``window`` samples (the quantile sketch behind
    :meth:`observed_p95_ns` and the adaptive hedge trigger).

    The suspicion score is phi-accrual flavoured: each observation is
    scored ``phi = -log10 P(x >= observed | shard behaves like its
    peers)`` under a normal model whose mean/deviation come from the
    *peer baseline* — the median EWMA/deviation of the other shards on
    the same substrate (per-substrate grouping keeps an HBM-PIM shard
    from looking like a straggler next to crossbar peers, and vice
    versa). A shard alone on its substrate is scored against its own
    sliding window instead, so a shard that *becomes* slower than its
    own history still accrues suspicion. Scores are EWMA-smoothed, so
    one slow wave cannot eject anybody but a sustained drift does.

    ``min_ratio`` gates phi on *magnitude*: a sample only accrues
    suspicion when it exceeds ``min_ratio x`` the peer baseline mean.
    Replicated serving makes per-shard service times structurally
    uneven (a shard hosting two chunks does strictly more host-side
    work per wave than a single-chunk peer), and without the gate such
    steady small gaps z-score their way into ejections. A gray failure
    worth routing around is *meaningfully* slow, not 20% slower.
    """

    #: suspicion contribution cap per observation (P floored at 1e-15)
    MAX_PHI = 15.0

    def __init__(
        self,
        n_shards: int,
        substrates=None,
        *,
        alpha: float = 0.2,
        window: int = 64,
        min_samples: int = 8,
        min_ratio: float = 1.5,
    ) -> None:
        if n_shards < 1:
            raise ServingError("need at least one shard")
        if min_ratio < 1.0:
            raise ServingError("min_ratio must be >= 1")
        self.alpha = float(alpha)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.min_ratio = float(min_ratio)
        if substrates is None:
            self.substrates = ["default"] * n_shards
        else:
            self.substrates = [str(s) for s in substrates]
            if len(self.substrates) != n_shards:
                raise ServingError(
                    f"substrates names {len(self.substrates)} shards, "
                    f"detector covers {n_shards}"
                )
        self._state = [_ShardLatency() for _ in range(n_shards)]
        self._groups: dict[str, list[int]] = {}
        for s, name in enumerate(self.substrates):
            self._groups.setdefault(name, []).append(s)

    # ------------------------------------------------------------------
    def observe(self, shard: int, service_ns: float) -> None:
        """Fold one successful wave's service time into the statistics."""
        x = float(service_ns)
        st = self._state[shard]
        phi = self._phi(shard, x)
        if st.count == 0:
            st.ewma = x
            st.dev_ewma = 0.0
        else:
            st.dev_ewma = (
                (1.0 - self.alpha) * st.dev_ewma
                + self.alpha * abs(x - st.ewma)
            )
            st.ewma = (1.0 - self.alpha) * st.ewma + self.alpha * x
        st.count += 1
        st.window.append(x)
        del st.window[: -self.window]
        st.suspicion = (1.0 - self.alpha) * st.suspicion + self.alpha * phi

    def _baseline(self, shard: int) -> tuple[float, float] | None:
        """(mean, deviation) the shard's samples are judged against."""
        peers = [
            self._state[s]
            for s in self._groups[self.substrates[shard]]
            if s != shard and self._state[s].count > 0
        ]
        if peers:
            mu = float(np.median([p.ewma for p in peers]))
            dev = float(np.median([p.dev_ewma for p in peers]))
        else:
            window = self._state[shard].window
            if len(window) < self.min_samples:
                return None
            mu = float(np.median(window))
            dev = float(np.median(np.abs(np.asarray(window) - mu)))
        if mu <= 0.0:
            return None
        return mu, max(dev, 0.05 * mu)

    def _phi(self, shard: int, x: float) -> float:
        baseline = self._baseline(shard)
        if baseline is None:
            return 0.0
        mu, dev = baseline
        if x <= self.min_ratio * mu:
            return 0.0
        z = (x - mu) / dev
        if z <= 0.0:
            return 0.0
        p = 0.5 * math.erfc(z / math.sqrt(2.0))
        return min(-math.log10(max(p, 1e-15)), self.MAX_PHI)

    # ------------------------------------------------------------------
    def samples(self, shard: int) -> int:
        """Observations folded in for ``shard``."""
        return self._state[shard].count

    def suspicion(self, shard: int) -> float:
        """Current smoothed suspicion score of ``shard``."""
        return self._state[shard].suspicion

    def ewma(self, shard: int) -> float | None:
        """Smoothed service time of ``shard`` (None before any sample)."""
        st = self._state[shard]
        return st.ewma if st.count > 0 else None

    def observed_p95_ns(self, shard: int) -> float | None:
        """p95 of the shard's sliding window (None under the floor)."""
        st = self._state[shard]
        if len(st.window) < self.min_samples:
            return None
        return float(np.percentile(st.window, 95.0))

    def fleet_p95_ns(self) -> float | None:
        """Median of the per-shard p95s (None before any shard has one)."""
        values = [
            p95
            for s in range(len(self._state))
            if (p95 := self.observed_p95_ns(s)) is not None
        ]
        if not values:
            return None
        return float(np.median(values))

    def is_slow(self, shard: int, service_ns: float, slack: float) -> bool:
        """Whether one sample exceeds ``slack`` x the peer baseline."""
        baseline = self._baseline(shard)
        if baseline is None:
            return False
        return float(service_ns) > slack * baseline[0]

    def reset_suspicion(self, shard: int) -> None:
        """Clear the suspicion score (on re-admission); samples stay."""
        self._state[shard].suspicion = 0.0


class HedgeBudget:
    """Global token bucket capping hedges at a fraction of attempts.

    Every wave attempt accrues ``fraction`` tokens (capped at
    ``burst``); firing a hedge spends one whole token. Over any run,
    ``granted <= burst + fraction * accruals`` — the hedge rate
    converges to the budget fraction from above as traffic grows.
    """

    def __init__(self, fraction: float, burst: float = 1.0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ServingError("hedge budget fraction must lie in [0, 1]")
        if burst < 1.0:
            raise ServingError("hedge budget burst must be >= 1")
        self.fraction = float(fraction)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.accruals = 0
        self.granted = 0
        self.denied = 0

    def accrue(self) -> None:
        """One wave attempt happened: earn ``fraction`` of a hedge."""
        self.accruals += 1
        self.tokens = min(self.burst, self.tokens + self.fraction)

    def try_take(self) -> bool:
        """Spend one token to hedge; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def snapshot(self) -> dict:
        """JSON-friendly budget state."""
        return {
            "fraction": self.fraction,
            "tokens": self.tokens,
            "accruals": self.accruals,
            "granted": self.granted,
            "denied": self.denied,
        }


class _ShardHealth:
    """Mutable health record of one shard."""

    __slots__ = (
        "consecutive_failures",
        "open_until_ns",
        "dead",
        "dead_since_ns",
        "down_since_ns",
        "failures",
        "successes",
        "probe_in_flight",
        "quarantine_probes",
        "quarantine_left",
        "quarantined_since_ns",
        "ejected",
        "ejected_since_ns",
        "ejections",
        "eject_probe_target",
        "eject_probes_left",
        "next_probe_ns",
    )

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open_until_ns: float | None = None
        self.dead = False
        self.dead_since_ns: float | None = None
        self.down_since_ns: float | None = None
        self.failures = 0
        self.successes = 0
        self.probe_in_flight = False
        self.quarantine_probes = 0
        self.quarantine_left = 0
        self.quarantined_since_ns: float | None = None
        self.ejected = False
        self.ejected_since_ns: float | None = None
        self.ejections = 0
        self.eject_probe_target = 0
        self.eject_probes_left = 0
        self.next_probe_ns: float | None = None


class ShardHealthTracker:
    """Circuit breaker + MTTR bookkeeping over ``n_shards`` shards."""

    def __init__(
        self,
        n_shards: int,
        policy: RecoveryPolicy | None = None,
        substrates=None,
    ) -> None:
        if n_shards < 1:
            raise ServingError("need at least one shard")
        self.policy = policy if policy is not None else RecoveryPolicy()
        self._shards = [_ShardHealth() for _ in range(n_shards)]
        self._recoveries: list[float] = []
        #: Bumped whenever the gray-failure detector changes a verdict
        #: (ejection or re-admission); the dispatch layer watches it to
        #: invalidate cached route orders.
        self.version = 0
        self.detector: LatencyOutlierDetector | None = None
        if self.policy.outlier_ejection:
            self.detector = LatencyOutlierDetector(
                n_shards,
                substrates,
                alpha=self.policy.detector_alpha,
                window=self.policy.detector_window,
                min_samples=self.policy.detector_min_samples,
                min_ratio=self.policy.detector_min_ratio,
            )
        self._domains: list[dict | None] | None = None
        self._spread_report = None

    def attach_placement(self, domains, spread_report) -> None:
        """Wire the tracker to the placement's durability accounting.

        ``domains`` is the per-shard failure-domain dict (or ``None``
        per shard when no topology is attached); ``spread_report`` is a
        zero-argument callable (``ShardManager.spread_report``) queried
        lazily at snapshot time so the tracker never holds stale copies
        of the replica map.
        """
        self._domains = list(domains)
        self._spread_report = spread_report

    # ------------------------------------------------------------------
    def record_success(self, shard_id: int, t_ns: float) -> None:
        """A dispatch on ``shard_id`` completed cleanly at ``t_ns``."""
        h = self._shards[shard_id]
        h.successes += 1
        h.probe_in_flight = False
        h.consecutive_failures = 0
        if h.quarantine_left > 0:
            h.quarantine_left -= 1
            if h.quarantine_left > 0:
                return  # still probationary: more clean probes needed
            h.quarantined_since_ns = None
            tele = get_recorder()
            if tele.enabled:
                tele.metrics.counter("serving.health.readmissions").add(1)
        if h.down_since_ns is not None:
            self._recoveries.append(max(t_ns - h.down_since_ns, 0.0))
            h.down_since_ns = None
            tele = get_recorder()
            if tele.enabled:
                tele.metrics.counter("serving.health.recoveries").add(1)
        h.open_until_ns = None

    def record_service_time(
        self, shard_id: int, t_ns: float, service_ns: float
    ) -> None:
        """A *successful* wave on ``shard_id`` took ``service_ns``.

        Feeds the gray-failure detector (no-op without
        ``outlier_ejection``). A healthy shard whose smoothed suspicion
        crosses the policy threshold is ejected; an ejected shard's
        observation doubles as its probe outcome — a clean sample
        (within ``readmit_slack`` of the peer baseline) advances the
        re-admission streak, a slow one escalates the required streak
        (doubling, capped at ``ejection_max_probes``) so an
        intermittently slow shard cannot flap back into rotation.
        """
        det = self.detector
        if det is None:
            return
        det.observe(shard_id, service_ns)
        h = self._shards[shard_id]
        policy = self.policy
        if h.ejected:
            clean = not det.is_slow(
                shard_id, service_ns, policy.readmit_slack
            )
            if clean:
                h.eject_probes_left -= 1
                if h.eject_probes_left <= 0:
                    self._readmit(shard_id)
            else:
                h.eject_probe_target = min(
                    h.eject_probe_target * 2, policy.ejection_max_probes
                )
                h.eject_probes_left = h.eject_probe_target
                tele = get_recorder()
                if tele.enabled:
                    tele.metrics.counter(
                        "serving.health.eject_probe_slow"
                    ).add(1)
            h.next_probe_ns = t_ns + policy.ejection_probe_period_ns
        elif (
            det.samples(shard_id) >= policy.detector_min_samples
            and det.suspicion(shard_id) >= policy.suspicion_threshold
        ):
            self._eject(shard_id, t_ns)

    def _eject(self, shard_id: int, t_ns: float) -> None:
        h = self._shards[shard_id]
        h.ejected = True
        h.ejected_since_ns = t_ns
        h.ejections += 1
        if h.eject_probe_target == 0:
            h.eject_probe_target = self.policy.ejection_probes
        # ejections after a re-admission keep the escalated target: a
        # shard with a flapping history earns longer probation, never
        # shorter (the hysteresis is sticky by design)
        h.eject_probes_left = h.eject_probe_target
        h.next_probe_ns = t_ns + self.policy.ejection_probe_period_ns
        self.version += 1
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.health.ejections").add(1)

    def _readmit(self, shard_id: int) -> None:
        h = self._shards[shard_id]
        h.ejected = False
        h.ejected_since_ns = None
        h.next_probe_ns = None
        if self.detector is not None:
            self.detector.reset_suspicion(shard_id)
        self.version += 1
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.health.ejection_readmits").add(1)

    def _eject_probe_due(self, h: _ShardHealth, t_ns: float) -> bool:
        return h.ejected and (
            h.next_probe_ns is None or t_ns >= h.next_probe_ns
        )

    def record_failure(
        self, shard_id: int, t_ns: float, permanent: bool = False
    ) -> None:
        """A dispatch on ``shard_id`` failed at ``t_ns``."""
        h = self._shards[shard_id]
        h.failures += 1
        h.consecutive_failures += 1
        h.probe_in_flight = False
        if h.ejected:
            # a hard failure on an ejected shard is conclusive for its
            # probation too: escalate and restart the clean streak
            h.eject_probe_target = min(
                h.eject_probe_target * 2, self.policy.ejection_max_probes
            )
            h.eject_probes_left = h.eject_probe_target
            h.next_probe_ns = t_ns + self.policy.ejection_probe_period_ns
        if h.down_since_ns is None:
            h.down_since_ns = t_ns
        if permanent:
            h.dead = True
            if h.dead_since_ns is None:
                h.dead_since_ns = t_ns
        elif h.quarantine_left > 0:
            # a failed probe during probation is conclusive: restart the
            # probation from scratch behind a fresh open window
            h.quarantine_left = h.quarantine_probes
            h.open_until_ns = t_ns + self.policy.breaker_reset_ns
        elif h.consecutive_failures >= self.policy.breaker_threshold:
            h.open_until_ns = t_ns + self.policy.breaker_reset_ns
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.health.failures").add(1)
            if h.open_until_ns is not None:
                tele.metrics.counter("serving.health.circuit_opens").add(1)

    def mark_repaired(
        self, shard_id: int, t_ns: float, probes: int | None = None
    ) -> None:
        """A repaired shard re-enters rotation via quarantine.

        The repair layer calls this after a spare-crossbar remap or a
        completed re-replication: the shard is revived (even from
        ``dead``) but must first serve ``probes`` clean dispatches —
        one at a time, gated by the probe token — before it is fully
        re-admitted. Its MTTR sample completes at *re-admission*, not at
        the repair itself, so the recorded outage covers the probation.
        """
        h = self._shards[shard_id]
        n = self.policy.quarantine_probes if probes is None else int(probes)
        if n < 0:
            raise ServingError("quarantine probes must be >= 0")
        h.dead = False
        h.dead_since_ns = None
        h.consecutive_failures = 0
        h.open_until_ns = None
        h.probe_in_flight = False
        h.quarantine_probes = n
        h.quarantine_left = n
        h.quarantined_since_ns = t_ns if n > 0 else None
        if h.down_since_ns is None:
            h.down_since_ns = t_ns
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.health.repairs").add(1)
        if n == 0:  # immediate re-admission requested
            self._recoveries.append(max(t_ns - h.down_since_ns, 0.0))
            h.down_since_ns = None

    # ------------------------------------------------------------------
    def available(self, shard_id: int, t_ns: float) -> bool:
        """Whether dispatch planning may route to ``shard_id`` at ``t_ns``.

        Dead shards never come back on their own; an open circuit blocks
        routing until ``breaker_reset_ns`` elapses, after which the shard
        is half-open: exactly one probe dispatch may route (claimed with
        :meth:`begin_probe`) and decides its fate. While that probe is in
        flight every other caller sees the shard as unavailable — the
        probe token closes the thundering-herd window where all callers
        piled onto a barely-recovered shard the moment the window
        elapsed. Quarantined (freshly repaired) shards are gated the
        same way.
        """
        h = self._shards[shard_id]
        if h.dead:
            return False
        if h.open_until_ns is not None and t_ns < h.open_until_ns:
            return False
        probationary = (
            h.open_until_ns is not None
            or h.quarantine_left > 0
            or self._eject_probe_due(h, t_ns)
        )
        if probationary and h.probe_in_flight:
            return False
        return True

    def probationary(self, shard_id: int, t_ns: float) -> bool:
        """Whether ``shard_id`` is half-open or quarantined at ``t_ns``.

        Probationary shards take one probe dispatch at a time; hedging
        skips them (a hedge is a latency optimisation, not a probe).
        An ejected shard is probationary exactly while a probe is due —
        between probes it stays routable as a last resort without
        consuming the probe token.
        """
        h = self._shards[shard_id]
        if h.dead:
            return False
        if h.quarantine_left > 0:
            return True
        if self._eject_probe_due(h, t_ns):
            return True
        return h.open_until_ns is not None and t_ns >= h.open_until_ns

    def demoted(self, shard_id: int, t_ns: float) -> bool:
        """Whether dispatch preference should rank ``shard_id`` last.

        Ejected shards are demoted — still routable (a chunk whose
        other replicas are gone prefers a slow answer over a degraded
        recompute) but tried after every non-ejected replica — except
        when their periodic probe is due, so probe traffic reaches them
        through the normal dispatch path.
        """
        h = self._shards[shard_id]
        return h.ejected and not self._eject_probe_due(h, t_ns)

    def prefer_order(self, order, t_ns: float):
        """Stable-partition a replica order: demoted shards go last."""
        kept = [s for s in order if not self.demoted(s, t_ns)]
        if len(kept) == len(order):
            return tuple(order)
        return tuple(kept) + tuple(
            s for s in order if self.demoted(s, t_ns)
        )

    def ejected(self, shard_id: int) -> bool:
        """Whether ``shard_id`` is currently ejected as a latency outlier."""
        return self._shards[shard_id].ejected

    def suspicion(self, shard_id: int) -> float:
        """Detector suspicion score (0.0 without a detector)."""
        if self.detector is None:
            return 0.0
        return self.detector.suspicion(shard_id)

    def observed_p95_ns(self, shard_id: int) -> float | None:
        """Observed p95 service time (None without detector/samples)."""
        if self.detector is None:
            return None
        return self.detector.observed_p95_ns(shard_id)

    def begin_probe(self, shard_id: int, t_ns: float) -> bool:
        """Claim the single probe slot of a probationary shard.

        Returns ``True`` when the caller's dispatch is *the* probe —
        every later caller is refused (and sees ``available() == False``)
        until the probe's outcome is recorded or the claim released.
        """
        h = self._shards[shard_id]
        if not self.probationary(shard_id, t_ns):
            return False
        if h.probe_in_flight:
            return False
        h.probe_in_flight = True
        return True

    def release_probe(self, shard_id: int) -> None:
        """Release a probe claim whose dispatch was abandoned unrecorded."""
        self._shards[shard_id].probe_in_flight = False

    def alive(self, shard_id: int) -> bool:
        """Whether ``shard_id`` is not permanently dead."""
        return not self._shards[shard_id].dead

    @property
    def dead_shards(self) -> list[int]:
        """Ids of permanently dead shards."""
        return [s for s, h in enumerate(self._shards) if h.dead]

    def drain_recoveries(self) -> list[float]:
        """Down-to-up durations observed since the last drain (MTTR samples)."""
        out = self._recoveries
        self._recoveries = []
        return out

    def snapshot(self, t_ns: float) -> list[dict]:
        """Per-shard health as JSON-friendly records.

        Includes the breaker window (``open_until_ns``) and the
        dead/down/quarantine timestamps, so operators can read *when* a
        shard went dark and how far its probation has progressed — not
        just its instantaneous status. With the gray-failure detector
        attached, each record also carries the ``suspicion`` score, the
        ``ejected`` flag, and the ``observed_p95_ns`` sketch readout;
        the same three are pushed as per-shard gauges so the Prometheus
        snapshot mirrors them.

        With a placement attached (:meth:`attach_placement`) each
        record additionally carries the shard's failure-domain
        coordinates (``domains``) and how many of its hosted chunks are
        at risk of a correlated outage (``hosted_at_risk_chunks``);
        fleet-wide durability (minimum replica spread, at-risk chunk
        count, recorded violations, checkpoint age) goes out as gauges.
        """
        tele = get_recorder()
        durability = (
            self._spread_report() if self._spread_report is not None else None
        )
        per_shard_at_risk = (
            durability["per_shard_at_risk"] if durability else None
        )
        out = []
        for s, h in enumerate(self._shards):
            if h.dead:
                status = "dead"
            elif h.quarantine_left > 0:
                status = "quarantine"
            elif h.open_until_ns is not None and t_ns < h.open_until_ns:
                status = "open"
            elif h.ejected:
                status = "ejected"
            elif h.down_since_ns is not None:
                status = "suspect"
            else:
                status = "up"
            suspicion = self.suspicion(s)
            p95 = self.observed_p95_ns(s)
            out.append(
                {
                    "shard": s,
                    "status": status,
                    "failures": h.failures,
                    "successes": h.successes,
                    "consecutive_failures": h.consecutive_failures,
                    "open_until_ns": h.open_until_ns,
                    "down_since_ns": h.down_since_ns,
                    "dead_since_ns": h.dead_since_ns,
                    "quarantined_since_ns": h.quarantined_since_ns,
                    "quarantine_left": h.quarantine_left,
                    "probe_in_flight": h.probe_in_flight,
                    "suspicion": suspicion,
                    "ejected": h.ejected,
                    "ejections": h.ejections,
                    "ejected_since_ns": h.ejected_since_ns,
                    "observed_p95_ns": p95,
                    "domains": (
                        self._domains[s]
                        if self._domains is not None
                        else None
                    ),
                    "hosted_at_risk_chunks": (
                        per_shard_at_risk[s]
                        if per_shard_at_risk is not None
                        else None
                    ),
                }
            )
            if tele.enabled and self.detector is not None:
                tele.metrics.gauge(f"serving.shard{s}.suspicion").set(
                    suspicion
                )
                tele.metrics.gauge(f"serving.shard{s}.ejected").set(
                    1.0 if h.ejected else 0.0
                )
                if p95 is not None:
                    tele.metrics.gauge(
                        f"serving.shard{s}.observed_p95_ns"
                    ).set(p95)
        if tele.enabled and durability is not None:
            if durability["min_spread"] is not None:
                tele.metrics.gauge("serving.placement.min_spread").set(
                    float(durability["min_spread"])
                )
            tele.metrics.gauge("serving.placement.at_risk_chunks").set(
                float(durability["n_at_risk"])
            )
            tele.metrics.gauge("serving.placement.violations").set(
                float(len(durability["violations"]))
            )
            last = durability.get("last_checkpoint_ns")
            if last is not None:
                tele.metrics.gauge("serving.checkpoint.age_ns").set(
                    max(t_ns - last, 0.0)
                )
        return out

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serialize the mutable health state for a checkpoint.

        Captures every per-shard breaker/quarantine/ejection field plus
        the tracker version and undrained MTTR samples. The latency-
        outlier detector's sketches are deliberately *not* captured —
        they are advisory (they bias routing preference, never results)
        and rebuild from live traffic within one detector window.
        """
        return {
            "version": self.version,
            "recoveries": list(self._recoveries),
            "shards": [
                {slot: getattr(h, slot) for slot in _ShardHealth.__slots__}
                for h in self._shards
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output onto this tracker.

        The shard count must match; the version counter is bumped past
        the saved value so any route order cached before the restore is
        invalidated.
        """
        shards = state["shards"]
        if len(shards) != len(self._shards):
            raise ServingError(
                f"health state describes {len(shards)} shards, "
                f"tracker has {len(self._shards)}"
            )
        for h, payload in zip(self._shards, shards):
            for slot in _ShardHealth.__slots__:
                setattr(h, slot, payload[slot])
        self._recoveries = list(state.get("recoveries", []))
        self.version = int(state.get("version", 0)) + 1
