"""Dataset placement across PIM shards and exact scatter/gather.

A *shard* is one PIM memory module (its own :class:`~repro.hardware.pim_array.PIMArray`)
holding a subset of the dataset rows. :class:`ShardManager` owns the
placement and answers queries by scattering the quantized query to every
shard, letting each shard filter-and-refine its local rows, and merging
the per-shard top-k lists — the SimplePIM-style thin software layer that
turns N independent arrays into one logical store.

Exactness and placement invariance
----------------------------------
Merged results must be *bit-identical* for every placement of the same
dataset, so every numeric step is defined per global row:

* one **global quantizer** is fitted on the full dataset and shared by
  all shards — a per-shard fit would make the PIM lower bounds depend on
  which rows share a shard;
* shard-local work visits candidates in ``(lower bound, global index)``
  order and maintains the k best by the canonical ``(score, global
  index)`` lexicographic order, so duplicate distances always resolve to
  the lowest global index no matter which shard refined them;
* pruning is strict (``lb > threshold``), so boundary ties are always
  refined rather than dropped.

Exact scores are squared Euclidean distances in the quantizer's
normalised space — the space Theorem 1's bound provably lower-bounds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cost.counters import PerfCounters
from repro.cost.model import CostModel
from repro.errors import ServingError
from repro.hardware.config import HardwareConfig, pim_platform
from repro.hardware.controller import PIMController
from repro.hardware.pim_array import PIMStats
from repro.hardware.reprogramming import ChunkedDotProductEngine
from repro.similarity.quantization import Quantizer
from repro.telemetry import get_recorder

PLACEMENT_KINDS = ("range", "hash")

#: Knuth's multiplicative constant; spreads consecutive indices evenly.
_HASH_MULTIPLIER = 2654435761


@dataclass(frozen=True)
class ShardPlacement:
    """Which shard each global dataset row lives on.

    ``assignments[i]`` is the shard id of global row ``i``; shard ids
    must lie in ``[0, n_shards)``. Empty shards are allowed (they simply
    contribute no candidates), which keeps arbitrary explicit placements
    — the property tests exercise them — legal.
    """

    n_shards: int
    assignments: np.ndarray
    kind: str = "explicit"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ServingError("a placement needs at least one shard")
        assignments = np.asarray(self.assignments, dtype=np.int64)
        if assignments.ndim != 1:
            raise ServingError("assignments must be a 1-D shard-id vector")
        if assignments.size and (
            assignments.min() < 0 or assignments.max() >= self.n_shards
        ):
            raise ServingError(
                f"shard ids must lie in [0, {self.n_shards})"
            )
        object.__setattr__(self, "assignments", assignments)

    @property
    def n_rows(self) -> int:
        """Number of placed dataset rows."""
        return int(self.assignments.size)

    def rows_of(self, shard_id: int) -> np.ndarray:
        """Global row indices living on one shard (ascending)."""
        return np.flatnonzero(self.assignments == shard_id)


def plan_placement(
    n: int, n_shards: int, kind: str = "range", seed: int = 0
) -> ShardPlacement:
    """A deterministic placement of ``n`` rows over ``n_shards`` shards.

    ``range`` slices the dataset into contiguous blocks of near-equal
    size (the first ``n % n_shards`` shards get one extra row);
    ``hash`` scatters rows by a seeded multiplicative hash of the global
    index, decorrelating placement from dataset order.
    """
    if n < 1:
        raise ServingError("cannot place an empty dataset")
    if n_shards < 1:
        raise ServingError("need at least one shard")
    if kind not in PLACEMENT_KINDS:
        raise ServingError(
            f"unknown placement {kind!r}; expected one of {PLACEMENT_KINDS}"
        )
    if kind == "range":
        base, extra = divmod(n, n_shards)
        sizes = [base + (1 if s < extra else 0) for s in range(n_shards)]
        assignments = np.repeat(np.arange(n_shards, dtype=np.int64), sizes)
    else:
        idx = np.arange(n, dtype=np.uint64) + np.uint64(seed)
        hashed = (idx * np.uint64(_HASH_MULTIPLIER)) % np.uint64(2**32)
        assignments = (hashed % np.uint64(n_shards)).astype(np.int64)
    return ShardPlacement(
        n_shards=n_shards, assignments=assignments, kind=kind
    )


@dataclass(frozen=True)
class KNNAnswer:
    """Merged top-k of one query in canonical ``(score, index)`` order."""

    indices: np.ndarray
    scores: np.ndarray
    refined: int
    pruned: int
    approximate: bool = False


@dataclass(frozen=True)
class AssignAnswer:
    """k-means-assist result: nearest center per global dataset row."""

    assignments: np.ndarray
    distances: np.ndarray
    refined: int
    pruned: int


@dataclass
class GatherTiming:
    """Simulated-time breakdown of one scatter/gather dispatch.

    Shards run in parallel (each is an independent memory module), so
    the dispatch occupies the service for ``max`` over shards of PIM
    wave time plus shard-local CPU time, serialized with the
    coordinator's merge.
    """

    per_shard_pim_ns: list = field(default_factory=list)
    per_shard_cpu_ns: list = field(default_factory=list)
    merge_cpu_ns: float = 0.0

    @property
    def service_ns(self) -> float:
        """End-to-end occupancy of the dispatch."""
        spans = [
            p + c
            for p, c in zip(self.per_shard_pim_ns, self.per_shard_cpu_ns)
        ]
        return (max(spans) if spans else 0.0) + self.merge_cpu_ns


class _Shard:
    """One PIM module: a row subset, its side data, and its engine."""

    def __init__(
        self,
        shard_id: int,
        global_indices: np.ndarray,
        integers: np.ndarray,
        phi: np.ndarray,
        floats: np.ndarray,
        hardware: HardwareConfig,
        chunked: bool,
        reprogram_budget: int | None,
    ) -> None:
        self.shard_id = shard_id
        self.global_indices = global_indices
        self.integers = integers
        self.phi = phi
        self.floats = floats
        self.name = f"shard{shard_id}"
        self.busy_ns = 0.0
        self.reprogram_budget = reprogram_budget
        self.engine: ChunkedDotProductEngine | None = None
        self.controller: PIMController | None = None
        if self.n_rows == 0:
            return
        if chunked:
            self.engine = ChunkedDotProductEngine(hardware)
            self.engine.load(integers)
        else:
            self.controller = PIMController(hardware)
            self.controller.program(
                self.name, integers, side_data_bytes=phi.nbytes
            )

    @property
    def n_rows(self) -> int:
        return int(self.global_indices.size)

    @property
    def pim_stats(self) -> PIMStats:
        """This shard's array-level stats (empty for an empty shard)."""
        if self.controller is not None:
            return self.controller.pim.stats
        if self.engine is not None:
            return self.engine.pim.stats
        return PIMStats()

    def dot_products(self, queries_int: np.ndarray) -> tuple[np.ndarray, float]:
        """``(B, n_rows)`` integer dot products and their PIM time."""
        if self.n_rows == 0:
            return np.zeros((queries_int.shape[0], 0), dtype=np.int64), 0.0
        if self.controller is not None:
            result = self.controller.dot_products_batch(
                self.name, queries_int
            )
            return result.values, result.timing.total_ns
        assert self.engine is not None
        before = self.engine.stats.total_time_ns
        rows = [self.engine.dot_products_all(q) for q in queries_int]
        if (
            self.reprogram_budget is not None
            and self.engine.stats.reprogrammings > self.reprogram_budget
        ):
            raise ServingError(
                f"shard {self.shard_id} exceeded its re-programming "
                f"budget ({self.engine.stats.reprogrammings} > "
                f"{self.reprogram_budget} crossbar writes)"
            )
        return np.stack(rows), self.engine.stats.total_time_ns - before


class _CanonicalHeap:
    """The k smallest candidates by ``(score, global index)`` lex order.

    Unlike the mining layer's heap (which keeps the first-seen among
    equal scores, a visit-order artifact), ties always resolve to the
    lowest global index — the property that makes merged shard results
    placement-invariant.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (-score, -index)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def threshold(self) -> float:
        """Current k-th best score (+inf while not yet full)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, score: float, index: int) -> bool:
        """Insert if ``(score, index)`` beats the current worst member."""
        entry = (-score, -index)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def sorted_items(self) -> list[tuple[float, int]]:
        """Members as ``(score, index)``, canonical order."""
        return sorted((-s, -i) for s, i in self._heap)


def _merge_heaps(heaps: list[_CanonicalHeap], k: int) -> _CanonicalHeap:
    """Global top-k from per-shard top-k lists (canonical order)."""
    merged = _CanonicalHeap(k)
    for heap in heaps:
        for score, index in heap.sorted_items():
            merged.offer(score, index)
    return merged


class ShardManager:
    """Partition a dataset over N PIM shards; serve exact queries.

    Parameters
    ----------
    data:
        The float dataset, ``(n, dims)``. Normalisation statistics and
        the quantizer are global, shared by every shard.
    n_shards:
        Shard count when ``placement`` is a kind string.
    placement:
        ``"range"``, ``"hash"``, or an explicit :class:`ShardPlacement`.
    hardware:
        Per-shard platform (each shard instantiates its own array).
    quantizer:
        Global quantizer; defaults to the paper's alpha, fitted here.
    chunked:
        Route shards through :class:`ChunkedDotProductEngine` (for
        shards larger than one array) instead of resident programming.
    reprogram_budget:
        With ``chunked``, the per-shard cap on cumulative crossbar
        re-programmings before :class:`~repro.errors.ServingError`.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_shards: int = 1,
        placement: str | ShardPlacement = "range",
        *,
        hardware: HardwareConfig | None = None,
        quantizer: Quantizer | None = None,
        chunked: bool = False,
        reprogram_budget: int | None = None,
        seed: int = 0,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 1:
            raise ServingError(
                "ShardManager expects a non-empty (n, dims) dataset"
            )
        self.hardware = hardware if hardware is not None else pim_platform()
        if isinstance(placement, ShardPlacement):
            if placement.n_rows != data.shape[0]:
                raise ServingError(
                    "placement covers "
                    f"{placement.n_rows} rows, dataset has {data.shape[0]}"
                )
            self.placement = placement
        else:
            self.placement = plan_placement(
                data.shape[0], n_shards, kind=placement, seed=seed
            )
        self.n_shards = self.placement.n_shards
        self.dims = int(data.shape[1])
        self.n_rows = int(data.shape[0])
        self.quantizer = (
            quantizer if quantizer is not None else Quantizer()
        )
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        self.cost_model = CostModel(self.hardware)
        qv = self.quantizer.quantize(data)
        normalized = self.quantizer.normalize(data)
        phi = (qv.scaled**2).sum(axis=1) - 2.0 * qv.integers.sum(axis=1)
        self.shards: list[_Shard] = []
        for s in range(self.n_shards):
            rows = self.placement.rows_of(s)
            self.shards.append(
                _Shard(
                    s,
                    rows,
                    qv.integers[rows],
                    phi[rows],
                    normalized[rows],
                    self.hardware,
                    chunked,
                    reprogram_budget,
                )
            )

    # ------------------------------------------------------------------
    # CPU accounting (Quartz model, one bucket per stage)
    # ------------------------------------------------------------------
    def _cpu_ns(self, **events) -> float:
        counters = PerfCounters()
        counters.record("serving", calls=1, **events)
        return self.cost_model.total_time_ns(counters)

    def _shard_cpu_ns(self, n_local: int, queries: int, refined: int) -> float:
        """Shard-local host work: bound combine, sort, refine, heap."""
        n_visited = n_local * queries  # worst case; refined <= visited
        return self._cpu_ns(
            # lb = (phi_p + phi_q - 2 dots - 2d) / alpha^2, clip
            flops=5.0 * n_visited,
            bytes_cached=16.0 * n_visited,
            # lexsort by (lb, index) + candidate scan / heap maintenance
            branches=1.5 * n_visited * max(np.log2(max(n_local, 2)), 1.0)
            + 2.0 * n_visited,
            # exact refinement of the surviving candidates
            long_ops=0.0,
        ) + self._cpu_ns(
            flops=3.0 * self.dims * refined,
            bytes_from_memory=4.0 * self.dims * refined,
        )

    def _merge_cpu_ns(self, candidates: int) -> float:
        """Coordinator gather: merge the per-shard k-lists."""
        if candidates <= 0:
            return 0.0
        return self._cpu_ns(
            flops=candidates,
            branches=2.0 * candidates * max(np.log2(max(candidates, 2)), 1.0),
            bytes_cached=16.0 * candidates,
        )

    # ------------------------------------------------------------------
    # kNN scatter/gather
    # ------------------------------------------------------------------
    def _prepare_queries(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dims:
            raise ServingError(
                f"queries must have {self.dims} dimensions"
            )
        qv = self.quantizer.quantize(queries)
        normalized = self.quantizer.normalize(queries)
        phi_q = (qv.scaled**2).sum(axis=1) - 2.0 * qv.integers.sum(axis=1)
        return qv.integers, normalized, phi_q

    def _shard_topk(
        self,
        shard: _Shard,
        dots: np.ndarray,
        phi_q: float,
        q_norm: np.ndarray,
        k: int,
        approximate: bool,
    ) -> tuple[_CanonicalHeap, int, int]:
        """Local top-k of one query on one shard (canonical order)."""
        heap = _CanonicalHeap(k)
        if shard.n_rows == 0:
            return heap, 0, 0
        alpha2 = self.quantizer.alpha**2
        lb = (shard.phi + phi_q - 2.0 * dots - 2.0 * self.dims) / alpha2
        np.maximum(lb, 0.0, out=lb)
        if approximate:
            # degrade-to-approximate: the lower bound IS the score
            order = np.lexsort((shard.global_indices, lb))[:k]
            for j in order:
                heap.offer(float(lb[j]), int(shard.global_indices[j]))
            return heap, 0, shard.n_rows - int(order.size)
        order = np.lexsort((shard.global_indices, lb))
        refined = 0
        for j in order:
            if lb[j] > heap.threshold:
                break  # visit order is ascending lb: the rest prune too
            row = shard.floats[j]
            diff = row - q_norm
            score = float(diff @ diff)
            heap.offer(score, int(shard.global_indices[j]))
            refined += 1
        return heap, refined, shard.n_rows - refined

    def knn_batch(
        self,
        queries: np.ndarray,
        ks,
        approximate=None,
    ) -> tuple[list[KNNAnswer], GatherTiming]:
        """Exact (or per-query degraded) kNN for a batch of queries.

        ``ks`` is an int or a per-query sequence; ``approximate``
        likewise a bool or per-query flags. All queries ride one batched
        wave per shard, so the batch amortizes pipeline setup exactly as
        the mining layer's :class:`~repro.core.planner.BatchScheduler`
        flushes do.
        """
        q_int, q_norm, phi_q = self._prepare_queries(queries)
        batch = q_int.shape[0]
        k_list = (
            [int(ks)] * batch if np.isscalar(ks) else [int(k) for k in ks]
        )
        if len(k_list) != batch:
            raise ServingError("ks must match the query batch")
        if any(k < 1 for k in k_list):
            raise ServingError("k must be >= 1")
        approx_list = (
            [bool(approximate)] * batch
            if approximate is None or isinstance(approximate, bool)
            else [bool(a) for a in approximate]
        )
        if len(approx_list) != batch:
            raise ServingError("approximate flags must match the batch")
        timing = GatherTiming()
        tele = get_recorder()
        per_query_heaps: list[list[_CanonicalHeap]] = [[] for _ in range(batch)]
        refined_total = [0] * batch
        pruned_total = [0] * batch
        for shard in self.shards:
            with tele.span(
                "serving.scatter", "serving",
                shard=shard.shard_id, rows=shard.n_rows, queries=batch,
            ):
                dots, pim_ns = shard.dot_products(q_int)
                refined_here = 0
                for b in range(batch):
                    heap, refined, pruned = self._shard_topk(
                        shard,
                        dots[b],
                        float(phi_q[b]),
                        q_norm[b],
                        min(k_list[b], max(self.n_rows, 1)),
                        approx_list[b],
                    )
                    per_query_heaps[b].append(heap)
                    refined_total[b] += refined
                    pruned_total[b] += pruned
                    refined_here += refined
                cpu_ns = self._shard_cpu_ns(
                    shard.n_rows, batch, refined_here
                )
                tele.advance(cpu_ns)
            timing.per_shard_pim_ns.append(pim_ns)
            timing.per_shard_cpu_ns.append(cpu_ns)
            shard.busy_ns += pim_ns + cpu_ns
        answers: list[KNNAnswer] = []
        merge_candidates = 0
        for b in range(batch):
            merged = _merge_heaps(per_query_heaps[b], k_list[b])
            merge_candidates += sum(len(h) for h in per_query_heaps[b])
            items = merged.sorted_items()
            answers.append(
                KNNAnswer(
                    indices=np.array([i for _, i in items], dtype=np.int64),
                    scores=np.array([s for s, _ in items], dtype=np.float64),
                    refined=refined_total[b],
                    pruned=pruned_total[b],
                    approximate=approx_list[b],
                )
            )
        with tele.span(
            "serving.gather", "serving",
            queries=batch, candidates=merge_candidates,
        ):
            timing.merge_cpu_ns = self._merge_cpu_ns(merge_candidates)
            tele.advance(timing.merge_cpu_ns)
        if tele.enabled:
            tele.metrics.counter("serving.queries").add(batch)
            tele.metrics.counter("serving.refined").add(sum(refined_total))
            tele.metrics.counter("serving.pruned").add(sum(pruned_total))
        return answers, timing

    def knn(self, query: np.ndarray, k: int) -> KNNAnswer:
        """Exact kNN of a single query (see :meth:`knn_batch`)."""
        answers, _ = self.knn_batch(np.atleast_2d(query), k)
        return answers[0]

    # ------------------------------------------------------------------
    # k-means assist
    # ------------------------------------------------------------------
    def assign(self, centers: np.ndarray) -> tuple[AssignAnswer, GatherTiming]:
        """Nearest center of every dataset row (k-means assist).

        Exact, with the canonical lowest-center-index tie-break: centers
        are considered in index order and only a strictly smaller
        distance replaces the incumbent.
        """
        c_int, c_norm, phi_c = self._prepare_queries(centers)
        n_centers = c_int.shape[0]
        assignments = np.empty(self.n_rows, dtype=np.int64)
        distances = np.empty(self.n_rows, dtype=np.float64)
        timing = GatherTiming()
        tele = get_recorder()
        alpha2 = self.quantizer.alpha**2
        refined_all = 0
        pruned_all = 0
        for shard in self.shards:
            with tele.span(
                "serving.assist", "serving",
                shard=shard.shard_id, rows=shard.n_rows, centers=n_centers,
            ):
                dots, pim_ns = shard.dot_products(c_int)
                refined = 0
                for j in range(shard.n_rows):
                    lb = (
                        shard.phi[j] + phi_c - 2.0 * dots[:, j]
                        - 2.0 * self.dims
                    ) / alpha2
                    np.maximum(lb, 0.0, out=lb)
                    best_d = np.inf
                    best_c = 0
                    row = shard.floats[j]
                    for c in range(n_centers):
                        if lb[c] > best_d:
                            continue
                        diff = row - c_norm[c]
                        d = float(diff @ diff)
                        refined += 1
                        if d < best_d:
                            best_d = d
                            best_c = c
                    gi = shard.global_indices[j]
                    assignments[gi] = best_c
                    distances[gi] = best_d
                cpu_ns = self._shard_cpu_ns(
                    shard.n_rows, n_centers, refined
                )
                tele.advance(cpu_ns)
            timing.per_shard_pim_ns.append(pim_ns)
            timing.per_shard_cpu_ns.append(cpu_ns)
            shard.busy_ns += pim_ns + cpu_ns
            refined_all += refined
            pruned_all += shard.n_rows * n_centers - refined
        if tele.enabled:
            tele.metrics.counter("serving.assist_rows").add(self.n_rows)
        return (
            AssignAnswer(
                assignments=assignments,
                distances=distances,
                refined=refined_all,
                pruned=pruned_all,
            ),
            timing,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shard_sizes(self) -> list[int]:
        """Rows per shard, by shard id."""
        return [shard.n_rows for shard in self.shards]

    def shard_busy_ns(self) -> list[float]:
        """Cumulative simulated busy time per shard."""
        return [shard.busy_ns for shard in self.shards]

    def reset_busy(self) -> None:
        """Zero the per-shard busy accounting (e.g. after a probe)."""
        for shard in self.shards:
            shard.busy_ns = 0.0

    def merged_stats(self) -> PIMStats:
        """Aggregate array stats over every shard, namespaced per shard."""
        return PIMStats.merge(
            [shard.pim_stats for shard in self.shards],
            prefixes=[f"shard{s}." for s in range(self.n_shards)],
        )
