"""Dataset placement across PIM shards and exact scatter/gather.

A *shard* is one PIM memory module (its own :class:`~repro.hardware.pim_array.PIMArray`)
holding a subset of the dataset rows. :class:`ShardManager` owns the
placement and answers queries by scattering the quantized query to every
shard, letting each shard filter-and-refine its local rows, and merging
the per-shard top-k lists — the SimplePIM-style thin software layer that
turns N independent arrays into one logical store.

Exactness and placement invariance
----------------------------------
Merged results must be *bit-identical* for every placement of the same
dataset, so every numeric step is defined per global row:

* one **global quantizer** is fitted on the full dataset and shared by
  all shards — a per-shard fit would make the PIM lower bounds depend on
  which rows share a shard;
* shard-local work visits candidates in ``(lower bound, global index)``
  order and maintains the k best by the canonical ``(score, global
  index)`` lexicographic order, so duplicate distances always resolve to
  the lowest global index no matter which shard refined them;
* pruning is strict (``lb > threshold``), so boundary ties are always
  refined rather than dropped.

Exact scores are squared Euclidean distances in the quantizer's
normalised space — the space Theorem 1's bound provably lower-bounds.

Replication and recovery
------------------------
With ``replication=r`` the placement's shard ids are reinterpreted as
*chunk* ids and chunk ``c`` is programmed onto shards ``(c + j) % N``
for ``j < r``; each dispatch serves every chunk from exactly one live
replica, so no row is ever double-counted. Because the quantizer is
global and ties resolve canonically, *any* choice of live replicas
yields bit-identical results — failover is invisible in the values.
When a :class:`~repro.faults.FaultPlan` is attached, dispatches survive
crashes, hangs, stragglers and corrupted waves via bounded retries with
capped exponential backoff, per-attempt timeouts, replica failover and
(last resort) host-side exact recomputation of an unavailable chunk —
see :class:`~repro.serving.health.RecoveryPolicy`. Wave integrity is
checked with a residue checksum row (:mod:`repro.faults.integrity`)
programmed alongside the data, so a corrupted wave is detected and
never silently used.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cost.counters import PerfCounters
from repro.cost.model import CostModel
from repro.errors import (
    CapacityError,
    ChunkUnavailableError,
    CrossbarDeadError,
    ReproError,
    ServingError,
    ShardHungError,
)
from repro.faults.injectors import FaultyPIMArray, FaultyShardEngine, ShardVerdict
from repro.faults.integrity import append_checksum_row, verify_wave_residues
from repro.faults.plan import FaultPlan
from repro.hardware.config import (
    DOMAIN_LEVELS,
    FailureDomainTopology,
    HardwareConfig,
    pim_platform,
)
from repro.hardware.controller import PIMController
from repro.hardware.mapper import total_crossbars
from repro.hardware.pim_array import PIMStats
from repro.hardware.reprogramming import ChunkedDotProductEngine
from repro.serving.health import (
    HedgeBudget,
    RecoveryPolicy,
    ShardHealthTracker,
)
from repro.similarity.quantization import Quantizer
from repro.telemetry import get_recorder

PLACEMENT_KINDS = ("range", "hash")

#: Knuth's multiplicative constant; spreads consecutive indices evenly.
_HASH_MULTIPLIER = 2654435761


def exact_sq_distances(rows: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Canonical exact scoring kernel: squared Euclidean per row.

    Every exact-scoring path — shard refinement, degraded host-side
    recompute, the k-means assist, the loop-reference oracles and the
    test oracles — must route through this one expression. The einsum
    reduces each row independently, so a row's score does not depend on
    which other rows ride in the same call; scoring rows one at a time,
    in blocks, or all at once yields bit-identical floats. That row
    independence is what lets the fused batch paths match the
    sequential reference paths bit for bit (a plain ``diff @ diff``
    BLAS dot does *not* guarantee this across batch shapes).
    """
    diff = np.atleast_2d(rows) - query
    return np.einsum("ij,ij->i", diff, diff)


@dataclass(frozen=True)
class ShardPlacement:
    """Which shard each global dataset row lives on.

    ``assignments[i]`` is the shard id of global row ``i``; shard ids
    must lie in ``[0, n_shards)``. Empty shards are allowed (they simply
    contribute no candidates), which keeps arbitrary explicit placements
    — the property tests exercise them — legal.
    """

    n_shards: int
    assignments: np.ndarray
    kind: str = "explicit"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ServingError("a placement needs at least one shard")
        assignments = np.asarray(self.assignments, dtype=np.int64)
        if assignments.ndim != 1:
            raise ServingError("assignments must be a 1-D shard-id vector")
        if assignments.size and (
            assignments.min() < 0 or assignments.max() >= self.n_shards
        ):
            raise ServingError(
                f"shard ids must lie in [0, {self.n_shards})"
            )
        object.__setattr__(self, "assignments", assignments)

    @property
    def n_rows(self) -> int:
        """Number of placed dataset rows."""
        return int(self.assignments.size)

    def rows_of(self, shard_id: int) -> np.ndarray:
        """Global row indices living on one shard (ascending)."""
        return np.flatnonzero(self.assignments == shard_id)


def plan_placement(
    n: int, n_shards: int, kind: str = "range", seed: int = 0
) -> ShardPlacement:
    """A deterministic placement of ``n`` rows over ``n_shards`` shards.

    ``range`` slices the dataset into contiguous blocks of near-equal
    size (the first ``n % n_shards`` shards get one extra row);
    ``hash`` scatters rows by a seeded multiplicative hash of the global
    index, decorrelating placement from dataset order.
    """
    if n < 1:
        raise ServingError("cannot place an empty dataset")
    if n_shards < 1:
        raise ServingError("need at least one shard")
    if kind not in PLACEMENT_KINDS:
        raise ServingError(
            f"unknown placement {kind!r}; expected one of {PLACEMENT_KINDS}"
        )
    if kind == "range":
        base, extra = divmod(n, n_shards)
        sizes = [base + (1 if s < extra else 0) for s in range(n_shards)]
        assignments = np.repeat(np.arange(n_shards, dtype=np.int64), sizes)
    else:
        idx = np.arange(n, dtype=np.uint64) + np.uint64(seed)
        hashed = (idx * np.uint64(_HASH_MULTIPLIER)) % np.uint64(2**32)
        assignments = (hashed % np.uint64(n_shards)).astype(np.int64)
    return ShardPlacement(
        n_shards=n_shards, assignments=assignments, kind=kind
    )


@dataclass(frozen=True)
class KNNAnswer:
    """Merged top-k of one query in canonical ``(score, index)`` order."""

    indices: np.ndarray
    scores: np.ndarray
    refined: int
    pruned: int
    approximate: bool = False
    degraded: bool = False


@dataclass(frozen=True)
class AssignAnswer:
    """k-means-assist result: nearest center per global dataset row."""

    assignments: np.ndarray
    distances: np.ndarray
    refined: int
    pruned: int
    degraded: bool = False


@dataclass
class GatherTiming:
    """Simulated-time breakdown of one scatter/gather dispatch.

    Shards run in parallel (each is an independent memory module), so
    the dispatch occupies the service for the latest per-shard wave
    completion (``wave_end_ns``, which under faults includes failed
    attempts, backoff idle time and failovers serialized per shard),
    then any degraded host-side recompute, then the coordinator's merge.
    The recovery counters record what it took to get every chunk served.
    """

    per_shard_pim_ns: list = field(default_factory=list)
    per_shard_cpu_ns: list = field(default_factory=list)
    merge_cpu_ns: float = 0.0
    wave_end_ns: list = field(default_factory=list)
    #: One dict per ``wave_end_ns`` entry: the winning wave's shard,
    #: dispatch-relative start (everything before it — failed attempts,
    #: backoff, queueing behind the shard — is retry/wait time), and its
    #: pim/cpu split, so the critical path decomposes exactly.
    wave_components: list = field(default_factory=list)
    degraded_cpu_ns: float = 0.0
    attempts: int = 0
    retries: int = 0
    failovers: int = 0
    hedges: int = 0
    #: hedged waves that finished before their original (and vice
    #: versa); the loser is cancelled at the winner's completion and
    #: only charged for the time it actually ran — the cancelled
    #: remainder accumulates in ``hedge_cancelled_ns`` instead of
    #: inflating shard busy time or the merged PIM stats.
    hedges_won: int = 0
    hedges_lost: int = 0
    #: hedges the global budget refused (token bucket dry)
    hedges_denied: int = 0
    hedge_cancelled_ns: float = 0.0
    timeouts: int = 0
    corrupt_detected: int = 0
    crashes: int = 0
    backoff_ns: float = 0.0
    degraded_chunks: int = 0
    #: dispatches a flaky host<->shard link dropped (transient fails)
    link_drops: int = 0

    @property
    def service_ns(self) -> float:
        """End-to-end occupancy of the dispatch."""
        if self.wave_end_ns:
            tail = max(self.wave_end_ns)
        else:
            spans = [
                p + c
                for p, c in zip(self.per_shard_pim_ns, self.per_shard_cpu_ns)
            ]
            tail = max(spans) if spans else 0.0
        return tail + self.degraded_cpu_ns + self.merge_cpu_ns

    def critical_path(self) -> dict:
        """Attribute :attr:`service_ns` to its latency segments.

        Follows the same tail-wave logic as :attr:`service_ns`, so
        ``retry_ns + wave_ns + host_ns + degraded_ns + gather_ns`` sums
        back to the dispatch occupancy (to float rounding, well inside
        1 simulated ns).
        """
        path = {
            "retry_ns": 0.0,
            "wave_ns": 0.0,
            "host_ns": 0.0,
            "degraded_ns": self.degraded_cpu_ns,
            "gather_ns": self.merge_cpu_ns,
            "shard": None,
        }
        if self.wave_end_ns:
            i = max(
                range(len(self.wave_end_ns)),
                key=lambda j: self.wave_end_ns[j],
            )
            tail = self.wave_end_ns[i]
            if i < len(self.wave_components):
                comp = self.wave_components[i]
                path["wave_ns"] = comp["pim_ns"]
                path["host_ns"] = comp["cpu_ns"]
                path["retry_ns"] = max(
                    0.0, tail - comp["pim_ns"] - comp["cpu_ns"]
                )
                path["shard"] = comp["shard"]
            else:
                path["retry_ns"] = tail
        else:
            spans = [
                p + c
                for p, c in zip(self.per_shard_pim_ns, self.per_shard_cpu_ns)
            ]
            if spans:
                i = max(range(len(spans)), key=lambda j: spans[j])
                path["wave_ns"] = self.per_shard_pim_ns[i]
                path["host_ns"] = self.per_shard_cpu_ns[i]
                path["shard"] = i
        return path


class _Shard:
    """One PIM module: a row subset, its side data, and its engine.

    With ``verify=True`` the programmed matrix carries one extra
    checksum row (see :mod:`repro.faults.integrity`), so waves return
    ``n_rows + 1`` values; callers verify and strip the last column.
    With a fault plan, the shard's array is wrapped in a
    :class:`~repro.faults.injectors.FaultyPIMArray` targeting this
    shard's name and a :class:`~repro.faults.injectors.FaultyShardEngine`
    answers crash/hang/slow verdicts per dispatch.
    """

    def __init__(
        self,
        shard_id: int,
        global_indices: np.ndarray,
        integers: np.ndarray,
        phi: np.ndarray,
        floats: np.ndarray,
        hardware: HardwareConfig,
        chunked: bool,
        reprogram_budget: int | None,
        verify: bool = False,
        fault_plan: FaultPlan | None = None,
        spare_crossbars: int = 0,
        substrate: str = "crossbar",
    ) -> None:
        self.shard_id = shard_id
        self.global_indices = global_indices
        self.integers = integers
        self.phi = phi
        self.floats = floats
        self.name = f"shard{shard_id}"
        self.busy_ns = 0.0
        # PIM time charged to this shard's stats by waves whose result
        # was discarded after a hedge race was decided — subtracted from
        # the merged PIMStats so hedging never double-counts device time.
        self.cancelled_pim_ns = 0.0
        self.hardware = hardware
        self.fault_plan = fault_plan
        self.spare_crossbars = spare_crossbars
        self.substrate = substrate
        self.reprogram_budget = reprogram_budget
        self.verify = verify and not chunked
        self.chunk_slices: dict[int, slice] = {}
        self.engine: ChunkedDotProductEngine | None = None
        self.controller: PIMController | None = None
        self.faulty: FaultyPIMArray | None = None
        self.fault_engine: FaultyShardEngine | None = (
            FaultyShardEngine(fault_plan, self.name)
            if fault_plan is not None
            else None
        )
        if self.n_rows == 0:
            self.verify = False
            return
        if chunked:
            self.engine = ChunkedDotProductEngine(hardware)
            if fault_plan is not None:
                self.faulty = FaultyPIMArray(
                    self.engine.pim, fault_plan, self.name,
                    auto_advance=False,
                )
                self.engine.pim = self.faulty
            self.engine.load(integers)
        else:
            self.controller = PIMController(
                hardware,
                spare_crossbars=spare_crossbars,
                substrate=substrate,
            )
            if fault_plan is not None:
                self.faulty = FaultyPIMArray(
                    self.controller.pim, fault_plan, self.name,
                    auto_advance=False,
                )
                self.controller.pim = self.faulty
            payload = (
                append_checksum_row(
                    integers, hardware.pim.operand_bits
                )
                if self.verify
                else integers
            )
            self.controller.program(
                self.name, payload, side_data_bytes=phi.nbytes
            )

    def advance_clock(self, t_ns: float) -> None:
        """Move this shard's fault clock to simulated time ``t_ns``."""
        if self.faulty is not None:
            self.faulty.advance_to(t_ns)

    def reprogram(self, verify: bool) -> float:
        """(Re)program the full matrix after the shard's rows changed.

        Used by live re-replication: a chunk's rows were appended, so
        the shard's matrix (and checksum row, when verifying) must be
        rewritten. Creates the controller lazily for a previously-empty
        shard. Returns the programming receipt time in ns — the caller
        (the repair controller) charges it against the repair budget.
        """
        if self.engine is not None:
            raise ServingError(
                "re-replication needs resident programming; the chunked "
                "engine re-programs per chunk already"
            )
        if self.controller is None:
            self.controller = PIMController(
                self.hardware,
                spare_crossbars=self.spare_crossbars,
                substrate=self.substrate,
            )
            if self.fault_plan is not None:
                self.faulty = FaultyPIMArray(
                    self.controller.pim, self.fault_plan, self.name,
                    auto_advance=False,
                )
                self.controller.pim = self.faulty
            self.verify = verify
        elif self.name in self.controller.pim.layouts():
            # absent when a failed reprogram already erased the matrix
            # (the rollback path re-programs from scratch)
            self.controller.pim.reset_matrix(self.name)
        payload = (
            append_checksum_row(
                self.integers, self.hardware.pim.operand_bits
            )
            if self.verify
            else self.integers
        )
        receipt = self.controller.program(
            self.name, payload, side_data_bytes=self.phi.nbytes
        )
        return receipt.total_ns

    def can_host(self, extra_rows: int, verify: bool) -> bool:
        """Whether the matrix rewritten with ``extra_rows`` more vectors fits.

        The capacity check live re-replication runs *before* mutating
        this shard: the combined payload (checksum row included) must
        fit the device net of the spare-unit reservation and of any
        other matrix it hosts. ``verify`` is only consulted when the
        shard has never been programmed (its own flag is authoritative
        otherwise). Substrate-agnostic: a live device answers through
        its :meth:`fits_matrix` hook, an unbuilt shard through the
        backend's capability descriptor.
        """
        v = self.verify if self.controller is not None else verify
        n = self.n_rows + int(extra_rows) + (1 if v else 0)
        dims = self.integers.shape[1]
        if self.controller is None:
            if self.substrate == "crossbar":
                # the historical fast path, kept import-free
                config = self.hardware.pim
                needed = total_crossbars(n, dims, config)
                return needed <= config.num_crossbars - self.spare_crossbars
            from repro.substrate import substrate_capabilities

            return substrate_capabilities(
                self.substrate, self.hardware
            ).fits_fresh(n, dims, self.spare_crossbars)
        return self.controller.pim.fits_matrix(n, dims, exclude=self.name)

    @property
    def n_rows(self) -> int:
        return int(self.global_indices.size)

    @property
    def pim_stats(self) -> PIMStats:
        """This shard's array-level stats (empty for an empty shard)."""
        if self.controller is not None:
            return self.controller.pim.stats
        if self.engine is not None:
            return self.engine.pim.stats
        return PIMStats()

    def dot_products(self, queries_int: np.ndarray) -> tuple[np.ndarray, float]:
        """``(B, n_rows)`` integer dot products and their PIM time."""
        if self.n_rows == 0:
            return np.zeros((queries_int.shape[0], 0), dtype=np.int64), 0.0
        if self.controller is not None:
            result = self.controller.dot_products_batch(
                self.name, queries_int
            )
            return result.values, result.timing.total_ns
        assert self.engine is not None
        before = self.engine.stats.total_time_ns
        rows = [self.engine.dot_products_all(q) for q in queries_int]
        if (
            self.reprogram_budget is not None
            and self.engine.stats.reprogrammings > self.reprogram_budget
        ):
            raise ServingError(
                f"shard {self.shard_id} exceeded its re-programming "
                f"budget ({self.engine.stats.reprogrammings} > "
                f"{self.reprogram_budget} crossbar writes)"
            )
        return np.stack(rows), self.engine.stats.total_time_ns - before


class _CanonicalHeap:
    """The k smallest candidates by ``(score, global index)`` lex order.

    Unlike the mining layer's heap (which keeps the first-seen among
    equal scores, a visit-order artifact), ties always resolve to the
    lowest global index — the property that makes merged shard results
    placement-invariant.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (-score, -index)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def threshold(self) -> float:
        """Current k-th best score (+inf while not yet full)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, score: float, index: int) -> bool:
        """Insert if ``(score, index)`` beats the current worst member."""
        entry = (-score, -index)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def sorted_items(self) -> list[tuple[float, int]]:
        """Members as ``(score, index)``, canonical order."""
        return sorted((-s, -i) for s, i in self._heap)


def _merge_heaps(heaps: list[_CanonicalHeap], k: int) -> _CanonicalHeap:
    """Global top-k from per-shard top-k lists (canonical order)."""
    merged = _CanonicalHeap(k)
    for heap in heaps:
        for score, index in heap.sorted_items():
            merged.offer(score, index)
    return merged


class ShardManager:
    """Partition a dataset over N PIM shards; serve exact queries.

    Parameters
    ----------
    data:
        The float dataset, ``(n, dims)``. Normalisation statistics and
        the quantizer are global, shared by every shard.
    n_shards:
        Shard count when ``placement`` is a kind string.
    placement:
        ``"range"``, ``"hash"``, or an explicit :class:`ShardPlacement`.
    hardware:
        Per-shard platform (each shard instantiates its own array).
    quantizer:
        Global quantizer; defaults to the paper's alpha, fitted here.
    chunked:
        Route shards through :class:`ChunkedDotProductEngine` (for
        shards larger than one array) instead of resident programming.
    reprogram_budget:
        With ``chunked``, the per-shard cap on cumulative crossbar
        re-programmings before :class:`~repro.errors.ServingError`.
    replication:
        Replicas per data chunk (the placement's shard ids become chunk
        ids; chunk ``c`` lives on shards ``(c + j) % n_shards`` for
        ``j < replication``). 1 reproduces unreplicated behaviour
        bit for bit.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; attaches injectors to
        every shard and turns on the recovery machinery.
    recovery:
        Retry/backoff/timeout/hedging/degradation knobs; defaults to
        :class:`~repro.serving.health.RecoveryPolicy`.
    verify:
        Program a residue checksum row per shard and verify every wave
        (detection of corrupted waves). Defaults to on exactly when a
        fault plan is attached and the shard path supports it (resident
        programming only — the chunked engine re-programs crossbars per
        chunk and does not carry the checksum row).
    reference:
        Route the host-side candidate scan, refinement and k-means
        assist through the original one-candidate-at-a-time loops
        instead of the fused block kernels. Both call
        :func:`exact_sq_distances` per row, so answers, refined/pruned
        counts and simulated timings are bit-identical — the loops stay
        as the independent oracle the fusion property suite checks
        against.
    substrates:
        Per-shard compute backend, by registry name: a single name for
        a homogeneous fleet, or one name per shard for heterogeneous
        placements (e.g. ``["crossbar", "hbm_pim", ...]``). Defaults to
        ``"crossbar"`` everywhere. Every substrate computes the same
        exact integer dot products, so answers are bit-identical for
        any assignment — only the simulated cost differs. Requires
        resident programming (``chunked=False``) for non-crossbar
        backends.
    route:
        Replica-preference policy under replication: ``"auto"`` runs
        the planner cost-router (latency objective) exactly when the
        fleet is heterogeneous, ``"latency"``/``"energy"`` force it
        with that objective, ``"none"`` keeps the historical
        round-robin order. Routing only permutes which replica is
        *tried first* — failover still walks the remaining replicas,
        so values are unchanged by construction.
    topology:
        Optional :class:`~repro.hardware.config.FailureDomainTopology`
        mapping shard ids onto the board/channel/power-domain tree.
        With ``spread=True`` (the default) replica placement becomes
        *domain-spread*: each chunk's replicas are placed so that no
        two share a failure domain whenever the fleet shape allows,
        and every unavoidable co-domain pairing is recorded in
        ``placement_violations``. Because answers are placement-
        invariant by construction, spread placement changes *which*
        shards host a chunk but never the values served.
    spread:
        With a topology attached, ``False`` keeps the historical ring
        placement (domain-oblivious) while still exposing the
        topology's spread/at-risk accounting — the "naive placement"
        arm of the disaster-recovery bench.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_shards: int = 1,
        placement: str | ShardPlacement = "range",
        *,
        hardware: HardwareConfig | None = None,
        quantizer: Quantizer | None = None,
        chunked: bool = False,
        reprogram_budget: int | None = None,
        seed: int = 0,
        replication: int = 1,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
        verify: bool | None = None,
        spare_crossbars: int = 0,
        reference: bool = False,
        substrates: "str | list[str] | tuple[str, ...] | None" = None,
        route: str = "auto",
        topology: FailureDomainTopology | None = None,
        spread: bool = True,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 1:
            raise ServingError(
                "ShardManager expects a non-empty (n, dims) dataset"
            )
        self.hardware = hardware if hardware is not None else pim_platform()
        if isinstance(placement, ShardPlacement):
            if placement.n_rows != data.shape[0]:
                raise ServingError(
                    "placement covers "
                    f"{placement.n_rows} rows, dataset has {data.shape[0]}"
                )
            self.placement = placement
        else:
            self.placement = plan_placement(
                data.shape[0], n_shards, kind=placement, seed=seed
            )
        self.n_shards = self.placement.n_shards
        self.n_chunks = self.placement.n_shards
        self.dims = int(data.shape[1])
        self.n_rows = int(data.shape[0])
        if not 1 <= replication <= self.n_shards:
            raise ServingError(
                f"replication must lie in [1, {self.n_shards}] "
                f"(got {replication})"
            )
        self.replication = int(replication)
        if topology is not None and topology.n_shards != self.n_shards:
            raise ServingError(
                f"topology describes {topology.n_shards} shards, "
                f"placement has {self.n_shards}"
            )
        self.topology = topology
        self.spread = bool(spread)
        #: Unavoidable co-domain replica pairings, recorded at placement
        #: time and by add_replica when no spread-restoring target
        #: exists. Each record names the chunk, the offending shard pair
        #: and the finest domain level they share.
        self.placement_violations: list[dict] = []
        #: Every successful add_replica as ``(chunk, target)`` in
        #: application order — replayed verbatim by checkpoint restore
        #: so shard row layouts come back byte-identical.
        self.replica_log: list[tuple[int, int]] = []
        if topology is not None and self.spread and self.replication > 1:
            self.replicas = self._spread_replicas()
        else:
            self.replicas: list[tuple[int, ...]] = [
                tuple(
                    (c + j) % self.n_shards
                    for j in range(self.replication)
                )
                for c in range(self.n_chunks)
            ]
        self.fault_plan = fault_plan
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.chunked = bool(chunked)
        self.reference = bool(reference)
        self.spare_crossbars = int(spare_crossbars)
        if substrates is None:
            substrate_list = ["crossbar"] * self.n_shards
        elif isinstance(substrates, str):
            substrate_list = [substrates] * self.n_shards
        else:
            substrate_list = [str(s) for s in substrates]
            if len(substrate_list) != self.n_shards:
                raise ServingError(
                    f"substrates names {len(substrate_list)} shards, "
                    f"placement has {self.n_shards}"
                )
        self.substrates: list[str] = substrate_list
        self.health = ShardHealthTracker(
            self.n_shards, self.recovery, substrates=substrate_list
        )
        self._hedge_budget = (
            HedgeBudget(self.recovery.hedge_budget)
            if self.recovery.hedge_budget is not None
            else None
        )
        self._health_version_seen = 0
        heterogeneous = len(set(substrate_list)) > 1
        if any(s != "crossbar" for s in substrate_list):
            if chunked:
                raise ServingError(
                    "non-crossbar substrates need resident programming; "
                    "the chunked engine is crossbar-specific"
                )
            from repro.substrate import available_substrates

            known = set(available_substrates())
            unknown = sorted(set(substrate_list) - known)
            if unknown:
                raise ServingError(
                    f"unknown substrates {unknown}; registered: "
                    f"{sorted(known)}"
                )
        if route not in ("auto", "latency", "energy", "none"):
            raise ServingError(
                f"unknown route policy {route!r}; expected auto, "
                "latency, energy or none"
            )
        self.route = route
        self._router = None
        if route in ("latency", "energy") or (
            route == "auto" and heterogeneous
        ):
            from repro.substrate import CostRouter

            objective = "energy" if route == "energy" else "latency"
            # With the latency-outlier detector running, observed
            # service times are trustworthy enough to let measurements
            # pull the ranking away from pure capability predictions.
            observed_weight = (
                0.5 if self.recovery.outlier_ejection else 0.0
            )
            self._router = CostRouter(
                self.hardware,
                objective=objective,
                observed_weight=observed_weight,
            )
        self._route_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._route_decisions: list = []
        if verify is None:
            verify = fault_plan is not None and not chunked
        if verify and chunked:
            raise ServingError(
                "wave verification needs resident programming; the "
                "chunked engine does not carry the checksum row"
            )
        self.verify = bool(verify)
        self.quantizer = (
            quantizer if quantizer is not None else Quantizer()
        )
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        self.cost_model = CostModel(self.hardware)
        qv = self.quantizer.quantize(data)
        normalized = self.quantizer.normalize(data)
        phi = (qv.scaled**2).sum(axis=1) - 2.0 * qv.integers.sum(axis=1)
        self.chunk_rows: list[np.ndarray] = [
            self.placement.rows_of(c) for c in range(self.n_chunks)
        ]
        self._clock_ns = 0.0
        self.shards: list[_Shard] = []
        for s in range(self.n_shards):
            hosted = sorted(
                c for c in range(self.n_chunks) if s in self.replicas[c]
            )
            parts = [self.chunk_rows[c] for c in hosted]
            rows = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
            shard = _Shard(
                s,
                rows,
                qv.integers[rows],
                phi[rows],
                normalized[rows],
                self.hardware,
                chunked,
                reprogram_budget,
                verify=self.verify,
                fault_plan=fault_plan,
                spare_crossbars=self.spare_crossbars,
                substrate=substrate_list[s],
            )
            offset = 0
            for c in hosted:
                size = int(self.chunk_rows[c].size)
                shard.chunk_slices[c] = slice(offset, offset + size)
                offset += size
            self.shards.append(shard)
        #: The dataset as handed in (float64) — the checkpoint layer
        #: snapshots it so a cold restart re-quantizes bit-identically.
        self.source_data = data
        #: Simulated time of the last checkpoint written against this
        #: manager (None = never); feeds the checkpoint-age gauge.
        self.last_checkpoint_ns: float | None = None
        self.health.attach_placement(
            [
                topology.domains_of(s) if topology is not None else None
                for s in range(self.n_shards)
            ],
            self.spread_report,
        )

    # ------------------------------------------------------------------
    # failure-domain-aware placement
    # ------------------------------------------------------------------
    def _spread_replicas(self) -> list[tuple[int, ...]]:
        """Greedy domain-spread replica placement.

        Chunk ``c`` keeps shard ``c`` as its primary (bit-compatible
        with the ring layout at replication 1); each further replica
        goes to the candidate sharing the *fewest* domain levels with
        the replicas already chosen, breaking ties toward the least-
        loaded shard and then ring order, so the layout stays balanced
        and deterministic. When even the best candidate shares a
        domain (fleet shape makes full spread impossible), the pairing
        is recorded in ``placement_violations``.
        """
        topology = self.topology
        load = [0] * self.n_shards
        replicas: list[tuple[int, ...]] = []
        for c in range(self.n_chunks):
            chosen = [c % self.n_shards]
            load[chosen[0]] += 1
            for _ in range(1, self.replication):
                best = None
                best_key = None
                for offset in range(1, self.n_shards):
                    s = (c + offset) % self.n_shards
                    if s in chosen:
                        continue
                    depth = max(
                        topology.shared_depth(s, t) for t in chosen
                    )
                    key = (depth, load[s], offset)
                    if best_key is None or key < best_key:
                        best, best_key = s, key
                if best is None:
                    break  # replication == n_shards and all chosen
                if best_key[0] > 0:
                    other = max(
                        (t for t in chosen),
                        key=lambda t: topology.shared_depth(best, t),
                    )
                    self._record_spread_violation(
                        "placement", c, best, other
                    )
                chosen.append(best)
                load[best] += 1
            replicas.append(tuple(chosen))
        return replicas

    def _record_spread_violation(
        self, context: str, chunk: int, shard: int, other: int
    ) -> None:
        """Note an unavoidable co-domain replica pairing."""
        level = self.topology.shared_level(shard, other)
        self.placement_violations.append(
            {
                "context": context,
                "chunk": int(chunk),
                "shard": int(shard),
                "with": int(other),
                "level": level,
            }
        )
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter(
                "serving.placement.spread_violations"
            ).add(1)

    def chunk_risk(self, chunk: int) -> str | None:
        """The widest domain level whose single outage would take every
        live replica of ``chunk`` (None = no correlated single point of
        failure, or no topology attached).

        Checked coarsest-first: replicas all inside one power domain
        are at risk from a power outage even if they sit on distinct
        boards and channels. A level only counts when the fleet has
        more than one domain at it — a one-power-domain fleet cannot
        spread at the power level, and flagging every chunk would
        drown the signal.
        """
        if self.topology is None:
            return None
        live = self.live_replicas(chunk)
        if not live:
            return None
        for level in reversed(DOMAIN_LEVELS):  # power, channel, board
            if self.topology.n_domains(level) < 2:
                continue
            domains = {self.topology.domain_of(s, level) for s in live}
            if len(domains) == 1:
                return level
        return None

    def spread_report(self) -> dict:
        """Fleet durability accounting: per-chunk replica spread,
        at-risk chunks, placement violations, checkpoint age.

        Without a topology the report degrades gracefully: spread is
        the live replica count and a chunk is at risk exactly when a
        single further shard loss would leave no replica.
        """
        topology = self.topology
        per_chunk = []
        at_risk: list[int] = []
        per_shard_at_risk = [0] * self.n_shards
        min_spread: int | None = None
        for c in range(self.n_chunks):
            live = self.live_replicas(c)
            entry: dict = {"chunk": c, "live_replicas": live}
            if topology is not None:
                entry["spread"] = {
                    level: len(
                        {topology.domain_of(s, level) for s in live}
                    )
                    for level in DOMAIN_LEVELS
                }
                risk = self.chunk_risk(c)
                entry["at_risk"] = risk
                spread = entry["spread"]["power"]
            else:
                risk = "shard" if len(live) == 1 else None
                entry["at_risk"] = risk
                spread = len(live)
            if live:
                min_spread = (
                    spread
                    if min_spread is None
                    else min(min_spread, spread)
                )
            if risk is not None:
                at_risk.append(c)
                for s in live:
                    per_shard_at_risk[s] += 1
            per_chunk.append(entry)
        return {
            "per_chunk": per_chunk,
            "at_risk_chunks": at_risk,
            "n_at_risk": len(at_risk),
            "per_shard_at_risk": per_shard_at_risk,
            "min_spread": min_spread,
            "violations": [dict(v) for v in self.placement_violations],
            "topology": (
                topology.describe() if topology is not None else None
            ),
            "spread_placement": (
                topology is not None and self.spread
            ),
            "last_checkpoint_ns": self.last_checkpoint_ns,
        }

    def replica_target_score(self, chunk: int, shard: int) -> tuple:
        """Ordering key for re-replication targets of ``chunk``.

        Lower is better: first minimise the domain overlap with the
        chunk's live replicas (0 = fully spread-restoring), then prefer
        the emptiest shard, then the lowest id — without a topology the
        overlap term is constant and the historical (rows, id) order is
        preserved exactly.
        """
        if self.topology is None:
            overlap = 0
        else:
            overlap = max(
                (
                    self.topology.shared_depth(shard, t)
                    for t in self.live_replicas(chunk)
                    if t != shard
                ),
                default=0,
            )
        return (overlap, self.shards[shard].n_rows, shard)

    def select_replica_target(self, chunk: int) -> int | None:
        """The best shard to host a new replica of ``chunk``.

        Prefers spread-restoring shards (no shared failure domain with
        any live replica) per :meth:`replica_target_score`; ``None``
        when no alive shard can legally host the chunk.
        """
        rows = int(self.chunk_rows[chunk].size)
        candidates = [
            s
            for s in range(self.n_shards)
            if self.health.alive(s)
            and chunk not in self.shards[s].chunk_slices
            and self.shards[s].can_host(rows, self.verify)
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda s: self.replica_target_score(chunk, s)
        )

    # ------------------------------------------------------------------
    # CPU accounting (Quartz model, one bucket per stage)
    # ------------------------------------------------------------------
    def _cpu_ns(self, **events) -> float:
        counters = PerfCounters()
        counters.record("serving", calls=1, **events)
        return self.cost_model.total_time_ns(counters)

    def _shard_cpu_ns(self, n_local: int, queries: int, refined: int) -> float:
        """Shard-local host work: bound combine, sort, refine, heap."""
        n_visited = n_local * queries  # worst case; refined <= visited
        return self._cpu_ns(
            # lb = (phi_p + phi_q - 2 dots - 2d) / alpha^2, clip
            flops=5.0 * n_visited,
            bytes_cached=16.0 * n_visited,
            # lexsort by (lb, index) + candidate scan / heap maintenance
            branches=1.5 * n_visited * max(np.log2(max(n_local, 2)), 1.0)
            + 2.0 * n_visited,
            # exact refinement of the surviving candidates
            long_ops=0.0,
        ) + self._cpu_ns(
            flops=3.0 * self.dims * refined,
            bytes_from_memory=4.0 * self.dims * refined,
        )

    def _merge_cpu_ns(self, candidates: int) -> float:
        """Coordinator gather: merge the per-shard k-lists."""
        if candidates <= 0:
            return 0.0
        return self._cpu_ns(
            flops=candidates,
            branches=2.0 * candidates * max(np.log2(max(candidates, 2)), 1.0),
            bytes_cached=16.0 * candidates,
        )

    def _degraded_cpu_ns(self, n_rows: int, queries: int) -> float:
        """Host-side exact recompute of one unavailable chunk.

        No PIM bounds are available, so every row pays a full exact
        distance against every query — the slow-but-exact last resort.
        """
        if n_rows <= 0:
            return 0.0
        return self._cpu_ns(
            flops=3.0 * self.dims * n_rows * queries,
            bytes_from_memory=8.0 * self.dims * n_rows,
            branches=2.0 * n_rows * queries,
        )

    # ------------------------------------------------------------------
    # kNN scatter/gather
    # ------------------------------------------------------------------
    def _prepare_queries(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dims:
            raise ServingError(
                f"queries must have {self.dims} dimensions"
            )
        qv = self.quantizer.quantize(queries)
        normalized = self.quantizer.normalize(queries)
        phi_q = (qv.scaled**2).sum(axis=1) - 2.0 * qv.integers.sum(axis=1)
        return qv.integers, normalized, phi_q

    # ------------------------------------------------------------------
    # fault-tolerant chunk dispatch
    # ------------------------------------------------------------------
    def _recovery_marker(self, tele, outcome: str, shard_id: int, n_chunks: int) -> None:
        """Surface one recovery decision in telemetry (marker span + counter)."""
        if not tele.enabled:
            return
        tele.metrics.counter(f"serving.recovery.{outcome}").add(1)
        with tele.span(
            "serving.recovery", "serving",
            shard=shard_id, outcome=outcome, chunks=n_chunks,
        ):
            pass  # zero-duration marker on the trace timeline

    #: routed decisions kept for :meth:`routing_report` (newest last)
    _MAX_ROUTE_DECISIONS = 256

    def _route_order(self, c: int, batch: int) -> tuple[int, ...]:
        """Replica preference order for one chunk dispatch.

        Without a router this is the historical ``(c + j) % N`` order.
        With one, replicas are ranked by the predicted cost of this
        batch on each replica's substrate (capability-descriptor
        predictions — no device is touched), blended with each
        replica's observed service-time EWMA when the latency-outlier
        detector is running; the rest of the ranking stays as the
        failover order. Cached per ``(chunk, batch)`` because serving
        replays the same shapes constantly; the cache is invalidated
        when the replica set changes and whenever the health tracker's
        verdict version moves (an ejection or re-admission means the
        measured picture the cached ranking priced in is stale).
        """
        if self._router is None:
            return self.replicas[c]
        if self.health.version != self._health_version_seen:
            self._route_cache.clear()
            self._health_version_seen = self.health.version
        key = (c, batch)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        candidates = []
        for s in self.replicas[c]:
            shard = self.shards[s]
            n = shard.n_rows + (1 if shard.verify else 0)
            candidates.append((s, self.substrates[s], max(n, 1), self.dims))
        observed = None
        if self.health.detector is not None:
            observed = {
                s: ewma
                for s, _, _, _ in candidates
                if (ewma := self.health.detector.ewma(s)) is not None
            }
        decision = self._router.order(
            c, candidates, n_queries=batch, observed=observed
        )
        order = tuple(s for s, _, _ in decision.ranked)
        self._route_cache[key] = order
        self._route_decisions.append(decision)
        del self._route_decisions[: -self._MAX_ROUTE_DECISIONS]
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter(
                f"serving.routed.{decision.winner_substrate}"
            ).add(1)
        return order

    def routing_report(self) -> dict:
        """Routing activity: objective, decision log, substrate map."""
        return {
            "route": self.route,
            "enabled": self._router is not None,
            "objective": (
                self._router.objective if self._router is not None else None
            ),
            "substrates": list(self.substrates),
            "decisions": [d.to_dict() for d in self._route_decisions],
        }

    def _hedge_trigger_ns(self, s: int) -> float | None:
        """Straggler threshold for one wave on shard ``s`` (ns).

        Adaptive hedging derives it from observed p95s — ``factor x
        min(own p95, fleet median p95)``, floored at ``hedge_min_ns`` —
        so the trigger tracks what *healthy* replicas actually deliver
        (a straggler's own inflated p95 never raises its own bar past
        the fleet's). Before the detector has enough samples, or with
        adaptive hedging off, this falls back to the policy's fixed
        ``hedge_after_ns`` (None disables hedging entirely).
        """
        policy = self.recovery
        det = self.health.detector
        if policy.adaptive_hedge and det is not None:
            candidates = [
                p95
                for p95 in (det.observed_p95_ns(s), det.fleet_p95_ns())
                if p95 is not None
            ]
            if candidates:
                return max(
                    policy.hedge_min_ns,
                    policy.hedge_p95_factor * min(candidates),
                )
        return policy.hedge_after_ns

    def _serve_chunks(
        self,
        q_int: np.ndarray,
        now_ns: float,
        process,
        timing: GatherTiming,
        span_name: str,
    ) -> list[int]:
        """Serve every chunk from exactly one replica, surviving faults.

        Thin wrapper around :meth:`_serve_chunks_impl` that releases any
        probe token claimed but left unresolved when the dispatch aborts
        (degradation disabled, or a hang with the watchdog off) — an
        abandoned claim would otherwise wedge the probationary shard out
        of rotation forever. Releasing a token whose outcome was already
        recorded is a no-op.
        """
        claimed: set[int] = set()
        try:
            return self._serve_chunks_impl(
                q_int, now_ns, process, timing, span_name, claimed
            )
        except BaseException:
            for s in claimed:
                self.health.release_probe(s)
            raise

    def _serve_chunks_impl(
        self,
        q_int: np.ndarray,
        now_ns: float,
        process,
        timing: GatherTiming,
        span_name: str,
        claimed: set[int],
    ) -> list[int]:
        """Serve every chunk from exactly one replica, surviving faults.

        ``process(shard, sel, dots)`` does the host-side candidate work
        for the shard-local rows ``sel`` (``None`` = all rows) whose dot
        products are ``dots``, and returns the CPU time it cost; it runs
        once per *successful* wave. The attempt machinery handles crash
        detection and failover, hang timeouts, straggler stretching,
        residue verification with bounded retries and capped exponential
        backoff, circuit breaking, and optional hedged re-dispatch. All
        timing is serialized per shard and recorded in ``timing``.

        Returns the chunks that could not be served by any replica (the
        caller recomputes them host-side), or raises
        :class:`~repro.errors.ChunkUnavailableError` when degradation is
        disabled, or :class:`~repro.errors.ShardHungError` for a hang
        with the watchdog disabled.
        """
        tele = get_recorder()
        batch = q_int.shape[0]
        policy = self.recovery
        faulted = self.fault_plan is not None
        bits = self.hardware.pim.operand_bits if self.hardware.pim else 8
        pending = set(range(self.n_chunks))
        ptr = {c: 0 for c in pending}
        fails = {c: 0 for c in pending}
        ready = {c: 0.0 for c in pending}
        elapsed = [0.0] * self.n_shards
        pim_total = [0.0] * self.n_shards
        cpu_total = [0.0] * self.n_shards
        degraded: list[int] = []

        def fail_chunks(
            chunks, end_rel: float, shard_id: int, permanent: bool, failover: bool
        ) -> None:
            self.health.record_failure(
                shard_id, now_ns + end_rel, permanent=permanent
            )
            for c in chunks:
                fails[c] += 1
                # transient faults retry the same replica once; anything
                # persistent (or any repeat failure) moves on
                if failover or permanent or fails[c] >= 2:
                    ptr[c] += 1
                    timing.failovers += 1
                if fails[c] <= policy.max_retries:
                    timing.retries += 1
                    delay = policy.backoff_ns(fails[c])
                    ready[c] = max(ready[c], end_rel + delay)
                    timing.backoff_ns += delay

        def try_hedge(s, chunks, start_rel, end_rel, cpu_ns, trigger_ns):
            """Duplicate a straggling wave on an idle replica (values
            are identical either way; only the finish time improves).

            Cancel-on-first-win: whichever wave finishes first is the
            answer, and the loser is cancelled *at that instant* — the
            loser's shard is only charged for the time it actually ran,
            with the cancelled remainder booked to
            ``timing.hedge_cancelled_ns`` and the discarded device time
            to the shard's ``cancelled_pim_ns`` (subtracted from the
            merged PIMStats). A global :class:`HedgeBudget`, when
            configured, caps how often hedges fire.

            Returns ``(end_rel, component)`` where ``component``
            describes the hedge wave when it won the race, else None.
            """
            hedge_start = start_rel + trigger_ns
            for s2 in range(self.n_shards):
                if s2 == s:
                    continue
                if not self.health.available(s2, now_ns + hedge_start):
                    continue
                # a hedge is a latency optimisation, not a probe: never
                # spend a probationary shard's single probe slot on one
                if self.health.probationary(s2, now_ns + hedge_start):
                    continue
                # nor duplicate onto a suspected-slow (ejected) replica
                if self.health.demoted(s2, now_ns + hedge_start):
                    continue
                alt = self.shards[s2]
                if any(c not in alt.chunk_slices for c in chunks):
                    continue
                if (
                    self._hedge_budget is not None
                    and not self._hedge_budget.try_take()
                ):
                    timing.hedges_denied += 1
                    return end_rel, None
                alt_start = max(elapsed[s2], hedge_start)
                alt.advance_clock(now_ns + alt_start)
                verdict = (
                    alt.fault_engine.outcome(now_ns + alt_start)
                    if faulted and alt.fault_engine is not None
                    else ShardVerdict("ok")
                )
                if verdict.status not in ("ok", "slow"):
                    continue
                try:
                    dots2, pim2 = alt.dot_products(q_int)
                except CrossbarDeadError:
                    continue
                pim2 = pim2 * verdict.factor + verdict.delay_ns
                if alt.verify and alt.n_rows and not np.all(
                    verify_wave_residues(dots2, bits)
                ):
                    timing.corrupt_detected += 1
                    continue
                timing.hedges += 1
                self._recovery_marker(tele, "hedge", s2, len(chunks))
                alt_end = alt_start + pim2 + cpu_ns
                if alt_end < end_rel:
                    # hedge won: the original wave is cancelled at
                    # alt_end — roll back the tail it never ran
                    cancelled = end_rel - alt_end
                    orig = self.shards[s]
                    elapsed[s] = alt_end
                    orig.busy_ns -= cancelled
                    # the cpu stage runs last, so the cancelled tail
                    # eats cpu time first, then device time
                    cpu_cut = min(cancelled, cpu_ns)
                    cpu_total[s] -= cpu_cut
                    pim_total[s] -= cancelled - cpu_cut
                    orig.cancelled_pim_ns += cancelled - cpu_cut
                    timing.hedges_won += 1
                    timing.hedge_cancelled_ns += cancelled
                    elapsed[s2] = max(elapsed[s2], alt_end)
                    alt.busy_ns += pim2 + cpu_ns
                    pim_total[s2] += pim2
                    cpu_total[s2] += cpu_ns
                    self.health.record_service_time(
                        s2, now_ns + alt_end, pim2 + cpu_ns
                    )
                    return alt_end, {
                        "shard": s2,
                        "chunks": len(chunks),
                        "start_ns": alt_start,
                        "pim_ns": pim2,
                        "cpu_ns": cpu_ns,
                        "end_ns": alt_end,
                        "hedged": True,
                    }
                # hedge lost: cancel it where the original finished —
                # charge only the slice it actually ran, not its full
                # would-be completion (the loser-accounting fix)
                cut_end = min(alt_end, max(end_rel, alt_start))
                charged = max(0.0, cut_end - alt_start)
                elapsed[s2] = max(elapsed[s2], cut_end)
                alt.busy_ns += charged
                charged_pim = min(charged, pim2)
                pim_total[s2] += charged_pim
                cpu_total[s2] += charged - charged_pim
                alt.cancelled_pim_ns += pim2 - charged_pim
                timing.hedges_lost += 1
                timing.hedge_cancelled_ns += (pim2 + cpu_ns) - charged
                return end_rel, None
            return end_rel, None

        while pending:
            groups: dict[int, list[int]] = {}
            doomed: list[int] = []
            # straggling waves of this round, hedged after the round
            hedge_candidates: list[tuple] = []
            # shards whose single probe slot this round's dispatch holds:
            # chunks joining the same wave ride the probe together
            probing: set[int] = set()
            for c in sorted(pending):
                if fails[c] > policy.max_retries:
                    doomed.append(c)
                    continue
                reps = self.health.prefer_order(
                    self._route_order(c, batch), now_ns + ready[c]
                )
                chosen = None
                for step in range(len(reps)):
                    s = reps[(ptr[c] + step) % len(reps)]
                    t_sel = now_ns + ready[c]
                    routable = s in probing or self.health.available(s, t_sel)
                    if (
                        routable
                        and s not in probing
                        and self.health.probationary(s, t_sel)
                    ):
                        # half-open/quarantined: exactly one probe wave
                        # goes through; claiming it makes every other
                        # caller see the shard as unavailable
                        routable = self.health.begin_probe(s, t_sel)
                        if routable:
                            probing.add(s)
                            claimed.add(s)
                    if routable:
                        chosen = s
                        ptr[c] += step
                        break
                if chosen is None:
                    doomed.append(c)
                else:
                    groups.setdefault(chosen, []).append(c)
            for c in doomed:
                pending.discard(c)
                if not policy.allow_degraded:
                    raise ChunkUnavailableError(
                        f"chunk {c} has no live replica and degraded "
                        "recompute is disabled",
                        unit=f"chunk{c}",
                        timestamp_ns=now_ns,
                        replicas=list(self.replicas[c]),
                        failures=fails[c],
                    )
                degraded.append(c)
                timing.degraded_chunks += 1
                self._recovery_marker(tele, "degraded", self.replicas[c][0], 1)
            if not groups:
                break
            for s in sorted(groups):
                chunks = groups[s]
                shard = self.shards[s]
                if self._hedge_budget is not None:
                    # the budget earns a fraction of a hedge per wave
                    # attempt, so granted hedges stay <= budget x waves
                    self._hedge_budget.accrue()
                start_rel = max(elapsed[s], max(ready[c] for c in chunks))
                t_start = now_ns + start_rel
                verdict = (
                    shard.fault_engine.outcome(t_start)
                    if faulted and shard.fault_engine is not None
                    else ShardVerdict("ok")
                )
                if verdict.status == "drop":
                    # flaky host<->shard link ate the dispatch: the
                    # shard itself is fine, but from the host's side it
                    # looks like a crash it must time out on
                    timing.attempts += 1
                    timing.link_drops += 1
                    end_rel = start_rel + policy.crash_detect_ns
                    elapsed[s] = end_rel
                    self._recovery_marker(tele, "link_drop", s, len(chunks))
                    fail_chunks(chunks, end_rel, s, False, True)
                    continue
                if verdict.status == "crash":
                    timing.attempts += 1
                    timing.crashes += 1
                    end_rel = start_rel + policy.crash_detect_ns
                    elapsed[s] = end_rel
                    self._recovery_marker(tele, "crash", s, len(chunks))
                    fail_chunks(chunks, end_rel, s, True, True)
                    continue
                if verdict.status == "hang":
                    timing.attempts += 1
                    if policy.dispatch_timeout_ns is None:
                        raise ShardHungError(
                            f"{shard.name} hung and the dispatch "
                            "watchdog is disabled",
                            unit=shard.name,
                            timestamp_ns=t_start,
                            chunks=list(chunks),
                        )
                    timing.timeouts += 1
                    end_rel = start_rel + policy.dispatch_timeout_ns
                    elapsed[s] = end_rel
                    shard.busy_ns += policy.dispatch_timeout_ns
                    self._recovery_marker(tele, "hang_timeout", s, len(chunks))
                    fail_chunks(chunks, end_rel, s, False, True)
                    continue
                # ok / slow: fire the wave
                shard.advance_clock(t_start)
                timing.attempts += 1
                with tele.span(
                    span_name, "serving",
                    shard=s, rows=shard.n_rows, queries=batch,
                    substrate=shard.substrate,
                ):
                    try:
                        dots, pim_ns = shard.dot_products(q_int)
                    except CrossbarDeadError:
                        timing.crashes += 1
                        end_rel = start_rel + policy.crash_detect_ns
                        elapsed[s] = end_rel
                        self._recovery_marker(
                            tele, "crossbar_dead", s, len(chunks)
                        )
                        fail_chunks(chunks, end_rel, s, True, True)
                        continue
                    # slowdown scales the wave; a flaky link that chose
                    # to delay (not drop) adds a flat in-flight stall
                    pim_ns = pim_ns * verdict.factor + verdict.delay_ns
                    if (
                        faulted
                        and policy.dispatch_timeout_ns is not None
                        and pim_ns > policy.dispatch_timeout_ns
                    ):
                        timing.timeouts += 1
                        end_rel = start_rel + policy.dispatch_timeout_ns
                        elapsed[s] = end_rel
                        shard.busy_ns += policy.dispatch_timeout_ns
                        pim_total[s] += policy.dispatch_timeout_ns
                        self._recovery_marker(tele, "timeout", s, len(chunks))
                        fail_chunks(chunks, end_rel, s, False, True)
                        continue
                    if shard.verify and shard.n_rows:
                        clean = np.atleast_1d(
                            verify_wave_residues(dots, bits)
                        )
                        if not np.all(clean):
                            timing.corrupt_detected += int(
                                clean.size - np.count_nonzero(clean)
                            )
                            end_rel = start_rel + pim_ns
                            elapsed[s] = end_rel
                            shard.busy_ns += pim_ns
                            pim_total[s] += pim_ns
                            self._recovery_marker(
                                tele, "corrupt", s, len(chunks)
                            )
                            # transient: retry the same replica first
                            fail_chunks(chunks, end_rel, s, False, False)
                            continue
                        dots = dots[:, : shard.n_rows]
                    sel = (
                        np.concatenate(
                            [
                                np.arange(
                                    shard.chunk_slices[c].start,
                                    shard.chunk_slices[c].stop,
                                    dtype=np.int64,
                                )
                                for c in chunks
                            ]
                        )
                        if shard.n_rows
                        else np.empty(0, dtype=np.int64)
                    )
                    if sel.size == shard.n_rows:
                        cpu_ns = process(shard, None, dots)
                    else:
                        cpu_ns = process(shard, sel, dots[:, sel])
                    tele.advance(cpu_ns)
                end_rel = start_rel + pim_ns + cpu_ns
                elapsed[s] = end_rel
                shard.busy_ns += pim_ns + cpu_ns
                pim_total[s] += pim_ns
                cpu_total[s] += cpu_ns
                self.health.record_success(s, now_ns + end_rel)
                self.health.record_service_time(
                    s, now_ns + end_rel, pim_ns + cpu_ns
                )
                for c in chunks:
                    pending.discard(c)
                comp = {
                    "shard": s,
                    "chunks": len(chunks),
                    "start_ns": start_rel,
                    "pim_ns": pim_ns,
                    "cpu_ns": cpu_ns,
                    "end_ns": end_rel,
                    "hedged": False,
                }
                timing.wave_end_ns.append(end_rel)
                timing.wave_components.append(comp)
                trigger_ns = self._hedge_trigger_ns(s)
                if trigger_ns is not None and pim_ns + cpu_ns > trigger_ns:
                    hedge_candidates.append(
                        (
                            s, chunks, start_rel, end_rel, cpu_ns,
                            trigger_ns, len(timing.wave_end_ns) - 1,
                        )
                    )
            # hedges resolve only after every primary wave of the round
            # is simulated: a hedge fires later in wall time than the
            # round's waves start, so its replica pick must see their
            # true busy times — evaluating inline would serialize the
            # hedge *ahead* of a replica's own (earlier) wave
            for s, chunks, start_rel, end_rel, cpu_ns, trig, widx in (
                hedge_candidates
            ):
                new_end, hedge_comp = try_hedge(
                    s, chunks, start_rel, end_rel, cpu_ns, trig
                )
                if hedge_comp is not None:
                    timing.wave_end_ns[widx] = new_end
                    timing.wave_components[widx] = hedge_comp
        timing.per_shard_pim_ns = pim_total
        timing.per_shard_cpu_ns = cpu_total
        return degraded

    def _shard_topk(
        self,
        shard: _Shard,
        dots: np.ndarray,
        phi_q: float,
        q_norm: np.ndarray,
        k: int,
        approximate: bool,
        sel: np.ndarray | None = None,
        lb: np.ndarray | None = None,
        order: np.ndarray | None = None,
    ) -> tuple[_CanonicalHeap, int, int]:
        """Local top-k of one query on one shard (canonical order).

        ``sel`` restricts the work to a subset of the shard's local rows
        (the chunks this shard serves in the current dispatch, under
        replication); ``dots`` must already be restricted to match.
        ``lb``/``order`` accept the precomputed clamped lower bounds and
        their canonical ``lexsort((gidx, lb))`` permutation when the
        caller batched that work across queries (:meth:`knn_batch`);
        both are recomputed here when absent.
        """
        heap = _CanonicalHeap(k)
        if sel is None:
            phi, gidx, floats = shard.phi, shard.global_indices, shard.floats
        else:
            phi = shard.phi[sel]
            gidx = shard.global_indices[sel]
            floats = shard.floats[sel]
        n_local = int(gidx.size)
        if n_local == 0:
            return heap, 0, 0
        if lb is None:
            alpha2 = self.quantizer.alpha**2
            lb = (phi + phi_q - 2.0 * dots - 2.0 * self.dims) / alpha2
            np.maximum(lb, 0.0, out=lb)
        if approximate:
            # degrade-to-approximate: the lower bound IS the score
            short = (
                order[:k] if order is not None
                else np.lexsort((gidx, lb))[:k]
            )
            for j in short:
                heap.offer(float(lb[j]), int(gidx[j]))
            return heap, 0, n_local - int(short.size)
        if order is None:
            order = np.lexsort((gidx, lb))
        refined = 0
        if self.reference:
            for j in order:
                if lb[j] > heap.threshold:
                    break  # ascending lb: the rest prune too
                score = float(exact_sq_distances(floats[j], q_norm)[0])
                heap.offer(score, int(gidx[j]))
                refined += 1
            return heap, refined, n_local - refined
        # Fused: score candidates in doubling blocks ahead of the scan.
        # The kernel's row independence makes block scores bit-identical
        # to one-at-a-time scores, and the scan still checks the live
        # heap threshold per candidate, so the refined/pruned counts —
        # which feed the simulated CPU time — match the loop exactly.
        pos = 0
        block = max(k, 64)
        while pos < order.size:
            chunk = order[pos : pos + block]
            if lb[chunk[0]] > heap.threshold:
                break  # ascending lb: the rest prune too
            scores = exact_sq_distances(floats[chunk], q_norm)
            stopped = False
            for t, j in enumerate(chunk):
                if lb[j] > heap.threshold:
                    stopped = True
                    break
                heap.offer(float(scores[t]), int(gidx[j]))
                refined += 1
            if stopped:
                break
            pos += block
            block *= 2
        return heap, refined, n_local - refined

    def _degrade_chunk_knn(
        self,
        c: int,
        q_norm: np.ndarray,
        k_list: list[int],
        per_query_heaps: list[list[_CanonicalHeap]],
        refined_total: list[int],
        timing: GatherTiming,
    ) -> None:
        """Host-side exact top-k of one unavailable chunk.

        No PIM bounds exist, so every row of the chunk is refined
        exactly — through :func:`exact_sq_distances`, the same kernel
        as the normal refinement path, so merged results stay
        bit-identical.
        """
        rows = self.chunk_rows[c]
        batch = len(k_list)
        if rows.size == 0:
            return
        host = self.shards[self.replicas[c][0]]
        sl = host.chunk_slices[c]
        floats = host.floats[sl]
        gidx = host.global_indices[sl]
        for b in range(batch):
            heap = _CanonicalHeap(min(k_list[b], max(self.n_rows, 1)))
            if self.reference:
                for j in range(gidx.size):
                    score = float(
                        exact_sq_distances(floats[j], q_norm[b])[0]
                    )
                    heap.offer(score, int(gidx[j]))
            else:
                scores = exact_sq_distances(floats, q_norm[b])
                for j in range(gidx.size):
                    heap.offer(float(scores[j]), int(gidx[j]))
            per_query_heaps[b].append(heap)
            refined_total[b] += int(gidx.size)
        timing.degraded_cpu_ns += self._degraded_cpu_ns(
            int(rows.size), batch
        )

    def knn_batch(
        self,
        queries: np.ndarray,
        ks,
        approximate=None,
        *,
        now_ns: float | None = None,
    ) -> tuple[list[KNNAnswer], GatherTiming]:
        """Exact (or per-query degraded) kNN for a batch of queries.

        ``ks`` is an int or a per-query sequence; ``approximate``
        likewise a bool or per-query flags. All queries ride one batched
        wave per shard, so the batch amortizes pipeline setup exactly as
        the mining layer's :class:`~repro.core.planner.BatchScheduler`
        flushes do. ``now_ns`` anchors the dispatch on the simulated
        clock (fault windows are time-based); it defaults to this
        manager's own monotone clock.
        """
        q_int, q_norm, phi_q = self._prepare_queries(queries)
        batch = q_int.shape[0]
        k_list = (
            [int(ks)] * batch if np.isscalar(ks) else [int(k) for k in ks]
        )
        if len(k_list) != batch:
            raise ServingError("ks must match the query batch")
        if any(k < 1 for k in k_list):
            raise ServingError("k must be >= 1")
        approx_list = (
            [bool(approximate)] * batch
            if approximate is None or isinstance(approximate, bool)
            else [bool(a) for a in approximate]
        )
        if len(approx_list) != batch:
            raise ServingError("approximate flags must match the batch")
        timing = GatherTiming()
        tele = get_recorder()
        t0 = self._clock_ns if now_ns is None else float(now_ns)
        per_query_heaps: list[list[_CanonicalHeap]] = [[] for _ in range(batch)]
        refined_total = [0] * batch
        pruned_total = [0] * batch

        def process(shard: _Shard, sel, dots) -> float:
            n_local = shard.n_rows if sel is None else int(sel.size)
            lb_all = orders = None
            if not self.reference and n_local:
                # Batched bound pipeline: one broadcast lb construction
                # and one stable axis argsort for the whole batch. With
                # the columns pre-permuted into ascending-gidx order, a
                # stable sort on lb breaks ties by position — i.e. by
                # gidx — so each row of ``orders`` equals that query's
                # own lexsort((gidx, lb)) permutation bit for bit (gidx
                # values are unique within a shard). One gidx argsort
                # amortizes over the batch instead of re-sorting the
                # tiebreak key per query.
                if sel is None:
                    phi, gidx = shard.phi, shard.global_indices
                else:
                    phi = shard.phi[sel]
                    gidx = shard.global_indices[sel]
                alpha2 = self.quantizer.alpha**2
                lb_all = (
                    phi[None, :] + phi_q[:, None]
                    - 2.0 * dots - 2.0 * self.dims
                ) / alpha2
                np.maximum(lb_all, 0.0, out=lb_all)
                perm = np.argsort(gidx, kind="stable")
                orders = perm[
                    np.argsort(lb_all[:, perm], axis=1, kind="stable")
                ]
            refined_here = 0
            for b in range(batch):
                heap, refined, pruned = self._shard_topk(
                    shard,
                    dots[b],
                    float(phi_q[b]),
                    q_norm[b],
                    min(k_list[b], max(self.n_rows, 1)),
                    approx_list[b],
                    sel=sel,
                    lb=None if lb_all is None else lb_all[b],
                    order=None if orders is None else orders[b],
                )
                per_query_heaps[b].append(heap)
                refined_total[b] += refined
                pruned_total[b] += pruned
                refined_here += refined
            return self._shard_cpu_ns(n_local, batch, refined_here)

        degraded_chunks = self._serve_chunks(
            q_int, t0, process, timing, "serving.scatter"
        )
        for c in degraded_chunks:
            self._degrade_chunk_knn(
                c, q_norm, k_list, per_query_heaps, refined_total, timing
            )
        answers: list[KNNAnswer] = []
        merge_candidates = 0
        degraded = bool(degraded_chunks)
        for b in range(batch):
            merged = _merge_heaps(per_query_heaps[b], k_list[b])
            merge_candidates += sum(len(h) for h in per_query_heaps[b])
            items = merged.sorted_items()
            answers.append(
                KNNAnswer(
                    indices=np.array([i for _, i in items], dtype=np.int64),
                    scores=np.array([s for s, _ in items], dtype=np.float64),
                    refined=refined_total[b],
                    pruned=pruned_total[b],
                    approximate=approx_list[b],
                    degraded=degraded,
                )
            )
        with tele.span(
            "serving.gather", "serving",
            queries=batch, candidates=merge_candidates,
        ):
            timing.merge_cpu_ns = self._merge_cpu_ns(merge_candidates)
            tele.advance(timing.merge_cpu_ns)
        if tele.enabled:
            tele.metrics.counter("serving.queries").add(batch)
            tele.metrics.counter("serving.refined").add(sum(refined_total))
            tele.metrics.counter("serving.pruned").add(sum(pruned_total))
            if timing.degraded_chunks:
                tele.metrics.counter("serving.degraded_chunks").add(
                    timing.degraded_chunks
                )
        self._clock_ns = max(self._clock_ns, t0 + timing.service_ns)
        return answers, timing

    def knn(self, query: np.ndarray, k: int) -> KNNAnswer:
        """Exact kNN of a single query (see :meth:`knn_batch`)."""
        answers, _ = self.knn_batch(np.atleast_2d(query), k)
        return answers[0]

    # ------------------------------------------------------------------
    # k-means assist
    # ------------------------------------------------------------------
    def assign(
        self, centers: np.ndarray, *, now_ns: float | None = None
    ) -> tuple[AssignAnswer, GatherTiming]:
        """Nearest center of every dataset row (k-means assist).

        Exact, with the canonical lowest-center-index tie-break: centers
        are considered in index order and only a strictly smaller
        distance replaces the incumbent. A chunk no replica could serve
        is recomputed host-side with the same expression and tie-break,
        so assignments stay bit-identical.
        """
        c_int, c_norm, phi_c = self._prepare_queries(centers)
        n_centers = c_int.shape[0]
        assignments = np.empty(self.n_rows, dtype=np.int64)
        distances = np.empty(self.n_rows, dtype=np.float64)
        timing = GatherTiming()
        tele = get_recorder()
        t0 = self._clock_ns if now_ns is None else float(now_ns)
        alpha2 = self.quantizer.alpha**2
        stats = {"refined": 0, "visited": 0}

        def process(shard: _Shard, sel, dots) -> float:
            idx = (
                np.arange(shard.n_rows, dtype=np.int64) if sel is None else sel
            )
            refined = 0
            if self.reference:
                for col, j in enumerate(idx):
                    lb = (
                        shard.phi[j] + phi_c - 2.0 * dots[:, col]
                        - 2.0 * self.dims
                    ) / alpha2
                    np.maximum(lb, 0.0, out=lb)
                    best_d = np.inf
                    best_c = 0
                    row = shard.floats[j]
                    for c in range(n_centers):
                        if lb[c] > best_d:
                            continue
                        d = float(exact_sq_distances(row, c_norm[c])[0])
                        refined += 1
                        if d < best_d:
                            best_d = d
                            best_c = c
                    gi = shard.global_indices[j]
                    assignments[gi] = best_c
                    distances[gi] = best_d
                stats["refined"] += refined
                stats["visited"] += int(idx.size) * n_centers
                return self._shard_cpu_ns(int(idx.size), n_centers, refined)
            # Fused: sweep centers in index order across all rows at
            # once. Each row's prune test (``lb > best_d``) and strict
            # ``d < best_d`` update depend only on that row's own state,
            # so the center-major sweep replays the per-row loop's
            # decisions exactly — same refined count, same canonical
            # lowest-center-index tie-break, same distance bits (row
            # independence of the kernel). Only the surviving rows are
            # gathered and scored per center: the lb pruning is heavy
            # enough that scoring whole row blocks costs more than the
            # per-center gathers save.
            n_here = int(idx.size)
            if n_here:
                lb = (
                    shard.phi[idx][:, np.newaxis] + phi_c[np.newaxis, :]
                    - 2.0 * dots.T - 2.0 * self.dims
                ) / alpha2
                np.maximum(lb, 0.0, out=lb)
                rows = shard.floats[idx]
                best_d = np.full(n_here, np.inf)
                best_c = np.zeros(n_here, dtype=np.int64)
                for c in range(n_centers):
                    hit = np.flatnonzero(lb[:, c] <= best_d)
                    if hit.size == 0:
                        continue
                    d = exact_sq_distances(rows[hit], c_norm[c])
                    refined += int(hit.size)
                    closer = d < best_d[hit]
                    upd = hit[closer]
                    best_d[upd] = d[closer]
                    best_c[upd] = c
                gi = shard.global_indices[idx]
                assignments[gi] = best_c
                distances[gi] = best_d
            stats["refined"] += refined
            stats["visited"] += n_here * n_centers
            return self._shard_cpu_ns(n_here, n_centers, refined)

        degraded_chunks = self._serve_chunks(
            c_int, t0, process, timing, "serving.assist"
        )
        for c in degraded_chunks:
            rows = self.chunk_rows[c]
            if rows.size == 0:
                continue
            host = self.shards[self.replicas[c][0]]
            sl = host.chunk_slices[c]
            floats = host.floats[sl]
            gidx = host.global_indices[sl]
            if self.reference:
                for j in range(gidx.size):
                    best_d = np.inf
                    best_c = 0
                    for cc in range(n_centers):
                        d = float(
                            exact_sq_distances(floats[j], c_norm[cc])[0]
                        )
                        if d < best_d:
                            best_d = d
                            best_c = cc
                    gi = gidx[j]
                    assignments[gi] = best_c
                    distances[gi] = best_d
            else:
                # all rows x all centers; argmin keeps the first (i.e.
                # lowest-index) minimum — the strict ``<`` tie-break.
                dists = np.stack(
                    [
                        exact_sq_distances(floats, c_norm[cc])
                        for cc in range(n_centers)
                    ],
                    axis=1,
                )
                best = dists.argmin(axis=1)
                assignments[gidx] = best
                distances[gidx] = dists[np.arange(gidx.size), best]
            stats["refined"] += int(gidx.size) * n_centers
            stats["visited"] += int(gidx.size) * n_centers
            timing.degraded_cpu_ns += self._degraded_cpu_ns(
                int(rows.size), n_centers
            )
        if tele.enabled:
            tele.metrics.counter("serving.assist_rows").add(self.n_rows)
            if timing.degraded_chunks:
                tele.metrics.counter("serving.degraded_chunks").add(
                    timing.degraded_chunks
                )
        self._clock_ns = max(self._clock_ns, t0 + timing.service_ns)
        return (
            AssignAnswer(
                assignments=assignments,
                distances=distances,
                refined=stats["refined"],
                pruned=stats["visited"] - stats["refined"],
                degraded=bool(degraded_chunks),
            ),
            timing,
        )

    # ------------------------------------------------------------------
    # live re-replication (repair layer)
    # ------------------------------------------------------------------
    def live_replicas(self, chunk: int) -> list[int]:
        """Shards currently able to serve ``chunk`` (alive and hosting)."""
        return [
            s
            for s in self.replicas[chunk]
            if self.health.alive(s) and chunk in self.shards[s].chunk_slices
        ]

    def replica_counts(self) -> list[int]:
        """Live replica count per chunk — the quantity repair restores."""
        return [len(self.live_replicas(c)) for c in range(self.n_chunks)]

    def chunk_bytes(self, chunk: int) -> int:
        """Payload bytes one replica of ``chunk`` carries (all side data)."""
        host = self.shards[self.replicas[chunk][0]]
        sl = host.chunk_slices[chunk]
        rows = sl.stop - sl.start
        per_row = (
            host.global_indices.itemsize
            + host.integers.shape[1] * host.integers.itemsize
            + host.phi.itemsize
            + host.floats.shape[1] * host.floats.itemsize
        )
        return int(rows * per_row)

    def add_replica(
        self, chunk: int, target_shard: int | None = None
    ) -> dict:
        """Copy ``chunk`` onto ``target_shard`` (live re-replication).

        The chunk's rows are copied from any surviving replica (the
        host-side arrays are always readable — it is the PIM matrix that
        dies, not the coordinator's copy of the data) and appended to the
        target, whose matrix is then reset and reprogrammed in full,
        checksum row included. Because the quantizer is global and ties
        resolve canonically, the new replica is bit-identical to serve
        from — the hypothesis suite asserts the copied bytes equal their
        source.

        With ``target_shard=None`` the target is chosen by
        :meth:`select_replica_target`, which prefers a shard restoring
        full failure-domain spread. A target (chosen or explicit) that
        still shares a domain with a live replica is accepted — a
        co-domain copy beats no copy — but the pairing is recorded in
        ``placement_violations`` and counted in telemetry.

        Returns a repair record: source/target shards, rows and bytes
        copied, and the reprogramming time the caller must charge
        against the repair-bandwidth budget.
        """
        if self.chunked:
            raise ServingError(
                "re-replication needs resident programming"
            )
        if not 0 <= chunk < self.n_chunks:
            raise ServingError(f"no chunk {chunk}")
        if target_shard is None:
            target_shard = self.select_replica_target(chunk)
            if target_shard is None:
                raise CapacityError(
                    f"no alive shard can host a replica of chunk {chunk}"
                )
        if self.topology is not None:
            conflicts = [
                t
                for t in self.live_replicas(chunk)
                if t != target_shard
                and self.topology.shared_depth(target_shard, t) > 0
            ]
            if conflicts:
                other = max(
                    conflicts,
                    key=lambda t: self.topology.shared_depth(
                        target_shard, t
                    ),
                )
                self._record_spread_violation(
                    "re-replication", chunk, target_shard, other
                )
        target = self.shards[target_shard]
        if chunk in target.chunk_slices:
            raise ServingError(
                f"shard {target_shard} already hosts chunk {chunk}"
            )
        source = None
        for s in self.replicas[chunk]:
            if chunk in self.shards[s].chunk_slices:
                source = self.shards[s]
                break
        if source is None:
            raise ChunkUnavailableError(
                f"chunk {chunk} has no surviving copy to re-replicate",
                unit=f"chunk{chunk}",
                timestamp_ns=self._clock_ns,
                replicas=list(self.replicas[chunk]),
            )
        sl = source.chunk_slices[chunk]
        new_rows = int(sl.stop - sl.start)
        if not target.can_host(new_rows, self.verify):
            # refuse up front: appending rows and then failing to
            # reprogram would destroy the replicas the target already
            # hosts, turning a repair into an outage
            raise CapacityError(
                f"shard {target_shard} cannot host chunk {chunk}: "
                f"{target.n_rows} + {new_rows} rows exceed its array "
                "(spare reservation included)"
            )
        gidx = source.global_indices[sl].copy()
        ints = source.integers[sl].copy()
        phi = source.phi[sl].copy()
        floats = source.floats[sl].copy()
        old_n = target.n_rows
        if old_n:
            target.global_indices = np.concatenate(
                [target.global_indices, gidx]
            )
            target.integers = np.concatenate([target.integers, ints])
            target.phi = np.concatenate([target.phi, phi])
            target.floats = np.concatenate([target.floats, floats])
        else:
            target.global_indices = gidx
            target.integers = ints
            target.phi = phi
            target.floats = floats
        target.chunk_slices[chunk] = slice(old_n, old_n + int(gidx.size))
        try:
            program_ns = target.reprogram(self.verify)
        except ReproError:
            # belt and braces behind the capacity pre-check: a failed
            # reprogram must leave the target serving what it served
            # before, so undo the append and restore the old matrix
            del target.chunk_slices[chunk]
            target.global_indices = target.global_indices[:old_n]
            target.integers = target.integers[:old_n]
            target.phi = target.phi[:old_n]
            target.floats = target.floats[:old_n]
            if old_n:
                target.reprogram(self.verify)
            raise
        self.replicas[chunk] = tuple(
            list(self.replicas[chunk]) + [target_shard]
        )
        self.replica_log.append((int(chunk), int(target_shard)))
        # replica sets and the target's row count changed; routed
        # orders priced against the old shapes are stale
        self._route_cache.clear()
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("serving.rereplications").add(1)
        return {
            "chunk": chunk,
            "source": source.shard_id,
            "target": target_shard,
            "rows": int(gidx.size),
            "bytes": self.chunk_bytes(chunk),
            "program_ns": float(program_ns),
        }

    def wear_reports(self, top: int | None = 3) -> list[dict]:
        """Per-shard endurance wear reports (empty shards report zeros)."""
        out = []
        for shard in self.shards:
            if shard.controller is not None:
                tracker = shard.controller.pim.endurance
            elif shard.engine is not None:
                tracker = shard.engine.pim.endurance
            else:
                out.append({"shard": shard.shard_id, "units_tracked": 0})
                continue
            report = tracker.wear_report(top=top)
            report["shard"] = shard.shard_id
            out.append(report)
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shard_sizes(self) -> list[int]:
        """Rows per shard, by shard id."""
        return [shard.n_rows for shard in self.shards]

    def shard_busy_ns(self) -> list[float]:
        """Cumulative simulated busy time per shard."""
        return [shard.busy_ns for shard in self.shards]

    def reset_busy(self) -> None:
        """Zero the per-shard busy accounting (e.g. after a probe)."""
        for shard in self.shards:
            shard.busy_ns = 0.0

    def merged_stats(self) -> PIMStats:
        """Aggregate array stats over every shard, namespaced per shard.

        Device time spent on waves that a decided hedge race cancelled
        is subtracted from the merged ``pim_time_ns`` (and reported
        under ``extra["hedge_cancelled_ns"]``) so a hedged deployment's
        total device time reflects work that produced answers — the
        per-shard namespaced stats keep the raw uncancelled numbers.
        """
        merged = PIMStats.merge(
            [shard.pim_stats for shard in self.shards],
            prefixes=[f"shard{s}." for s in range(self.n_shards)],
        )
        cancelled = sum(shard.cancelled_pim_ns for shard in self.shards)
        if cancelled > 0.0:
            merged.pim_time_ns = max(0.0, merged.pim_time_ns - cancelled)
            merged.add_extra("hedge_cancelled_ns", cancelled)
        return merged
