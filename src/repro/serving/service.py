"""Deterministic discrete-event query serving over a :class:`ShardManager`.

:class:`QueryService` models one serving node on the simulated clock:
requests arrive (open loop from a :class:`~repro.serving.driver.WorkloadDriver`,
or interactively via :meth:`submit`), pass per-tenant token-bucket
admission, wait in a bounded queue, and are dispatched deadline-first in
batches that ride one amortized PIM wave per shard. Time comes entirely
from the simulator — NVSim wave latency plus Quartz CPU time — so two
runs of the same request trace produce bit-identical responses.

Backpressure policies when the queue is full:

* ``reject``      — shed the arriving request;
* ``drop_oldest`` — shed the oldest queued request, admit the new one;
* ``degrade``     — admit the request flagged for approximate service
  (lower-bound scores only, no exact refinement), trading accuracy for
  a much cheaper dispatch instead of shedding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError, ServingError, WatchdogTimeoutError
from repro.serving.sharding import KNNAnswer, ShardManager
from repro.serving.slo import SLOTracker
from repro.telemetry import get_recorder

QUEUE_POLICIES = ("reject", "drop_oldest", "degrade")

REQUEST_KINDS = ("knn", "assign")


@dataclass(frozen=True)
class TenantSpec:
    """Admission/SLO contract of one tenant.

    ``rate_qps``/``burst`` parameterize the token bucket (``None`` rate
    admits everything); ``deadline_ns`` is the relative per-request
    deadline stamped at arrival when the request carries none;
    ``workload`` names the :mod:`repro.data.workloads` query class the
    driver draws for this tenant.
    """

    name: str
    rate_qps: float | None = None
    burst: int = 8
    deadline_ns: float | None = None
    workload: str = "near"
    k: int = 10
    weight: float = 1.0


@dataclass
class Request:
    """One query in flight through the service."""

    request_id: str
    tenant: str
    query: np.ndarray
    k: int = 10
    kind: str = "knn"
    arrival_ns: float = 0.0
    deadline_ns: float | None = None
    degraded: bool = False
    admit_seq: int = -1
    #: Trace identity minted at admission when telemetry is enabled.
    ctx: object | None = None


#: Critical-path segments in causal order; they partition a request's
#: arrival-to-completion latency (sums match ``latency_ns`` to float
#: rounding, well inside 1 simulated ns).
SEGMENT_ORDER = (
    "queue_ns",        # admitted, waiting for EDF dispatch
    "coscheduled_ns",  # batch service time spent before this request's
                       # own dispatch (assists behind the knn wave)
    "retry_ns",        # failed attempts/backoff/shard queueing before
                       # the tail wave fired
    "wave_ns",         # the tail shard's PIM wave (incl. ADC readout)
    "host_ns",         # the tail shard's host-side candidate work
    "degraded_ns",     # host recompute of replica-less chunks
    "gather_ns",       # coordinator merge
)


@dataclass
class Response:
    """Terminal record of one request: an answer or a shed."""

    request_id: str
    tenant: str
    kind: str
    ok: bool
    arrival_ns: float
    completion_ns: float
    shed_reason: str | None = None
    dispatch_ns: float | None = None
    indices: np.ndarray | None = None
    scores: np.ndarray | None = None
    approximate: bool = False
    degraded: bool = False
    batch_size: int = 0
    #: Trace id (telemetry runs only) linking to the exported tree.
    trace_id: str | None = None
    #: Critical-path attribution keyed by :data:`SEGMENT_ORDER`.
    segments: dict | None = None

    @property
    def latency_ns(self) -> float:
        """Arrival-to-completion simulated latency."""
        return self.completion_ns - self.arrival_ns


class _TokenBucket:
    """Per-tenant admission: ``rate_qps`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate_qps: float, burst: int) -> None:
        if rate_qps <= 0:
            raise ServingError("admission rate must be positive")
        if burst < 1:
            raise ServingError("burst must be >= 1")
        self.rate_per_ns = rate_qps / 1e9
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_ns = 0.0

    def try_take(self, now_ns: float) -> bool:
        self.tokens = min(
            self.burst, self.tokens + (now_ns - self.last_ns) * self.rate_per_ns
        )
        self.last_ns = now_ns
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class QueryService:
    """Single-node serving loop: admission, bounded queue, EDF batches.

    Parameters
    ----------
    manager:
        The sharded store answering the queries.
    tenants:
        Known tenants; when given, unknown tenants are refused with
        :class:`~repro.errors.ServingError` and per-tenant admission
        applies. ``None`` leaves admission open.
    max_batch:
        Most requests one dispatch may carry (one batched wave/shard).
    batch_window_ns:
        How long an under-full batch may wait for company once the
        server is free; 0 dispatches immediately (work-conserving).
    queue_capacity:
        Bound on the admitted-but-undispatched queue.
    policy:
        Overflow behaviour: ``reject``, ``drop_oldest`` or ``degrade``.
    default_deadline_ns:
        Relative deadline stamped on requests that carry none (and whose
        tenant specifies none); ``None`` disables deadline shedding.
    repair:
        Optional :class:`~repro.repair.controller.RepairController`.
        When attached, the service hands it every idle window (between
        the server going free and the next arrival) so scrubbing, spare
        remaps and re-replication interleave with EDF dispatch without
        stealing foreground service time; :meth:`drain` finishes with a
        :meth:`heal` pass restoring every chunk's replica target.
    monitor:
        Optional :class:`~repro.observability.BurnRateMonitor` fed every
        terminal response; emits structured SLO alerts on the recorder.
    brownout:
        Optional :class:`~repro.observability.BrownoutController`
        (requires ``monitor``). While its watched burn-rate alerts
        fire, admitted requests are served from the approximate tier
        and queue overflow degrades instead of shedding — the service
        browns out rather than turning traffic away.
    live_report:
        Optional :class:`~repro.observability.LiveReport` printing a
        periodic console dashboard on simulated time.
    """

    def __init__(
        self,
        manager: ShardManager,
        tenants: list[TenantSpec] | None = None,
        *,
        max_batch: int = 8,
        batch_window_ns: float = 0.0,
        queue_capacity: int = 64,
        policy: str = "reject",
        default_deadline_ns: float | None = None,
        tracker: SLOTracker | None = None,
        repair=None,
        monitor=None,
        brownout=None,
        live_report=None,
    ) -> None:
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if batch_window_ns < 0:
            raise ServingError("batch_window_ns must be >= 0")
        if queue_capacity < 1:
            raise ServingError("queue_capacity must be >= 1")
        if policy not in QUEUE_POLICIES:
            raise ServingError(
                f"unknown policy {policy!r}; one of {QUEUE_POLICIES}"
            )
        self.manager = manager
        self.max_batch = max_batch
        self.batch_window_ns = float(batch_window_ns)
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.default_deadline_ns = default_deadline_ns
        self.tracker = tracker if tracker is not None else SLOTracker()
        self.repair = repair
        #: Optional :class:`~repro.observability.BurnRateMonitor`.
        self.monitor = monitor
        if brownout is not None and monitor is None:
            raise ServingError(
                "brownout control needs the burn-rate monitor that "
                "drives it (pass monitor= as well)"
            )
        if brownout is not None and brownout.monitor is not monitor:
            raise ServingError(
                "the brownout controller must watch this service's "
                "monitor"
            )
        #: Optional :class:`~repro.observability.BrownoutController`.
        self.brownout = brownout
        #: Optional :class:`~repro.observability.LiveReport` dashboard.
        self.live_report = live_report
        if live_report is not None:
            live_report.bind(self)
        if repair is not None and repair.manager is not manager:
            raise ServingError(
                "the repair controller must share this service's manager"
            )
        self.tenants: dict[str, TenantSpec] | None = (
            {t.name: t for t in tenants} if tenants is not None else None
        )
        self._buckets: dict[str, _TokenBucket] = {}
        if self.tenants:
            for spec in self.tenants.values():
                if spec.rate_qps is not None:
                    self._buckets[spec.name] = _TokenBucket(
                        spec.rate_qps, spec.burst
                    )
        self.now_ns = 0.0
        self.server_free_ns = 0.0
        self._queue: list[Request] = []
        self._admitted = 0
        self.responses: list[Response] = []

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Feed one arrival; arrivals must be in non-decreasing time."""
        if request.arrival_ns < self.now_ns:
            raise ServingError(
                "arrivals must be submitted in simulated-time order"
            )
        if request.kind not in REQUEST_KINDS:
            raise ServingError(
                f"unknown request kind {request.kind!r}; "
                f"one of {REQUEST_KINDS}"
            )
        self._dispatch_until(request.arrival_ns)
        self._repair_tick(request.arrival_ns)
        self.now_ns = max(self.now_ns, request.arrival_ns)
        self._admit(request)

    def run(self, requests) -> list[Response]:
        """Serve a whole request trace; returns terminal responses.

        Responses come back in completion order (sheds at their shed
        time) — the order is part of the deterministic contract.
        """
        ordered = sorted(
            requests, key=lambda r: (r.arrival_ns, r.request_id)
        )
        for request in ordered:
            self.submit(request)
        return self.drain()

    def drain(self) -> list[Response]:
        """Dispatch everything still queued; returns all responses.

        Guarded against non-termination: every dispatch must shrink the
        queue, so a dispatch that makes no progress (a bug, or a fault
        path that re-queues) trips the watchdog instead of hanging.
        """
        while self._queue:
            depth = len(self._queue)
            self._dispatch(self._next_dispatch_ns(more_arrivals=False))
            if len(self._queue) >= depth:
                raise WatchdogTimeoutError(
                    f"drain made no progress ({depth} requests stuck "
                    f"at t={self.now_ns:.0f}ns)"
                )
        self.heal()
        return self.responses

    # ------------------------------------------------------------------
    # repair interleaving
    # ------------------------------------------------------------------
    def _repair_tick(self, until_ns: float) -> None:
        """Hand the repair loop the idle window ending at ``until_ns``.

        The window opens when the server goes free and closes at the
        next arrival; repair work is background work, so it only ever
        spends time the dispatcher was not going to use.
        """
        if self.repair is None:
            return
        start = max(self.server_free_ns, self.now_ns)
        if until_ns <= start:
            return
        self.repair.advance(start, until_ns)
        self._drain_repair()

    def heal(self) -> None:
        """Finish outstanding repair work (post-drain redundancy pass)."""
        if self.repair is None:
            return
        self.repair.heal(max(self.server_free_ns, self.now_ns))
        self._drain_repair()

    def _drain_repair(self) -> None:
        for event in self.repair.drain_events():
            self.tracker.record_repair(event)
        for sample in self.manager.health.drain_recoveries():
            self.tracker.record_recovery(sample)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, request: Request) -> None:
        spec = None
        if self.tenants is not None:
            spec = self.tenants.get(request.tenant)
            if spec is None:
                raise ServingError(f"unknown tenant {request.tenant!r}")
        if request.deadline_ns is None:
            relative = (
                spec.deadline_ns
                if spec is not None and spec.deadline_ns is not None
                else self.default_deadline_ns
            )
            if relative is not None:
                request.deadline_ns = request.arrival_ns + relative
        tele = get_recorder()
        if tele.enabled and request.ctx is None:
            request.ctx = tele.new_trace(
                request_id=request.request_id,
                tenant=request.tenant,
                deadline_ns=request.deadline_ns,
            )
        bucket = self._buckets.get(request.tenant)
        if bucket is not None and not bucket.try_take(self.now_ns):
            # per-tenant rate limits are contracts, not overload
            # protection — the brownout never overrides them
            self._shed(request, "admission")
            return
        browned = (
            self.brownout is not None
            and self.brownout.active(self.now_ns)
        )
        if browned and not request.degraded:
            request.degraded = True
            self.brownout.note_degraded()
        if len(self._queue) >= self.queue_capacity:
            if browned:
                # brownout: overflow joins the degraded tier instead
                # of shedding, whatever the configured policy
                self.brownout.note_rescued()
            elif self.policy == "reject":
                self._shed(request, "queue_full")
                return
            elif self.policy == "drop_oldest":
                oldest = min(
                    self._queue,
                    key=lambda r: (r.arrival_ns, r.admit_seq),
                )
                self._queue.remove(oldest)
                self._shed(oldest, "queue_full")
            else:  # degrade: admit beyond capacity, serve approximately
                request.degraded = True
        request.admit_seq = self._admitted
        self._admitted += 1
        self._queue.append(request)
        if tele.enabled:
            tele.metrics.counter("serving.admitted").add(1)
            tele.metrics.gauge("serving.queue_depth").set(len(self._queue))

    def _shed(self, request: Request, reason: str) -> None:
        response = Response(
            request_id=request.request_id,
            tenant=request.tenant,
            kind=request.kind,
            ok=False,
            arrival_ns=request.arrival_ns,
            completion_ns=self.now_ns,
            shed_reason=reason,
        )
        tele = get_recorder()
        if tele.enabled and request.ctx is not None:
            response.trace_id = request.ctx.trace_id
            response.segments = {"queue_ns": response.latency_ns}
            self._emit_request_tree(tele, request, response, None)
        self.responses.append(response)
        self.tracker.observe(response)
        self._observe_terminal(request, response)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _next_dispatch_ns(self, more_arrivals: bool) -> float:
        head = self._queue[0]
        ready = head.arrival_ns
        if (
            more_arrivals
            and len(self._queue) < self.max_batch
            and self.batch_window_ns > 0
        ):
            ready += self.batch_window_ns
        return max(ready, self.server_free_ns, self.now_ns)

    def _dispatch_until(self, t_ns: float) -> None:
        while self._queue:
            t_dispatch = self._next_dispatch_ns(more_arrivals=True)
            if t_dispatch > t_ns:
                break
            self._dispatch(t_dispatch)

    def _dispatch(self, t_dispatch: float) -> None:
        self.now_ns = max(self.now_ns, t_dispatch)
        # earliest-deadline-first, FIFO among equals — deterministic
        self._queue.sort(
            key=lambda r: (
                r.deadline_ns if r.deadline_ns is not None else float("inf"),
                r.admit_seq,
            )
        )
        batch = self._queue[: self.max_batch]
        del self._queue[: len(batch)]
        live: list[Request] = []
        for request in batch:
            if (
                request.deadline_ns is not None
                and request.deadline_ns < self.now_ns
            ):
                self._shed(request, "deadline")
            else:
                live.append(request)
        if not live:
            return
        tele = get_recorder()
        # the dispatch and everything under it (scatter, waves, recovery
        # markers, gather) joins the first live request's trace; the
        # other requests' trees reference the same work via their
        # synthesized per-shard wave spans
        ctx = None
        if tele.enabled:
            for request in live:
                if request.ctx is not None:
                    ctx = request.ctx
                    break
        with tele.trace(ctx):
            with tele.span(
                "serving.dispatch", "serving",
                requests=len(live), t_dispatch_ns=self.now_ns,
            ):
                service_ns = self._serve(live)
        if not np.isfinite(service_ns):
            raise WatchdogTimeoutError(
                f"dispatch at t={self.now_ns:.0f}ns produced a "
                f"non-finite service time ({service_ns}); a shard hung "
                "without a dispatch timeout"
            )
        self.server_free_ns = self.now_ns + service_ns
        if tele.enabled:
            tele.metrics.histogram("serving.batch_size").observe(len(live))
            tele.metrics.gauge("serving.queue_depth").set(len(self._queue))

    def _serve(self, batch: list[Request]) -> float:
        """Answer one dispatched batch; returns its service time.

        A :class:`~repro.errors.FaultError` the recovery machinery could
        not absorb (e.g. every replica of a chunk dead with degraded
        recompute disabled) sheds the affected requests under the
        fault's reason code instead of crashing the event loop — except
        ``TimeoutError``-family faults (a hung shard with the watchdog
        disabled), which are configuration-level and re-raise.
        """
        knn = [r for r in batch if r.kind == "knn"]
        assists = [r for r in batch if r.kind == "assign"]
        service_ns = 0.0
        if knn:
            try:
                answers, timing = self.manager.knn_batch(
                    np.stack([r.query for r in knn]),
                    [r.k for r in knn],
                    [r.degraded for r in knn],
                    now_ns=self.now_ns,
                )
            except FaultError as exc:
                if isinstance(exc, TimeoutError):
                    raise
                for request in knn:
                    self._shed(request, exc.reason)
            else:
                self._account_dispatch(timing)
                before_ns = service_ns
                service_ns += timing.service_ns
                for request, answer in zip(knn, answers):
                    self._complete(
                        request, answer, len(batch), service_ns,
                        timing, before_ns,
                    )
        for request in assists:
            before_ns = service_ns
            try:
                answer, timing = self.manager.assign(
                    request.query, now_ns=self.now_ns + service_ns
                )
            except FaultError as exc:
                if isinstance(exc, TimeoutError):
                    raise
                self._shed(request, exc.reason)
                continue
            self._account_dispatch(timing)
            service_ns += timing.service_ns
            self._complete_assign(
                request, answer, len(batch), service_ns, timing, before_ns
            )
        return service_ns

    def _account_dispatch(self, timing) -> None:
        """Feed one dispatch's recovery counters and MTTR into the SLOs."""
        self.tracker.record_dispatch(timing)
        for sample in self.manager.health.drain_recoveries():
            self.tracker.record_recovery(sample)

    def _complete(
        self,
        request: Request,
        answer: KNNAnswer,
        batch_size: int,
        service_ns: float,
        timing,
        before_ns: float,
    ) -> None:
        response = Response(
            request_id=request.request_id,
            tenant=request.tenant,
            kind=request.kind,
            ok=True,
            arrival_ns=request.arrival_ns,
            dispatch_ns=self.now_ns,
            completion_ns=self.now_ns + service_ns,
            indices=answer.indices,
            scores=answer.scores,
            approximate=answer.approximate,
            degraded=answer.degraded,
            batch_size=batch_size,
        )
        self._finalize(request, response, timing, before_ns)

    def _complete_assign(
        self,
        request: Request,
        answer,
        batch_size: int,
        service_ns: float,
        timing,
        before_ns: float,
    ) -> None:
        response = Response(
            request_id=request.request_id,
            tenant=request.tenant,
            kind=request.kind,
            ok=True,
            arrival_ns=request.arrival_ns,
            dispatch_ns=self.now_ns,
            completion_ns=self.now_ns + service_ns,
            indices=answer.assignments,
            scores=answer.distances,
            degraded=answer.degraded,
            batch_size=batch_size,
        )
        self._finalize(request, response, timing, before_ns)

    def _finalize(
        self, request: Request, response: Response, timing, before_ns: float
    ) -> None:
        """Attach trace data, record the response, feed the monitors."""
        tele = get_recorder()
        if tele.enabled and request.ctx is not None:
            path = timing.critical_path()
            response.trace_id = request.ctx.trace_id
            response.segments = {
                "queue_ns": response.dispatch_ns - response.arrival_ns,
                "coscheduled_ns": before_ns,
                "retry_ns": path["retry_ns"],
                "wave_ns": path["wave_ns"],
                "host_ns": path["host_ns"],
                "degraded_ns": path["degraded_ns"],
                "gather_ns": path["gather_ns"],
            }
            self._emit_request_tree(
                tele, request, response, timing, critical_shard=path["shard"]
            )
        self.responses.append(response)
        self.tracker.observe(response)
        self._observe_terminal(request, response)

    def _emit_request_tree(
        self, tele, request: Request, response: Response, timing,
        critical_shard=None,
    ) -> None:
        """Emit the request's span tree on the event-loop timeline.

        One root span covers arrival -> completion; each non-empty
        critical-path segment is a child chained end-to-start under it;
        every successful wave of the dispatch appears as a per-shard
        child on its actual interval (so retry/failover/hedge winners
        and the gather are all visible per request). The shared live
        dispatch spans (scatter, pim waves, recovery markers) join the
        batch's first request via the installed trace context.
        """
        ctx = request.ctx
        tele.record_span(
            "request", "request",
            response.arrival_ns, response.completion_ns,
            trace_id=ctx.trace_id, span_id=ctx.span_id, track="requests",
            request_id=request.request_id,
            tenant=request.tenant,
            kind=request.kind,
            ok=response.ok,
            shed_reason=response.shed_reason,
            deadline_ns=request.deadline_ns,
            batch_size=response.batch_size,
            critical_shard=critical_shard,
        )
        t = response.arrival_ns
        for key in SEGMENT_ORDER:
            dur = (response.segments or {}).get(key, 0.0)
            if dur <= 0:
                continue
            tele.record_span(
                "request." + key[:-3], "request", t, t + dur,
                trace_id=ctx.trace_id, parent_id=ctx.span_id,
                track="requests", depth=1, segment=key,
            )
            t += dur
        if timing is not None and response.dispatch_ns is not None:
            base = response.dispatch_ns + (
                (response.segments or {}).get("coscheduled_ns", 0.0)
            )
            for comp in timing.wave_components:
                tele.record_span(
                    "request.shard_wave", "request",
                    base + comp["start_ns"], base + comp["end_ns"],
                    trace_id=ctx.trace_id, parent_id=ctx.span_id,
                    track="requests", depth=1,
                    shard=comp["shard"], chunks=comp["chunks"],
                    pim_ns=comp["pim_ns"], cpu_ns=comp["cpu_ns"],
                    hedged=comp["hedged"],
                )

    def _observe_terminal(self, request: Request, response: Response) -> None:
        if self.monitor is not None:
            self.monitor.observe(response, deadline_ns=request.deadline_ns)
        if self.live_report is not None:
            self.live_report.maybe_report(
                max(self.now_ns, response.completion_ns)
            )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """SLO summary over everything served so far.

        Includes the per-shard health snapshot (breaker windows,
        dead/quarantine timestamps) and — when a repair controller is
        attached — its repair report, so one dict answers both "how did
        serving go" and "what did the self-healing loop do about it".
        """
        horizon = max(self.server_free_ns, self.now_ns)
        if self.repair is not None:
            self._drain_repair()
        result = self.tracker.summary(
            horizon_ns=horizon,
            shard_busy_ns=self.manager.shard_busy_ns(),
        )
        result["health"] = self.manager.health.snapshot(horizon)
        result["durability"] = self.manager.spread_report()
        if self.repair is not None:
            result["repair"] = self.repair.report()
        if self.monitor is not None:
            result["alerts"] = [dict(a) for a in self.monitor.alerts]
            result["burn"] = self.monitor.snapshot(horizon)
        if self.brownout is not None:
            result["brownout"] = self.brownout.snapshot()
        return result
