"""SLO accounting for the serving layer: latency, throughput, sheds.

:class:`SLOTracker` observes every terminal :class:`~repro.serving.service.Response`
(completions and sheds), keeps per-tenant latency series, and reduces
them to the numbers an operator watches: p50/p95/p99 latency, aggregate
throughput, shed rate by reason, and — via the shard busy times the
:class:`~repro.serving.sharding.ShardManager` accumulates — per-shard
utilization. Everything is on the simulated clock, so summaries are
deterministic and comparable across runs.

Observations stream into :mod:`repro.telemetry` when a recorder is
active (latency histogram, completion/shed counters); :meth:`summary`
additionally publishes the reduced percentiles as gauges so a metrics
snapshot carries the headline numbers.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry import get_recorder

PERCENTILES = (50.0, 95.0, 99.0)


class SLOTracker:
    """Streaming collector of terminal responses.

    Beyond latency/throughput/sheds, it aggregates the robustness
    signals of a faulted run: ``availability`` (completed fraction of
    offered), ``retry_rate`` (retries per dispatch attempt),
    ``mttr_ns`` (mean shard down-to-up time, fed from
    :meth:`~repro.serving.health.ShardHealthTracker.drain_recoveries`),
    and the recovery counters each
    :class:`~repro.serving.sharding.GatherTiming` carries.
    ``degraded_exact`` counts responses that needed host-side exact
    recompute of an unavailable chunk — still bit-exact, but slower —
    as opposed to ``degraded`` which counts approximate (lower-bound
    only) service.
    """

    def __init__(self) -> None:
        self.latencies_ns: list[float] = []
        self.per_tenant: dict[str, list[float]] = {}
        self.completed = 0
        self.degraded = 0
        self.degraded_exact = 0
        self.shed = 0
        self.shed_reasons: dict[str, int] = {}
        self.first_arrival_ns: float | None = None
        self.last_completion_ns = 0.0
        self.dispatches = 0
        self.attempts = 0
        self.retries = 0
        self.failovers = 0
        self.timeouts = 0
        self.crashes = 0
        self.corrupt_detected = 0
        self.hedges = 0
        self.hedges_won = 0
        self.hedges_lost = 0
        self.hedges_denied = 0
        self.hedge_cancelled_ns = 0.0
        self.link_drops = 0
        self.degraded_chunks = 0
        self.mttr_samples: list[float] = []
        self.repair_events: list[dict] = []
        self.repair_counts: dict[str, int] = {}
        # instrument cache, invalidated when the active registry changes
        self._metrics_src = None
        self._instruments: dict[str, object] = {}

    # ------------------------------------------------------------------
    def observe(self, response) -> None:
        """Record one terminal response (completion or shed)."""
        tele = get_recorder()
        if self.first_arrival_ns is None:
            self.first_arrival_ns = response.arrival_ns
        else:
            self.first_arrival_ns = min(
                self.first_arrival_ns, response.arrival_ns
            )
        if not response.ok:
            self.shed += 1
            reason = response.shed_reason or "unknown"
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
            if tele.enabled:
                m = self._metrics(tele)
                m.counter(f"serving.shed.{reason}").add(1)
                m.counter(
                    "serving.shed", labels={"reason": reason}
                ).add(1)
            return
        self.completed += 1
        if response.approximate:
            self.degraded += 1
        latency = response.latency_ns
        self.latencies_ns.append(latency)
        self.per_tenant.setdefault(response.tenant, []).append(latency)
        self.last_completion_ns = max(
            self.last_completion_ns, response.completion_ns
        )
        if getattr(response, "degraded", False):
            self.degraded_exact += 1
        if tele.enabled:
            # the trace id rides along as an exemplar so the latency
            # histogram points straight at the slowest request trees
            exemplar = getattr(response, "trace_id", None)
            m = self._metrics(tele)
            self._instruments["completed"].add(1)
            self._instruments["latency"].observe(latency, exemplar=exemplar)
            m.histogram(
                "serving.tenant_latency_ns",
                labels={"tenant": response.tenant},
            ).observe(latency, exemplar=exemplar)
            if response.approximate:
                m.counter("serving.degraded").add(1)
            if getattr(response, "degraded", False):
                m.counter("serving.degraded_exact").add(1)

    def _metrics(self, tele):
        """The active registry, with the hot instruments pre-fetched."""
        m = tele.metrics
        if m is not self._metrics_src:
            self._metrics_src = m
            self._instruments = {
                "completed": m.counter("serving.completed"),
                "latency": m.histogram("serving.latency_ns"),
            }
        return m

    def record_dispatch(self, timing) -> None:
        """Fold one dispatch's :class:`GatherTiming` recovery counters in."""
        self.dispatches += 1
        self.attempts += timing.attempts
        self.retries += timing.retries
        self.failovers += timing.failovers
        self.timeouts += timing.timeouts
        self.crashes += timing.crashes
        self.corrupt_detected += timing.corrupt_detected
        self.hedges += timing.hedges
        self.hedges_won += timing.hedges_won
        self.hedges_lost += timing.hedges_lost
        self.hedges_denied += timing.hedges_denied
        self.hedge_cancelled_ns += timing.hedge_cancelled_ns
        self.link_drops += timing.link_drops
        self.degraded_chunks += timing.degraded_chunks

    def record_recovery(self, duration_ns: float) -> None:
        """Add one shard down-to-up duration (an MTTR sample)."""
        self.mttr_samples.append(float(duration_ns))

    def record_repair(self, event: dict) -> None:
        """Fold one repair-timeline event (scrub detection, spare remap,
        re-replication, quarantine, ...) into the SLO picture."""
        self.repair_events.append(dict(event))
        kind = str(event.get("kind", "unknown"))
        self.repair_counts[kind] = self.repair_counts.get(kind, 0) + 1
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter(f"serving.repair.{kind}").add(1)

    # ------------------------------------------------------------------
    @property
    def offered(self) -> int:
        """Total terminal responses observed (completions + sheds)."""
        return self.completed + self.shed

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed (0 when nothing offered)."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed (1.0 when idle)."""
        if self.offered == 0:
            return 1.0
        return self.completed / self.offered

    @property
    def retry_rate(self) -> float:
        """Retries per dispatch attempt (0 when nothing dispatched)."""
        if self.attempts == 0:
            return 0.0
        return self.retries / self.attempts

    @property
    def mttr_ns(self) -> float:
        """Mean shard down-to-up time over the observed recoveries."""
        if not self.mttr_samples:
            return 0.0
        return float(np.mean(self.mttr_samples))

    def percentiles(self, series=None) -> dict[str, float]:
        """p50/p95/p99 of a latency series (ns); zeros when empty."""
        values = self.latencies_ns if series is None else series
        if not values:
            return {f"p{int(p)}_ns": 0.0 for p in PERCENTILES}
        arr = np.asarray(values, dtype=np.float64)
        return {
            f"p{int(p)}_ns": float(np.percentile(arr, p))
            for p in PERCENTILES
        }

    def throughput_qps(self, horizon_ns: float | None = None) -> float:
        """Completions per simulated second over the run horizon."""
        if self.completed == 0:
            return 0.0
        start = self.first_arrival_ns or 0.0
        end = (
            horizon_ns if horizon_ns is not None else self.last_completion_ns
        )
        span = end - start
        if span <= 0:
            return 0.0
        return float(self.completed / (span / 1e9))

    def summary(
        self,
        horizon_ns: float | None = None,
        shard_busy_ns=None,
    ) -> dict:
        """The operator dashboard as one dict (also pushed as gauges)."""
        pcts = self.percentiles()
        result = {
            "offered": self.offered,
            "completed": self.completed,
            "degraded": self.degraded,
            "degraded_exact": self.degraded_exact,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "availability": self.availability,
            "retry_rate": self.retry_rate,
            "mttr_ns": self.mttr_ns,
            "shed_reasons": dict(self.shed_reasons),
            "throughput_qps": self.throughput_qps(horizon_ns),
            "recovery": {
                "dispatches": self.dispatches,
                "attempts": self.attempts,
                "retries": self.retries,
                "failovers": self.failovers,
                "timeouts": self.timeouts,
                "crashes": self.crashes,
                "corrupt_detected": self.corrupt_detected,
                "hedges": self.hedges,
                "hedges_won": self.hedges_won,
                "hedges_lost": self.hedges_lost,
                "hedges_denied": self.hedges_denied,
                "hedge_cancelled_ns": self.hedge_cancelled_ns,
                "hedge_rate": (
                    self.hedges / self.attempts if self.attempts else 0.0
                ),
                "link_drops": self.link_drops,
                "degraded_chunks": self.degraded_chunks,
            },
            "repair_activity": dict(sorted(self.repair_counts.items())),
            **pcts,
            "per_tenant": {
                tenant: self.percentiles(series)
                for tenant, series in sorted(self.per_tenant.items())
            },
        }
        if shard_busy_ns is not None:
            start = self.first_arrival_ns or 0.0
            end = (
                horizon_ns
                if horizon_ns is not None
                else self.last_completion_ns
            )
            span = max(end - start, 0.0)
            result["shard_utilization"] = [
                float(busy / span) if span > 0 else 0.0
                for busy in shard_busy_ns
            ]
        tele = get_recorder()
        if tele.enabled:
            for key in ("p50_ns", "p95_ns", "p99_ns"):
                tele.metrics.gauge(f"serving.{key[:-3]}_latency_ns").set(
                    result[key]
                )
            tele.metrics.gauge("serving.throughput_qps").set(
                result["throughput_qps"]
            )
            tele.metrics.gauge("serving.shed_rate").set(result["shed_rate"])
            tele.metrics.gauge("serving.availability").set(
                result["availability"]
            )
            tele.metrics.gauge("serving.retry_rate").set(result["retry_rate"])
            tele.metrics.gauge("serving.mttr_ns").set(result["mttr_ns"])
            for s, util in enumerate(result.get("shard_utilization", [])):
                tele.metrics.gauge(f"serving.shard{s}.utilization").set(util)
        return result
