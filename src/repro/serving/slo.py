"""SLO accounting for the serving layer: latency, throughput, sheds.

:class:`SLOTracker` observes every terminal :class:`~repro.serving.service.Response`
(completions and sheds), keeps per-tenant latency series, and reduces
them to the numbers an operator watches: p50/p95/p99 latency, aggregate
throughput, shed rate by reason, and — via the shard busy times the
:class:`~repro.serving.sharding.ShardManager` accumulates — per-shard
utilization. Everything is on the simulated clock, so summaries are
deterministic and comparable across runs.

Observations stream into :mod:`repro.telemetry` when a recorder is
active (latency histogram, completion/shed counters); :meth:`summary`
additionally publishes the reduced percentiles as gauges so a metrics
snapshot carries the headline numbers.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry import get_recorder

PERCENTILES = (50.0, 95.0, 99.0)


class SLOTracker:
    """Streaming collector of terminal responses."""

    def __init__(self) -> None:
        self.latencies_ns: list[float] = []
        self.per_tenant: dict[str, list[float]] = {}
        self.completed = 0
        self.degraded = 0
        self.shed = 0
        self.shed_reasons: dict[str, int] = {}
        self.first_arrival_ns: float | None = None
        self.last_completion_ns = 0.0

    # ------------------------------------------------------------------
    def observe(self, response) -> None:
        """Record one terminal response (completion or shed)."""
        tele = get_recorder()
        if self.first_arrival_ns is None:
            self.first_arrival_ns = response.arrival_ns
        else:
            self.first_arrival_ns = min(
                self.first_arrival_ns, response.arrival_ns
            )
        if not response.ok:
            self.shed += 1
            reason = response.shed_reason or "unknown"
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
            if tele.enabled:
                tele.metrics.counter(f"serving.shed.{reason}").add(1)
            return
        self.completed += 1
        if response.approximate:
            self.degraded += 1
        latency = response.latency_ns
        self.latencies_ns.append(latency)
        self.per_tenant.setdefault(response.tenant, []).append(latency)
        self.last_completion_ns = max(
            self.last_completion_ns, response.completion_ns
        )
        if tele.enabled:
            tele.metrics.counter("serving.completed").add(1)
            tele.metrics.histogram("serving.latency_ns").observe(latency)
            if response.approximate:
                tele.metrics.counter("serving.degraded").add(1)

    # ------------------------------------------------------------------
    @property
    def offered(self) -> int:
        """Total terminal responses observed (completions + sheds)."""
        return self.completed + self.shed

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed (0 when nothing offered)."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def percentiles(self, series=None) -> dict[str, float]:
        """p50/p95/p99 of a latency series (ns); zeros when empty."""
        values = self.latencies_ns if series is None else series
        if not values:
            return {f"p{int(p)}_ns": 0.0 for p in PERCENTILES}
        arr = np.asarray(values, dtype=np.float64)
        return {
            f"p{int(p)}_ns": float(np.percentile(arr, p))
            for p in PERCENTILES
        }

    def throughput_qps(self, horizon_ns: float | None = None) -> float:
        """Completions per simulated second over the run horizon."""
        if self.completed == 0:
            return 0.0
        start = self.first_arrival_ns or 0.0
        end = (
            horizon_ns if horizon_ns is not None else self.last_completion_ns
        )
        span = end - start
        if span <= 0:
            return 0.0
        return float(self.completed / (span / 1e9))

    def summary(
        self,
        horizon_ns: float | None = None,
        shard_busy_ns=None,
    ) -> dict:
        """The operator dashboard as one dict (also pushed as gauges)."""
        pcts = self.percentiles()
        result = {
            "offered": self.offered,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "shed_reasons": dict(self.shed_reasons),
            "throughput_qps": self.throughput_qps(horizon_ns),
            **pcts,
            "per_tenant": {
                tenant: self.percentiles(series)
                for tenant, series in sorted(self.per_tenant.items())
            },
        }
        if shard_busy_ns is not None:
            start = self.first_arrival_ns or 0.0
            end = (
                horizon_ns
                if horizon_ns is not None
                else self.last_completion_ns
            )
            span = max(end - start, 0.0)
            result["shard_utilization"] = [
                float(busy / span) if span > 0 else 0.0
                for busy in shard_busy_ns
            ]
        tele = get_recorder()
        if tele.enabled:
            for key in ("p50_ns", "p95_ns", "p99_ns"):
                tele.metrics.gauge(f"serving.{key[:-3]}_latency_ns").set(
                    result[key]
                )
            tele.metrics.gauge("serving.throughput_qps").set(
                result["throughput_qps"]
            )
            tele.metrics.gauge("serving.shed_rate").set(result["shed_rate"])
            for s, util in enumerate(result.get("shard_utilization", [])):
                tele.metrics.gauge(f"serving.shard{s}.utilization").set(util)
        return result
