"""repro — reproduction of "Accelerating Similarity-based Mining Tasks on
High-dimensional Data by Processing-in-memory" (Wang, Yiu, Shao; ICDE'21).

The library has four layers; each is importable on its own and the most
common entry points are re-exported here:

* :mod:`repro.hardware` — a functional + timing simulator of ReRAM
  processing-in-memory (crossbars, bit-slicing, Theorem 4 mapping,
  NVSim-style wave latency, Quartz-style CPU model);
* :mod:`repro.similarity` / :mod:`repro.bounds` — ED/CS/PCC/HD, their
  PIM-aware decompositions (Table 4), quantization (Theorem 3) and the
  bound functions (Table 3 baselines, Theorem 1/2 PIM bounds);
* :mod:`repro.mining` — kNN (Standard/OST/SM/FNN) and k-means
  (Lloyd/Elkan/Drake/Yinyang) with exact PIM-optimized variants;
* :mod:`repro.core` — the paper's framework: profiling (Section IV),
  execution-plan optimization (Section V-D), memory management
  (Theorem 4) and the :class:`~repro.core.framework.PIMAccelerator`
  facade.

Quickstart::

    import numpy as np
    from repro import PIMAccelerator, make_dataset, make_queries

    data = make_dataset("MSD", n=2000)
    queries = make_queries("MSD", data, n_queries=5)
    report = PIMAccelerator().accelerate_knn("Standard", data, queries, k=10)
    print(f"speedup {report.speedup:.1f}x, exact results: "
          f"{report.results_match}")
"""

from repro.core.framework import AccelerationReport, PIMAccelerator
from repro.core.profiler import profile_kmeans, profile_knn
from repro.data.catalog import make_dataset, make_queries
from repro.data.lsh import make_binary_codes
from repro.errors import ReproError
from repro.hardware.config import baseline_platform, pim_platform
from repro.hardware.controller import PIMController
from repro.mining.kmeans import PIMAssist, initial_centers, make_kmeans
from repro.mining.knn import make_baseline, make_pim_variant
from repro.similarity.quantization import Quantizer

__version__ = "1.0.0"

__all__ = [
    "AccelerationReport",
    "PIMAccelerator",
    "PIMAssist",
    "PIMController",
    "Quantizer",
    "ReproError",
    "__version__",
    "baseline_platform",
    "initial_centers",
    "make_baseline",
    "make_binary_codes",
    "make_dataset",
    "make_kmeans",
    "make_pim_variant",
    "make_queries",
    "pim_platform",
    "profile_kmeans",
    "profile_knn",
]
