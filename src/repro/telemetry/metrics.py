"""Metric instruments keyed to the simulated clock.

Three instrument kinds cover everything the PIM stack reports:

* :class:`Counter` — monotonically increasing totals (waves fired,
  batches flushed, bytes moved);
* :class:`Gauge` — last-value measurements (buffer occupancy, queue
  depth, per-query prune ratios);
* :class:`Histogram` — distributions (batch sizes, candidate survival).

Every update appends a ``(ts_ns, value)`` sample stamped with the
*simulated* clock (Quartz CPU ns + PIM wave ns), so exported series show
where inside a run an event happened, not when the host executed it.
Instruments live in a :class:`MetricsRegistry`; names are dotted paths
(``pim.waves``, ``scheduler.flush.size``) created on first use.
"""

from __future__ import annotations

from typing import Callable, Iterator


class Instrument:
    """Base of every metric instrument."""

    kind: str = "instrument"

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.labels: dict[str, str] = dict(labels) if labels else {}
        self._clock = clock
        #: ``(ts_ns, value)`` pairs in update order (simulated time).
        self.samples: list[tuple[float, float]] = []

    @property
    def display_name(self) -> str:
        """``name{k=v,...}`` — unique across label sets of one name."""
        if not self.labels:
            return self.name
        rendered = ",".join(
            f"{k}={v}" for k, v in sorted(self.labels.items())
        )
        return f"{self.name}{{{rendered}}}"

    def _record(self, value: float) -> None:
        self.samples.append((self._clock(), value))

    def summary(self) -> dict[str, float]:
        """Exporter-facing scalar summary of this instrument."""
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing total; samples hold cumulative values."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        labels: dict[str, str] | None = None,
    ) -> None:
        super().__init__(name, clock, labels)
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter (negative increments are a logic error)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self._record(self.value)

    def summary(self) -> dict[str, float]:
        return {"value": self.value}


class Gauge(Instrument):
    """A last-value measurement; samples hold the set values."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        labels: dict[str, str] | None = None,
    ) -> None:
        super().__init__(name, clock, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._record(self.value)

    def summary(self) -> dict[str, float]:
        return {"value": self.value}


class Histogram(Instrument):
    """A distribution; samples hold individual observations."""

    kind = "histogram"

    #: Exemplars kept per histogram (the largest observations win).
    MAX_EXEMPLARS = 4

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        labels: dict[str, str] | None = None,
    ) -> None:
        super().__init__(name, clock, labels)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: ``(value, ts_ns, trace_id)`` — the slowest observations seen,
        #: so latency histograms point straight at exemplar traces.
        self.exemplars: list[tuple[float, float, str]] = []

    def observe(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._record(value)
        if exemplar is not None:
            self.exemplars.append((value, self._clock(), exemplar))
            if len(self.exemplars) > self.MAX_EXEMPLARS:
                self.exemplars.remove(min(self.exemplars))

    @property
    def mean(self) -> float:
        """Mean observation (0 before the first one)."""
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0.0, "sum": 0.0, "mean": 0.0}
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


#: Label set overflowed instruments are folded into.
OVERFLOW_LABELS = {"overflow": "__other__"}

#: Warning counter bumped once per distinct label set that overflowed.
LABEL_OVERFLOW_METRIC = "telemetry.label_overflow"


class MetricsRegistry:
    """Name -> instrument map with create-on-first-use accessors.

    Asking for an existing name with a different instrument kind is a
    ``TypeError`` — one name means one series. Instruments may carry a
    ``labels`` dict (per-tenant, per-shard, per-reason series); each
    distinct label set is its own series under the same name. A
    cardinality guard caps distinct label sets per name at
    ``max_label_sets``: further sets fold into a shared ``__other__``
    bucket and bump :data:`LABEL_OVERFLOW_METRIC`, so unbounded tenant
    or shard populations cannot blow up the registry.
    """

    def __init__(
        self, clock: Callable[[], float], max_label_sets: int = 32
    ) -> None:
        self._clock = clock
        self.max_label_sets = max_label_sets
        self._instruments: dict[str, Instrument] = {}
        self._label_sets: dict[str, set] = {}
        self._overflowed: dict[str, set] = {}
        # (name, sorted label items) -> instrument, so steady-state
        # labeled lookups skip the guard and the key formatting
        self._labeled_cache: dict[tuple, Instrument] = {}

    def _guard_labels(
        self, name: str, labels: dict[str, str]
    ) -> dict[str, str]:
        items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        known = self._label_sets.setdefault(name, set())
        if items in known:
            return dict(items)
        if len(known) >= self.max_label_sets:
            dropped = self._overflowed.setdefault(name, set())
            if items not in dropped:
                dropped.add(items)
                self.counter(LABEL_OVERFLOW_METRIC).add(1)
            return dict(OVERFLOW_LABELS)
        known.add(items)
        return dict(items)

    def _get(
        self, name: str, cls: type, labels: dict[str, str] | None = None
    ) -> Instrument:
        if labels:
            items = tuple(
                sorted((str(k), str(v)) for k, v in labels.items())
            )
            cached = self._labeled_cache.get((name, items))
            if cached is not None:
                if not isinstance(cached, cls):
                    raise TypeError(
                        f"metric {name!r} is a {cached.kind}, not a "
                        f"{cls.kind}"  # type: ignore[attr-defined]
                    )
                return cached
            labels = self._guard_labels(name, labels)
            key = name + "{" + ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
            ) + "}"
        else:
            key = name
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, self._clock, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a "
                f"{cls.kind}"  # type: ignore[attr-defined]
            )
        if labels:
            self._labeled_cache[(name, items)] = instrument
        return instrument

    def counter(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Counter:
        """The counter of this name (created on first use)."""
        return self._get(name, Counter, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Gauge:
        """The gauge of this name (created on first use)."""
        return self._get(name, Gauge, labels)  # type: ignore[return-value]

    def histogram(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Histogram:
        """The histogram of this name (created on first use)."""
        return self._get(name, Histogram, labels)  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Instrument]:
        """Instruments in creation order."""
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Instrument | None:
        """The instrument of this name, or None."""
        return self._instruments.get(name)
