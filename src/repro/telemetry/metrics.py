"""Metric instruments keyed to the simulated clock.

Three instrument kinds cover everything the PIM stack reports:

* :class:`Counter` — monotonically increasing totals (waves fired,
  batches flushed, bytes moved);
* :class:`Gauge` — last-value measurements (buffer occupancy, queue
  depth, per-query prune ratios);
* :class:`Histogram` — distributions (batch sizes, candidate survival).

Every update appends a ``(ts_ns, value)`` sample stamped with the
*simulated* clock (Quartz CPU ns + PIM wave ns), so exported series show
where inside a run an event happened, not when the host executed it.
Instruments live in a :class:`MetricsRegistry`; names are dotted paths
(``pim.waves``, ``scheduler.flush.size``) created on first use.
"""

from __future__ import annotations

from typing import Callable, Iterator


class Instrument:
    """Base of every metric instrument."""

    kind: str = "instrument"

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self._clock = clock
        #: ``(ts_ns, value)`` pairs in update order (simulated time).
        self.samples: list[tuple[float, float]] = []

    def _record(self, value: float) -> None:
        self.samples.append((self._clock(), value))

    def summary(self) -> dict[str, float]:
        """Exporter-facing scalar summary of this instrument."""
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing total; samples hold cumulative values."""

    kind = "counter"

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        super().__init__(name, clock)
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter (negative increments are a logic error)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self._record(self.value)

    def summary(self) -> dict[str, float]:
        return {"value": self.value}


class Gauge(Instrument):
    """A last-value measurement; samples hold the set values."""

    kind = "gauge"

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        super().__init__(name, clock)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._record(self.value)

    def summary(self) -> dict[str, float]:
        return {"value": self.value}


class Histogram(Instrument):
    """A distribution; samples hold individual observations."""

    kind = "histogram"

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        super().__init__(name, clock)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._record(value)

    @property
    def mean(self) -> float:
        """Mean observation (0 before the first one)."""
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0.0, "sum": 0.0, "mean": 0.0}
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name -> instrument map with create-on-first-use accessors.

    Asking for an existing name with a different instrument kind is a
    ``TypeError`` — one name means one series.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._instruments: dict[str, Instrument] = {}

    def _get(self, name: str, cls: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, self._clock)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a "
                f"{cls.kind}"  # type: ignore[attr-defined]
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter of this name (created on first use)."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge of this name (created on first use)."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram of this name (created on first use)."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Instrument]:
        """Instruments in creation order."""
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Instrument | None:
        """The instrument of this name, or None."""
        return self._instruments.get(name)
