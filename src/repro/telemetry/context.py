"""Trace context: the causal identity a request carries through serving.

A :class:`TraceContext` is minted once per request at admission
(:meth:`TelemetryRecorder.new_trace`) and rides on the request object
through EDF dispatch, shard scatter/gather, failover, retries, hedging,
degraded recompute and repair. Every span recorded while a context is
installed (``with tele.trace(ctx):``) inherits its ``trace_id`` and is
parented under the context's ``span_id``, so exporters can reconstruct
the full causal tree of a request even though the serving event loop
and the hardware recorder run on different simulated clocks.

Identifiers are deterministic (a per-recorder counter), so traces are
reproducible run-to-run — there is no wall-clock or RNG input.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceContext:
    """Immutable trace identity plus request baggage.

    ``trace_id``
        Identifies the whole causal tree (one per request).
    ``span_id``
        The span new children should be parented under — at mint time,
        the request's root span (emitted when the request terminates).
    ``baggage``
        Request-scoped attributes (tenant, request_id, deadline) that
        propagate with the context and land on the root span's args.
    """

    trace_id: str
    span_id: str
    baggage: dict = field(default_factory=dict)

    def child(self, span_id: str) -> "TraceContext":
        """The same trace re-rooted under a different parent span."""
        return TraceContext(self.trace_id, span_id, self.baggage)
