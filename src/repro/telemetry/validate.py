"""Schema validation for emitted telemetry files.

``python -m repro.telemetry.validate run.trace.json run.metrics.jsonl``
checks that

* the trace file is a Chrome-trace-event object whose events carry the
  required keys, non-negative microsecond timestamps/durations and the
  exact-nanosecond ``args`` mirrors the exporter promises;
* span (``ph == "X"``) event start times are monotonically
  non-decreasing in file order (the simulated clock never runs
  backwards);
* trace-context referential integrity holds: span_ids are unique, a
  span carrying any trace field carries a trace_id + span_id pair, and
  every ``parent_id`` resolves to a span in the same trace — a
  dangling parent is a validation failure, not a rendering quirk;
* instant events (``ph == "i"``) are well-formed, and alert instants
  carry the structured alert payload (rule/objective/burn_rate/
  severity);
* every metrics line is valid JSON with the sample/summary/alert keys,
  and each metric's sample timestamps are monotonically non-decreasing.

CI runs this against a smoke workload so a malformed exporter fails the
build before anyone loads a broken trace into Perfetto.
"""

from __future__ import annotations

import json
import sys
from typing import Sequence

SPAN_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")
SAMPLE_KEYS = ("kind", "metric", "type", "ts_ns", "value")
SUMMARY_KEYS = ("kind", "metric", "type")
ALERT_KEYS = ("rule", "objective", "burn_rate", "severity")
ALERT_LINE_KEYS = ("kind", "name", "ts_ns") + ALERT_KEYS


class ValidationError(ValueError):
    """A telemetry file violated the exporter schema."""


def validate_trace(path: str) -> int:
    """Validate a Chrome trace file; returns the span-event count."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValidationError(f"{path}: missing traceEvents")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValidationError(f"{path}: traceEvents is not a list")
    spans = 0
    last_ts = float("-inf")
    span_traces: dict[str, str] = {}
    parent_refs: list[tuple[int, str, str]] = []
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValidationError(f"{path}: event {i} has no phase")
        if event["ph"] == "X":
            for key in SPAN_KEYS:
                if key not in event:
                    raise ValidationError(
                        f"{path}: span event {i} missing {key!r}"
                    )
            if event["ts"] < 0 or event["dur"] < 0:
                raise ValidationError(
                    f"{path}: span event {i} has negative time"
                )
            if event["ts"] < last_ts:
                raise ValidationError(
                    f"{path}: span event {i} starts before its "
                    f"predecessor ({event['ts']} < {last_ts} us)"
                )
            last_ts = event["ts"]
            args = event["args"]
            if "start_ns" not in args or "dur_ns" not in args:
                raise ValidationError(
                    f"{path}: span event {i} lacks exact-ns args"
                )
            traced = [k for k in ("trace_id", "span_id") if k in args]
            if "parent_id" in args and len(traced) < 2:
                raise ValidationError(
                    f"{path}: span event {i} has parent_id without a "
                    "trace_id/span_id pair"
                )
            if traced and len(traced) < 2:
                raise ValidationError(
                    f"{path}: span event {i} carries a partial trace "
                    "context (needs both trace_id and span_id)"
                )
            if traced:
                span_id = args["span_id"]
                if span_id in span_traces:
                    raise ValidationError(
                        f"{path}: span event {i} reuses span_id "
                        f"{span_id!r}"
                    )
                span_traces[span_id] = args["trace_id"]
                if "parent_id" in args:
                    parent_refs.append(
                        (i, args["parent_id"], args["trace_id"])
                    )
            spans += 1
        elif event["ph"] == "C":
            if "ts" not in event or event["ts"] < 0:
                raise ValidationError(
                    f"{path}: counter event {i} has a bad timestamp"
                )
        elif event["ph"] == "i":
            if "ts" not in event or event["ts"] < 0:
                raise ValidationError(
                    f"{path}: instant event {i} has a bad timestamp"
                )
            if "name" not in event or "args" not in event:
                raise ValidationError(
                    f"{path}: instant event {i} missing name/args"
                )
            if event.get("cat") == "alert":
                for key in ALERT_KEYS:
                    if key not in event["args"]:
                        raise ValidationError(
                            f"{path}: alert event {i} missing {key!r}"
                        )
    for i, parent_id, trace_id in parent_refs:
        if parent_id not in span_traces:
            raise ValidationError(
                f"{path}: span event {i} has dangling parent_id "
                f"{parent_id!r}"
            )
        if span_traces[parent_id] != trace_id:
            raise ValidationError(
                f"{path}: span event {i} is parented across traces "
                f"({parent_id!r})"
            )
    if spans == 0:
        raise ValidationError(f"{path}: no span events")
    return spans


def validate_metrics(path: str) -> int:
    """Validate a metrics JSONL file; returns the line count."""
    last_ts: dict[str, float] = {}
    lines = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: invalid JSON ({exc})"
                ) from exc
            kind = record.get("kind")
            if kind == "sample":
                for key in SAMPLE_KEYS:
                    if key not in record:
                        raise ValidationError(
                            f"{path}:{lineno}: sample missing {key!r}"
                        )
                metric = record["metric"]
                ts = float(record["ts_ns"])
                if ts < 0:
                    raise ValidationError(
                        f"{path}:{lineno}: negative timestamp"
                    )
                if ts < last_ts.get(metric, float("-inf")):
                    raise ValidationError(
                        f"{path}:{lineno}: {metric!r} timestamps not "
                        "monotonic"
                    )
                last_ts[metric] = ts
            elif kind == "summary":
                for key in SUMMARY_KEYS:
                    if key not in record:
                        raise ValidationError(
                            f"{path}:{lineno}: summary missing {key!r}"
                        )
            elif kind == "alert":
                for key in ALERT_LINE_KEYS:
                    if key not in record:
                        raise ValidationError(
                            f"{path}:{lineno}: alert missing {key!r}"
                        )
                if float(record["ts_ns"]) < 0:
                    raise ValidationError(
                        f"{path}:{lineno}: negative alert timestamp"
                    )
            else:
                raise ValidationError(
                    f"{path}:{lineno}: unknown kind {kind!r}"
                )
            lines += 1
    if lines == 0:
        raise ValidationError(f"{path}: no metric records")
    return lines


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: validate a trace file and/or a metrics file."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.telemetry.validate "
            "[trace.json] [metrics.jsonl]",
            file=sys.stderr,
        )
        return 2
    try:
        for path in argv:
            if path.endswith(".jsonl"):
                count = validate_metrics(path)
                print(f"{path}: OK ({count} metric records)")
            else:
                count = validate_trace(path)
                print(f"{path}: OK ({count} span events)")
    except ValidationError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
