"""Trace and metrics exporters (Perfetto + JSON-lines).

Two on-disk formats, both dependency-free:

* :func:`write_chrome_trace` — the Chrome trace-event format
  (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``chrome://tracing``. Span timestamps/durations are emitted in the
  microseconds the format mandates, but every event also carries the
  exact simulated nanoseconds in ``args`` (``start_ns``/``dur_ns``) so
  tooling never loses sub-microsecond precision. Counter/gauge series
  ride along as ``ph: "C"`` counter events.
* :func:`write_metrics_jsonl` — one JSON object per line: a ``sample``
  line per metric update (simulated timestamp + value) followed by one
  ``summary`` line per instrument.

:func:`summarize_metrics` renders the human-readable table the CLI
prints, reusing :func:`repro.core.report.format_metrics`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.recorder import NullRecorder, TelemetryRecorder

#: Metadata stamped into every trace file.
TRACE_PROCESS_NAME = "repro-simulated-pim"

#: Span ``track`` -> Chrome trace thread id. The hardware recorder clock
#: and the serving event-loop clock are different simulated timelines,
#: so their spans render on separate tracks.
TRACK_TIDS = {"sim": 1, "requests": 2, "repair": 3}

_TRACK_NAMES = {
    "sim": "simulated-clock",
    "requests": "requests (event-loop clock)",
    "repair": "repair (event-loop clock)",
}


def chrome_trace_events(
    recorder: "TelemetryRecorder | NullRecorder",
) -> list[dict]:
    """The recorder's spans and metric series as trace-event dicts."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": TRACE_PROCESS_NAME},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "simulated-clock"},
        },
    ]
    # finished_spans() is completion-ordered (children before parents);
    # emit start-ordered, longest-first, so file order is monotonic and
    # Perfetto nests enclosing spans naturally.
    ordered = sorted(
        (s for s in recorder.finished_spans() if s.end_ns is not None),
        key=lambda s: (s.start_ns, -s.duration_ns, s.depth),
    )
    tracks = {getattr(s, "track", "sim") for s in ordered}
    for track in sorted(tracks - {"sim"}):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": TRACK_TIDS.get(track, 9),
                "args": {"name": _TRACK_NAMES.get(track, track)},
            }
        )
    for span in ordered:
        args = dict(span.args)
        args["start_ns"] = span.start_ns
        args["dur_ns"] = span.duration_ns
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "default",
                "ph": "X",
                "ts": span.start_ns / 1e3,  # trace format wants us
                "dur": span.duration_ns / 1e3,
                "pid": 1,
                "tid": TRACK_TIDS.get(getattr(span, "track", "sim"), 9),
                "args": args,
            }
        )
    for instrument in recorder.metrics:
        if instrument.kind == "histogram":
            continue  # distributions have no counter-track rendering
        for ts_ns, value in instrument.samples:
            events.append(
                {
                    "name": instrument.display_name,
                    "cat": "metric",
                    "ph": "C",
                    "ts": ts_ns / 1e3,
                    "pid": 1,
                    "tid": 1,
                    "args": {"value": value},
                }
            )
    for record in getattr(recorder, "events", ()):
        events.append(
            {
                "name": record["name"],
                "cat": record["category"],
                "ph": "i",
                "ts": record["ts_ns"] / 1e3,
                "pid": 1,
                "tid": TRACK_TIDS["requests"],
                "s": "g",
                "args": {**record["args"], "ts_ns": record["ts_ns"]},
            }
        )
    return events


def write_chrome_trace(
    recorder: "TelemetryRecorder | NullRecorder", path_or_file
) -> int:
    """Write the Chrome/Perfetto trace file; returns the event count."""
    payload = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated (Quartz CPU ns + PIM wave ns)"},
    }
    _dump(payload, path_or_file)
    return len(payload["traceEvents"])


def metrics_jsonl_lines(
    recorder: "TelemetryRecorder | NullRecorder",
) -> list[str]:
    """The recorder's metrics as JSONL lines (samples then summaries).

    Labeled instruments carry a ``labels`` object; alert events emitted
    through :meth:`TelemetryRecorder.record_event` ride along as
    ``kind: "alert"`` lines after the summaries.
    """
    lines: list[str] = []
    for instrument in recorder.metrics:
        extra = {"labels": instrument.labels} if instrument.labels else {}
        for ts_ns, value in instrument.samples:
            lines.append(
                json.dumps(
                    {
                        "kind": "sample",
                        "metric": instrument.display_name,
                        "type": instrument.kind,
                        "ts_ns": ts_ns,
                        "value": value,
                        **extra,
                    },
                    sort_keys=True,
                )
            )
    for instrument in recorder.metrics:
        extra = {"labels": instrument.labels} if instrument.labels else {}
        exemplars = getattr(instrument, "exemplars", None)
        if exemplars:
            extra["exemplars"] = [
                {"value": v, "ts_ns": ts, "trace_id": tid}
                for v, ts, tid in sorted(exemplars, reverse=True)
            ]
        lines.append(
            json.dumps(
                {
                    "kind": "summary",
                    "metric": instrument.display_name,
                    "type": instrument.kind,
                    **instrument.summary(),
                    **extra,
                },
                sort_keys=True,
            )
        )
    for record in getattr(recorder, "events", ()):
        if record["category"] != "alert":
            continue
        lines.append(
            json.dumps(
                {
                    "kind": "alert",
                    "name": record["name"],
                    "ts_ns": record["ts_ns"],
                    **record["args"],
                },
                sort_keys=True,
            )
        )
    return lines


def write_metrics_jsonl(
    recorder: "TelemetryRecorder | NullRecorder", path_or_file
) -> int:
    """Write the JSONL metrics snapshot; returns the line count."""
    lines = metrics_jsonl_lines(recorder)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(lines)


def _prom_name(name: str) -> str:
    """A metric name sanitized to the Prometheus grammar."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + rendered + "}"


def prometheus_snapshot(
    recorder: "TelemetryRecorder | NullRecorder",
) -> str:
    """The registry as a Prometheus/OpenMetrics text snapshot.

    Counters render as ``_total`` series, gauges as-is, histograms as
    ``_count``/``_sum``/``_min``/``_max`` summaries. Histogram
    exemplars (trace_ids attached via ``observe(..., exemplar=)``)
    follow the ``_count`` line in OpenMetrics exemplar syntax, so a
    latency spike in a dashboard links straight to its trace.
    """
    grouped: dict[str, list] = {}
    for instrument in recorder.metrics:
        grouped.setdefault(instrument.name, []).append(instrument)
    lines: list[str] = []
    for name, instruments in grouped.items():
        base = _prom_name(name)
        kind = instruments[0].kind
        prom_type = {"counter": "counter", "gauge": "gauge"}.get(
            kind, "summary"
        )
        lines.append(f"# TYPE {base} {prom_type}")
        for instrument in instruments:
            labels = _prom_labels(instrument.labels)
            if kind == "counter":
                lines.append(f"{base}_total{labels} {instrument.value}")
            elif kind == "gauge":
                lines.append(f"{base}{labels} {instrument.value}")
            else:
                exemplars = sorted(instrument.exemplars, reverse=True)
                exemplar = ""
                if exemplars:
                    value, ts_ns, trace_id = exemplars[0]
                    exemplar = (
                        f' # {{trace_id="{trace_id}"}} {value} {ts_ns}'
                    )
                lines.append(
                    f"{base}_count{labels} {instrument.count}{exemplar}"
                )
                lines.append(f"{base}_sum{labels} {instrument.sum}")
                if instrument.count:
                    lines.append(f"{base}_min{labels} {instrument.min}")
                    lines.append(f"{base}_max{labels} {instrument.max}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_prometheus(
    recorder: "TelemetryRecorder | NullRecorder", path_or_file
) -> int:
    """Write the Prometheus snapshot; returns the series-line count."""
    text = prometheus_snapshot(recorder)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    return sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse a :func:`prometheus_snapshot` back into structured form.

    Returns ``{series_name: {"labels": {...}, "value": float,
    "exemplar": {...} | None}}``; raises ``ValueError`` on malformed
    lines so CI can assert the snapshot stays machine-readable.
    """
    series: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        body, exemplar = line, None
        if " # " in line:
            body, _, ex_text = line.partition(" # ")
            ex_parts = ex_text.split()
            if len(ex_parts) != 3 or not ex_parts[0].startswith("{"):
                raise ValueError(f"line {lineno}: malformed exemplar")
            exemplar = {
                "labels": _parse_label_block(ex_parts[0], lineno),
                "value": float(ex_parts[1]),
                "ts_ns": float(ex_parts[2]),
            }
        try:
            name_part, value_part = body.rsplit(" ", 1)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: no value") from exc
        labels: dict[str, str] = {}
        if "{" in name_part:
            name, _, label_text = name_part.partition("{")
            labels = _parse_label_block("{" + label_text, lineno)
            key = name_part
        else:
            name = name_part
            key = name
        series[key] = {
            "name": name,
            "labels": labels,
            "value": float(value_part),
            "exemplar": exemplar,
            "type": types.get(_strip_suffix(name)),
        }
    return series


def _strip_suffix(name: str) -> str:
    for suffix in ("_total", "_count", "_sum", "_min", "_max"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _parse_label_block(text: str, lineno: int) -> dict[str, str]:
    if not (text.startswith("{") and text.endswith("}")):
        raise ValueError(f"line {lineno}: malformed label block")
    inner = text[1:-1]
    labels: dict[str, str] = {}
    if not inner:
        return labels
    for part in inner.split(","):
        if "=" not in part:
            raise ValueError(f"line {lineno}: malformed label {part!r}")
        key, _, value = part.partition("=")
        labels[key] = value.strip('"')
    return labels


def summarize_metrics(recorder: "TelemetryRecorder | NullRecorder") -> str:
    """One fixed-width table over all instruments (CLI/bench output)."""
    from repro.core.report import format_metrics

    summaries = {
        instrument.display_name: dict(
            type=instrument.kind, **instrument.summary()
        )
        for instrument in recorder.metrics
    }
    return format_metrics(summaries)


def _dump(payload: dict, path_or_file) -> None:
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
