"""Trace and metrics exporters (Perfetto + JSON-lines).

Two on-disk formats, both dependency-free:

* :func:`write_chrome_trace` — the Chrome trace-event format
  (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``chrome://tracing``. Span timestamps/durations are emitted in the
  microseconds the format mandates, but every event also carries the
  exact simulated nanoseconds in ``args`` (``start_ns``/``dur_ns``) so
  tooling never loses sub-microsecond precision. Counter/gauge series
  ride along as ``ph: "C"`` counter events.
* :func:`write_metrics_jsonl` — one JSON object per line: a ``sample``
  line per metric update (simulated timestamp + value) followed by one
  ``summary`` line per instrument.

:func:`summarize_metrics` renders the human-readable table the CLI
prints, reusing :func:`repro.core.report.format_metrics`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.recorder import NullRecorder, TelemetryRecorder

#: Metadata stamped into every trace file.
TRACE_PROCESS_NAME = "repro-simulated-pim"


def chrome_trace_events(
    recorder: "TelemetryRecorder | NullRecorder",
) -> list[dict]:
    """The recorder's spans and metric series as trace-event dicts."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": TRACE_PROCESS_NAME},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "simulated-clock"},
        },
    ]
    # finished_spans() is completion-ordered (children before parents);
    # emit start-ordered, longest-first, so file order is monotonic and
    # Perfetto nests enclosing spans naturally.
    ordered = sorted(
        (s for s in recorder.finished_spans() if s.end_ns is not None),
        key=lambda s: (s.start_ns, -s.duration_ns, s.depth),
    )
    for span in ordered:
        args = dict(span.args)
        args["start_ns"] = span.start_ns
        args["dur_ns"] = span.duration_ns
        events.append(
            {
                "name": span.name,
                "cat": span.category or "default",
                "ph": "X",
                "ts": span.start_ns / 1e3,  # trace format wants us
                "dur": span.duration_ns / 1e3,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    for instrument in recorder.metrics:
        if instrument.kind == "histogram":
            continue  # distributions have no counter-track rendering
        for ts_ns, value in instrument.samples:
            events.append(
                {
                    "name": instrument.name,
                    "cat": "metric",
                    "ph": "C",
                    "ts": ts_ns / 1e3,
                    "pid": 1,
                    "tid": 1,
                    "args": {"value": value},
                }
            )
    return events


def write_chrome_trace(
    recorder: "TelemetryRecorder | NullRecorder", path_or_file
) -> int:
    """Write the Chrome/Perfetto trace file; returns the event count."""
    payload = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated (Quartz CPU ns + PIM wave ns)"},
    }
    _dump(payload, path_or_file)
    return len(payload["traceEvents"])


def metrics_jsonl_lines(
    recorder: "TelemetryRecorder | NullRecorder",
) -> list[str]:
    """The recorder's metrics as JSONL lines (samples then summaries)."""
    lines: list[str] = []
    for instrument in recorder.metrics:
        for ts_ns, value in instrument.samples:
            lines.append(
                json.dumps(
                    {
                        "kind": "sample",
                        "metric": instrument.name,
                        "type": instrument.kind,
                        "ts_ns": ts_ns,
                        "value": value,
                    },
                    sort_keys=True,
                )
            )
    for instrument in recorder.metrics:
        lines.append(
            json.dumps(
                {
                    "kind": "summary",
                    "metric": instrument.name,
                    "type": instrument.kind,
                    **instrument.summary(),
                },
                sort_keys=True,
            )
        )
    return lines


def write_metrics_jsonl(
    recorder: "TelemetryRecorder | NullRecorder", path_or_file
) -> int:
    """Write the JSONL metrics snapshot; returns the line count."""
    lines = metrics_jsonl_lines(recorder)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(lines)


def summarize_metrics(recorder: "TelemetryRecorder | NullRecorder") -> str:
    """One fixed-width table over all instruments (CLI/bench output)."""
    from repro.core.report import format_metrics

    summaries = {
        instrument.name: dict(
            type=instrument.kind, **instrument.summary()
        )
        for instrument in recorder.metrics
    }
    return format_metrics(summaries)


def _dump(payload: dict, path_or_file) -> None:
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
