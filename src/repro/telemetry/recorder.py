"""Span tracer on the simulated clock, plus the active-recorder runtime.

The tracer answers *where inside a run* simulated time goes. Its clock
is not wall time: instrumented code advances it explicitly — the PIM
array by each wave's NVSim latency, the profiler by each query's Quartz
CPU time — so span timestamps land on the same axis the paper's figures
use. Spans nest (algorithm -> query -> bound stage -> PIM dispatch ->
wave) through an explicit stack; closing a span records it for export.

Zero overhead by default: the module-level active recorder starts as
:data:`NULL_RECORDER`, whose ``enabled`` flag is ``False``. Hot paths
guard instrumentation with ``if tele.enabled:`` so a disabled run
allocates no spans, no samples, nothing — tier-1 timings and golden
regressions are untouched (asserted by
``tests/telemetry/test_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.telemetry.context import TraceContext
from repro.telemetry.metrics import MetricsRegistry


class SimulatedClock:
    """A monotonic simulated-time source (nanoseconds).

    Time only moves when instrumented code :meth:`advance`\\ s it; the
    recorder stamps spans and metric samples with :attr:`now`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0

    def advance(self, ns: float) -> float:
        """Move the clock forward; returns the new time."""
        if ns < 0:
            raise ValueError("simulated time only moves forward")
        self.now += ns
        return self.now

    def __call__(self) -> float:
        return self.now


@dataclass
class Span:
    """One named interval on the simulated clock.

    Trace fields are ``None`` for standalone spans (the PR-2 behaviour);
    spans opened under an installed :class:`TraceContext` carry the
    causal identifiers the exporters surface for tree reconstruction.
    ``track`` selects the export timeline: ``"sim"`` spans sit on the
    hardware recorder clock, ``"requests"``/``"repair"`` spans carry
    explicit event-loop times stamped via ``record_span``.
    """

    name: str
    category: str
    start_ns: float
    end_ns: float | None = None
    depth: int = 0
    args: dict = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    track: str = "sim"

    @property
    def duration_ns(self) -> float:
        """Span length (0 while still open)."""
        if self.end_ns is None:
            return 0.0
        return self.end_ns - self.start_ns


class TelemetryRecorder:
    """Active recorder: span stack + metrics registry on one clock."""

    enabled = True

    def __init__(self) -> None:
        self.clock = SimulatedClock()
        self.metrics = MetricsRegistry(clock=self.clock)
        #: Finished spans in completion order.
        self.spans: list[Span] = []
        #: Instant events (alerts etc.) in emission order.
        self.events: list[dict] = []
        self._stack: list[Span] = []
        self._ctx: list[TraceContext] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def advance(self, ns: float) -> float:
        """Advance the simulated clock (see :class:`SimulatedClock`)."""
        return self.clock.advance(ns)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin_span(self, name: str, category: str = "", **args) -> Span:
        """Open a nested span at the current simulated time.

        When the enclosing span carries a trace identity, or a
        :class:`TraceContext` is installed via :meth:`trace`, the new
        span inherits the trace and is parented under the nearest
        traced ancestor (falling back to the context's root span).
        """
        span = Span(
            name=name,
            category=category,
            start_ns=self.clock.now,
            depth=len(self._stack),
            args=args,
        )
        parent = self._stack[-1] if self._stack else None
        if parent is not None and parent.trace_id is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            span.span_id = self.mint_id("s")
        elif self._ctx:
            ctx = self._ctx[-1]
            span.trace_id = ctx.trace_id
            span.parent_id = ctx.span_id
            span.span_id = self.mint_id("s")
        self._stack.append(span)
        return span

    def end_span(self, **args) -> Span:
        """Close the innermost open span at the current simulated time."""
        if not self._stack:
            raise RuntimeError("end_span() with no open span")
        span = self._stack.pop()
        span.end_ns = self.clock.now
        if args:
            span.args.update(args)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "", **args) -> Iterator[Span]:
        """Context manager pairing :meth:`begin_span`/:meth:`end_span`."""
        opened = self.begin_span(name, category, **args)
        try:
            yield opened
        finally:
            self.end_span()

    @property
    def open_spans(self) -> int:
        """Depth of the current span stack."""
        return len(self._stack)

    def finished_spans(self, category: str | None = None) -> list[Span]:
        """Completed spans, optionally filtered by category."""
        if category is None:
            return list(self.spans)
        return [s for s in self.spans if s.category == category]

    def span_time_ns(self, category: str) -> float:
        """Summed duration of all finished spans in one category."""
        return sum(s.duration_ns for s in self.spans if s.category == category)

    # ------------------------------------------------------------------
    # trace contexts
    # ------------------------------------------------------------------
    def mint_id(self, prefix: str = "s") -> str:
        """A deterministic, process-unique identifier."""
        self._next_id += 1
        return prefix + str(self._next_id)

    def new_trace(self, **baggage) -> TraceContext:
        """Mint a fresh trace (one per admitted request)."""
        return TraceContext(
            trace_id=self.mint_id("t"),
            span_id=self.mint_id("s"),
            baggage=baggage,
        )

    @property
    def current_context(self) -> TraceContext | None:
        """The innermost installed trace context, if any."""
        return self._ctx[-1] if self._ctx else None

    @contextmanager
    def trace(self, ctx: TraceContext | None) -> Iterator[TraceContext | None]:
        """Install ``ctx`` so spans opened inside join its trace.

        ``None`` is accepted and is a no-op, so call sites need no
        branching when no request context is available.
        """
        if ctx is None:
            yield None
            return
        self._ctx.append(ctx)
        try:
            yield ctx
        finally:
            self._ctx.pop()

    def record_span(
        self,
        name: str,
        category: str,
        start_ns: float,
        end_ns: float,
        *,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
        track: str = "requests",
        depth: int = 0,
        **args,
    ) -> Span:
        """Record a finished span with explicit timestamps.

        Unlike :meth:`begin_span`/:meth:`end_span` this does not touch
        the recorder clock — the serving event loop uses it to emit
        request trees and repair actions whose times live on *its*
        clock, not the cumulative hardware clock.
        """
        if end_ns < start_ns:
            raise ValueError(f"span {name!r} ends before it starts")
        if span_id is None and trace_id is not None:
            span_id = self.mint_id("s")
        span = Span(
            name,
            category,
            start_ns,
            end_ns,
            depth,
            args,
            trace_id,
            span_id,
            parent_id,
            track,
        )
        self.spans.append(span)
        return span

    def record_event(
        self, name: str, ts_ns: float | None = None, category: str = "event", **args
    ) -> dict:
        """Record an instant event (e.g. a structured SLO alert)."""
        event = {
            "name": name,
            "category": category,
            "ts_ns": self.clock.now if ts_ns is None else float(ts_ns),
            "args": args,
        }
        self.events.append(event)
        return event


class _NullSpan:
    """The no-op span/context-manager the null recorder hands out."""

    __slots__ = ()
    name = ""
    category = ""
    start_ns = 0.0
    end_ns = 0.0
    duration_ns = 0.0
    depth = 0
    args: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    kind = "null"
    name = ""
    display_name = ""
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    samples: list = []
    labels: dict = {}
    exemplars: list = []

    def add(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        return None

    def summary(self) -> dict[str, float]:
        return {}


class _NullMetrics:
    """Registry stand-in that always returns the shared null instrument."""

    __slots__ = ()

    def counter(self, name: str, labels: dict | None = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labels: dict | None = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labels: dict | None = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Disabled recorder: every operation is a shared-object no-op.

    Hot paths should still guard with ``if tele.enabled:`` so the
    disabled path performs zero allocations; the null methods exist so
    *cold* call sites (exporters, summaries) need no branching.
    """

    enabled = False
    spans: list = []
    events: list = []
    now_ns = 0.0
    open_spans = 0
    current_context = None

    def __init__(self) -> None:
        self.metrics = _NULL_METRICS

    def advance(self, ns: float) -> float:
        return 0.0

    def mint_id(self, prefix: str = "s") -> str:
        return ""

    def new_trace(self, **baggage) -> TraceContext:
        return _NULL_CONTEXT

    def trace(self, ctx=None) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, category: str, start_ns: float,
                    end_ns: float, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def record_event(self, name: str, ts_ns: float | None = None,
                     category: str = "event", **args) -> dict:
        return {}

    def begin_span(self, name: str, category: str = "", **args) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, **args) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, category: str = "", **args) -> _NullSpan:
        return _NULL_SPAN

    def finished_spans(self, category: str | None = None) -> list:
        return []

    def span_time_ns(self, category: str) -> float:
        return 0.0


_NULL_METRICS = _NullMetrics()
_NULL_CONTEXT = TraceContext(trace_id="", span_id="")

#: The process-wide disabled recorder (the default active recorder).
NULL_RECORDER = NullRecorder()

_active: TelemetryRecorder | NullRecorder = NULL_RECORDER


def get_recorder() -> TelemetryRecorder | NullRecorder:
    """The recorder instrumentation sites report to."""
    return _active


def set_recorder(
    recorder: TelemetryRecorder | NullRecorder | None,
) -> TelemetryRecorder | NullRecorder:
    """Install the active recorder (``None`` restores the null one).

    Returns the previously active recorder so callers can restore it.
    """
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def telemetry_session(
    recorder: TelemetryRecorder | None = None,
) -> Iterator[TelemetryRecorder]:
    """Scope a recorder as active; always restores the previous one.

    >>> with telemetry_session() as tele:
    ...     run_workload()
    >>> write_chrome_trace(tele, "run.trace.json")
    """
    active = recorder if recorder is not None else TelemetryRecorder()
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)
