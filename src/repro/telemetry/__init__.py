"""Structured telemetry for the simulated PIM stack.

A dependency-free observability subsystem with three pieces:

* a **span tracer** keyed to the *simulated* clock (Quartz CPU ns +
  PIM wave ns) with nested spans for
  algorithm -> query -> bound stage -> PIM dispatch -> wave;
* a **metrics registry** (counters, gauges, histograms) threaded
  through the hot layers (waves, batches, buffer occupancy, scheduler
  flushes, prune ratios);
* **exporters**: Chrome trace-event files for Perfetto /
  ``chrome://tracing`` and JSON-lines metrics snapshots, plus a schema
  validator CI runs against smoke workloads.

Telemetry is off by default — the active recorder is
:data:`NULL_RECORDER` and every instrumentation site guards with
``if tele.enabled:``, so disabled runs allocate nothing on the wave hot
path. Enable it for a scope with :func:`telemetry_session`::

    from repro.telemetry import telemetry_session, write_chrome_trace

    with telemetry_session() as tele:
        accelerator.accelerate_knn("FNN", data, queries, k=10)
    write_chrome_trace(tele, "run.trace.json")

or pass ``--trace-out`` / ``--metrics-out`` to the CLI.
"""

from repro.telemetry.context import TraceContext
from repro.telemetry.export import (
    chrome_trace_events,
    metrics_jsonl_lines,
    parse_prometheus,
    prometheus_snapshot,
    summarize_metrics,
    write_chrome_trace,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    NullRecorder,
    SimulatedClock,
    Span,
    TelemetryRecorder,
    get_recorder,
    set_recorder,
    telemetry_session,
)

__all__ = [
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "SimulatedClock",
    "Span",
    "TelemetryRecorder",
    "TraceContext",
    "chrome_trace_events",
    "get_recorder",
    "metrics_jsonl_lines",
    "parse_prometheus",
    "prometheus_snapshot",
    "set_recorder",
    "summarize_metrics",
    "telemetry_session",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "write_prometheus",
]
