"""Crash-consistent checkpoint/restore for a sharded PIM service.

A checkpoint is one ``.npz`` container holding everything needed to
rebuild a :class:`~repro.serving.sharding.ShardManager` bit-identically
after a full-process crash:

* the source dataset (float64) and the placement's row→chunk map;
* the fitted quantizer statistics (per-dimension min/range, alpha) —
  the *global* quantizer is what makes answers placement-invariant, so
  it must come back exactly, not be refitted;
* the quantized integer operands, kept as the integrity oracle: restore
  re-quantizes the dataset and refuses to serve unless the operands
  match byte for byte;
* the manager's construction parameters (replication, failure-domain
  topology, spread flag, substrates, routing policy, …);
* the mutable state a rebuilt constructor cannot recreate: the
  re-replication log (replayed verbatim so shard row layouts come back
  byte-identical), per-shard endurance write counters, the health
  tracker's breaker/quarantine/ejection state, and the recorded
  placement violations.

Write protocol (crash consistency)
----------------------------------
The container is written to ``<path>.tmp``, flushed and fsynced, then
atomically renamed over ``<path>`` with ``os.replace``. A crash at any
point leaves either the complete previous checkpoint or the complete
new one — never a torn file. Every array is covered by a SHA-256 digest
recorded in the manifest, and the manifest bytes are covered by their
own digest stored alongside, so silent truncation or bit-rot surfaces
as :class:`~repro.errors.CheckpointError` at restore time rather than
as wrong answers at serve time.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile

import numpy as np

from repro.errors import CheckpointError
from repro.hardware.config import FailureDomainTopology

#: Bump when the container layout changes incompatibly.
CHECKPOINT_VERSION = 1

_REQUIRED_ARRAYS = ("manifest", "manifest_sha", "data", "assignments")


def _digest(arr: np.ndarray) -> str:
    """SHA-256 over an array's dtype, shape and raw bytes."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(f"{arr.dtype.str}|{arr.shape}|".encode("utf-8"))
    h.update(arr.tobytes())
    return h.hexdigest()


def _endurance_tracker(shard):
    if shard.controller is not None:
        return shard.controller.pim.endurance
    if shard.engine is not None:
        return shard.engine.pim.endurance
    return None


def write_checkpoint(
    manager, path: str, *, t_ns: float | None = None
) -> dict:
    """Snapshot ``manager`` to ``path`` (atomic write-then-rename).

    ``t_ns`` stamps the simulated time of the snapshot (defaults to the
    manager's clock); it becomes the recovery point the DR bench checks
    against. Returns the manifest that was written.
    """
    if manager.chunked:
        raise CheckpointError(
            "checkpointing needs resident programming; the chunked "
            "engine re-programs crossbars per chunk"
        )
    t = float(manager._clock_ns if t_ns is None else t_ns)
    qstate = manager.quantizer.export_state()
    qv = manager.quantizer.quantize(manager.source_data)
    arrays: dict[str, np.ndarray] = {
        "data": np.ascontiguousarray(
            manager.source_data, dtype=np.float64
        ),
        "assignments": np.ascontiguousarray(
            manager.placement.assignments, dtype=np.int64
        ),
        "qint": np.ascontiguousarray(qv.integers, dtype=np.int64),
    }
    if qstate["fitted"]:
        arrays["qmin"] = qstate["min"]
        arrays["qrange"] = qstate["range"]
    endurance = []
    for shard in manager.shards:
        tracker = _endurance_tracker(shard)
        endurance.append(
            {str(k): int(v) for k, v in tracker.writes.items()}
            if tracker is not None
            else {}
        )
    manifest = {
        "version": CHECKPOINT_VERSION,
        "t_ns": t,
        "n_rows": manager.n_rows,
        "dims": manager.dims,
        "n_shards": manager.n_shards,
        "placement_kind": manager.placement.kind,
        "replication": manager.replication,
        "topology": (
            manager.topology.describe()
            if manager.topology is not None
            else None
        ),
        "spread": manager.spread,
        "substrates": list(manager.substrates),
        "route": manager.route,
        "reference": manager.reference,
        "spare_crossbars": manager.spare_crossbars,
        "verify": manager.verify,
        "quantizer": {
            "alpha": qstate["alpha"],
            "assume_normalized": qstate["assume_normalized"],
            "fitted": qstate["fitted"],
        },
        "replica_log": [[int(c), int(s)] for c, s in manager.replica_log],
        "placement_violations": [
            dict(v) for v in manager.placement_violations
        ],
        "endurance": endurance,
        "health": manager.health.export_state(),
        "hashes": {name: _digest(arr) for name, arr in arrays.items()},
    }
    manifest_bytes = np.frombuffer(
        json.dumps(manifest, sort_keys=True).encode("utf-8"),
        dtype=np.uint8,
    )
    manifest_sha = np.frombuffer(
        _digest(manifest_bytes).encode("ascii"), dtype=np.uint8
    )
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                manifest=manifest_bytes,
                manifest_sha=manifest_sha,
                **arrays,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    manager.last_checkpoint_ns = t
    return manifest


def _load_container(path: str) -> dict[str, np.ndarray]:
    try:
        with np.load(path) as payload:
            names = set(payload.files)
            missing = [n for n in _REQUIRED_ARRAYS if n not in names]
            if missing:
                raise CheckpointError(
                    f"checkpoint {path} is missing arrays {missing}"
                )
            return {name: payload[name] for name in payload.files}
    except CheckpointError:
        raise
    except (
        OSError,
        ValueError,
        KeyError,
        io.UnsupportedOperation,
        zipfile.BadZipFile,
    ) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable or truncated: {exc}"
        ) from exc


def read_manifest(path: str) -> dict:
    """Load and integrity-check just the manifest of a checkpoint."""
    arrays = _load_container(path)
    return _verify_arrays(path, arrays)


def _verify_arrays(path: str, arrays: dict[str, np.ndarray]) -> dict:
    manifest_bytes = arrays["manifest"]
    recorded_sha = bytes(arrays["manifest_sha"]).decode("ascii")
    if _digest(manifest_bytes) != recorded_sha:
        raise CheckpointError(
            f"checkpoint {path}: manifest hash mismatch (corrupt or "
            "tampered manifest)"
        )
    try:
        manifest = json.loads(bytes(manifest_bytes).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path}: manifest is not valid JSON: {exc}"
        ) from exc
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path}: unsupported version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    hashes = manifest.get("hashes", {})
    for name, expected in hashes.items():
        if name not in arrays:
            raise CheckpointError(
                f"checkpoint {path}: manifest names array {name!r} "
                "but the container does not hold it"
            )
        actual = _digest(arrays[name])
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {path}: array {name!r} hash mismatch "
                f"(expected {expected[:12]}…, got {actual[:12]}…)"
            )
    return manifest


def verify_checkpoint(path: str) -> dict:
    """Full integrity pass over a checkpoint without restoring it.

    Returns a report: version, simulated snapshot time, array names
    with byte sizes, and the verified hash count. Raises
    :class:`~repro.errors.CheckpointError` on any mismatch.
    """
    arrays = _load_container(path)
    manifest = _verify_arrays(path, arrays)
    return {
        "path": path,
        "version": manifest["version"],
        "t_ns": manifest["t_ns"],
        "n_rows": manifest["n_rows"],
        "n_shards": manifest["n_shards"],
        "arrays": {
            name: int(arr.nbytes) for name, arr in arrays.items()
        },
        "hashes_verified": len(manifest.get("hashes", {})),
    }


def restore_manager(
    path: str,
    *,
    hardware=None,
    fault_plan=None,
    recovery=None,
    restore_health: bool = True,
):
    """Rebuild a :class:`ShardManager` from a checkpoint, bit-identically.

    Runtime objects that cannot (or must not) be serialized are passed
    by the caller: ``hardware`` (platform config), ``fault_plan`` (a
    restored service usually starts under a *new* fault schedule, or
    none) and ``recovery`` (policy knobs). ``restore_health=False``
    starts with a clean health slate — e.g. when the outage that forced
    the restore also repaired the fleet.

    The restore path proves its own fidelity: after rebuilding the
    quantizer from the checkpointed statistics it re-quantizes the
    dataset and compares the operands against the checkpointed ones
    byte for byte, raising :class:`~repro.errors.CheckpointError` on
    any difference. The re-replication log is then replayed in order,
    so every shard's row layout (and therefore every wave) matches the
    pre-crash service exactly.
    """
    from repro.serving.sharding import ShardManager, ShardPlacement
    from repro.similarity.quantization import Quantizer

    arrays = _load_container(path)
    manifest = _verify_arrays(path, arrays)
    qmeta = manifest["quantizer"]
    qstate = {
        "alpha": qmeta["alpha"],
        "assume_normalized": qmeta["assume_normalized"],
        "fitted": qmeta["fitted"],
    }
    if qmeta["fitted"]:
        qstate["min"] = arrays["qmin"]
        qstate["range"] = arrays["qrange"]
    quantizer = Quantizer.from_state(qstate)
    data = arrays["data"]
    if qmeta["fitted"] and "qint" in arrays:
        requantized = quantizer.quantize(data).integers
        if not np.array_equal(requantized, arrays["qint"]):
            raise CheckpointError(
                f"checkpoint {path}: re-quantized operands differ from "
                "the checkpointed ones — quantizer state and data are "
                "inconsistent"
            )
    placement = ShardPlacement(
        n_shards=int(manifest["n_shards"]),
        assignments=np.ascontiguousarray(
            arrays["assignments"], dtype=np.int64
        ),
        kind=manifest["placement_kind"],
    )
    topology = (
        FailureDomainTopology.from_dict(manifest["topology"])
        if manifest["topology"] is not None
        else None
    )
    manager = ShardManager(
        data,
        placement=placement,
        hardware=hardware,
        quantizer=quantizer,
        replication=int(manifest["replication"]),
        fault_plan=fault_plan,
        recovery=recovery,
        verify=bool(manifest["verify"]),
        spare_crossbars=int(manifest["spare_crossbars"]),
        reference=bool(manifest["reference"]),
        substrates=list(manifest["substrates"]),
        route=manifest["route"],
        topology=topology,
        spread=bool(manifest["spread"]),
    )
    for chunk, target in manifest["replica_log"]:
        manager.add_replica(int(chunk), int(target))
    if manager.replica_log != [
        (int(c), int(s)) for c, s in manifest["replica_log"]
    ]:
        raise CheckpointError(
            f"checkpoint {path}: replica-log replay diverged from the "
            "recorded log"
        )
    # the replay may have re-recorded violations add_replica saw the
    # first time; the checkpointed list is the authoritative history
    manager.placement_violations = [
        dict(v) for v in manifest["placement_violations"]
    ]
    for shard, writes in zip(manager.shards, manifest["endurance"]):
        tracker = _endurance_tracker(shard)
        if tracker is not None:
            tracker.writes = {int(k): int(v) for k, v in writes.items()}
    if restore_health:
        manager.health.restore_state(manifest["health"])
    manager.last_checkpoint_ns = float(manifest["t_ns"])
    return manager
