"""PIM memory management (paper Section V-C, Theorem 4).

The PIM array holds a fixed number of crossbars; re-programming them per
dataset chunk would wear the ReRAM out (Table 1 endurance), so instead
the dataset is *compressed*: the bound is computed on ``s``-dimensional
summaries with the largest ``s`` that fits, because larger ``s`` means a
tighter bound. This module solves that maximisation for the two bound
families the paper uses:

* :func:`choose_compressed_dims` — generic Theorem 4: the largest ``s``
  (optionally restricted to candidates, e.g. divisors of ``d``) such
  that an ``N x (s * vectors_per_dim)`` matrix fits;
* :func:`choose_fnn_segments` — the LB_PIM-FNN case, where each object
  programs *two* ``s``-vectors (means and stds) and ``s`` must divide
  ``d`` so segments have equal length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.hardware.config import HBMPIMConfig, PIMArrayConfig
from repro.hardware.mapper import fits as crossbar_fits
from repro.hardware.mapper import max_dimensionality
from repro.similarity.segments import equal_segment_counts


def fits(n_vectors: int, dims: int, config) -> bool:
    """Capacity test dispatching on the substrate config type.

    Theorem 4's solvers are substrate-agnostic once the feasibility
    predicate is: the crossbar array checks the crossbar budget, an
    HBM-PIM stack checks the per-bank row budget.
    """
    if isinstance(config, HBMPIMConfig):
        from repro.hardware.banked_memory import plan_bank_layout

        try:
            plan_bank_layout(n_vectors, dims, config)
        except CapacityError:
            return False
        return True
    return crossbar_fits(n_vectors, dims, config)


def _budget_label(config) -> str:
    if isinstance(config, HBMPIMConfig):
        return f"{config.total_banks} HBM-PIM banks"
    return f"{config.num_crossbars} crossbars"


@dataclass(frozen=True)
class CompressionPlan:
    """Outcome of the Theorem 4 solver."""

    original_dims: int
    compressed_dims: int
    n_vectors: int

    @property
    def compression_ratio(self) -> float:
        """``d / s`` — how much the representation shrank."""
        return self.original_dims / self.compressed_dims

    @property
    def is_lossless(self) -> bool:
        """True when the full dimensionality fits (no compression)."""
        return self.compressed_dims >= self.original_dims


def choose_compressed_dims(
    n_vectors: int,
    dims: int,
    config: PIMArrayConfig,
    candidates: list[int] | None = None,
    dims_per_object: int = 1,
) -> CompressionPlan:
    """Theorem 4: maximise ``s`` subject to the crossbar budget.

    Parameters
    ----------
    n_vectors:
        Dataset cardinality ``N``.
    dims:
        Original dimensionality ``d`` (the ceiling for ``s``).
    config:
        The PIM array to fit into.
    candidates:
        Optional candidate values for ``s`` (e.g. divisors of ``d``).
    dims_per_object:
        How many ``s``-vectors each object programs (2 for LB_PIM-FNN:
        means and stds).

    Raises
    ------
    CapacityError
        When no candidate fits.
    """
    if candidates is None:
        usable = list(range(1, dims + 1))
    else:
        usable = [s for s in candidates if 1 <= s <= dims]
    feasible = [
        s for s in usable if fits(n_vectors, s * dims_per_object, config)
    ]
    if not feasible:
        raise CapacityError(
            f"no dimensionality in 1..{dims} fits {n_vectors} vectors on "
            f"{_budget_label(config)}"
        )
    return CompressionPlan(
        original_dims=dims,
        compressed_dims=max(feasible),
        n_vectors=n_vectors,
    )


def choose_fnn_segments(
    n_vectors: int, dims: int, config: PIMArrayConfig
) -> int:
    """Segment count ``s`` for LB_PIM-FNN (Theorem 4 + equal segments).

    Each object programs a concatenated ``2s``-vector (floored segment
    means and stds); ``s`` must divide ``d``.
    """
    plan = choose_compressed_dims(
        n_vectors,
        dims,
        config,
        candidates=equal_segment_counts(dims),
        dims_per_object=2,
    )
    return plan.compressed_dims


def choose_full_dims(
    n_vectors: int, dims: int, config: PIMArrayConfig
) -> CompressionPlan:
    """Compression plan for bounds programming raw quantized vectors
    (LB_PIM-ED and the CS/PCC upper bounds): one ``s``-vector per object.

    When ``s < d`` callers should fall back to a segment-summary bound
    (raw coordinate truncation is not distance-preserving), so this
    function is mostly used to *check* whether the full dataset fits.
    """
    return choose_compressed_dims(n_vectors, dims, config)


def max_vectors_at_dims(dims: int, config: PIMArrayConfig) -> int:
    """Largest dataset cardinality that fits at a given dimensionality.

    The dual of Theorem 4, useful for sizing experiments: binary-search
    the largest ``N`` with ``fits(N, dims)``.
    """
    lo, hi = 1, 1
    while fits(hi, dims, config):
        lo, hi = hi, hi * 2
        if hi > 10**12:
            return hi
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if fits(mid, dims, config):
            lo = mid
        else:
            hi = mid
    if lo == 1 and not fits(1, dims, config):
        raise CapacityError(
            f"not even one {dims}-dimensional vector fits the PIM array"
        )
    return lo


__all__ = [
    "CompressionPlan",
    "choose_compressed_dims",
    "choose_fnn_segments",
    "choose_full_dims",
    "max_dimensionality",
    "max_vectors_at_dims",
]
