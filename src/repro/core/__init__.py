"""The paper's framework: profiling, planning, memory management, facade.

* :mod:`repro.core.profiler` — Section IV profiling + Eq. 2 PIM-oracle;
* :mod:`repro.core.planner` — Section V-D execution-plan optimization;
* :mod:`repro.core.memory_manager` — Theorem 4 capacity solver;
* :mod:`repro.core.framework` — :class:`PIMAccelerator`, the end-to-end
  profile -> offload -> verify pipeline;
* :mod:`repro.core.report` — text rendering for the bench harness.
"""

from repro.core.framework import (
    MIN_PROMISING_ORACLE_SPEEDUP,
    AccelerationReport,
    PIMAccelerator,
)
from repro.core.memory_manager import (
    CompressionPlan,
    choose_compressed_dims,
    choose_fnn_segments,
    choose_full_dims,
    max_vectors_at_dims,
)
from repro.core.planner import (
    BatchScheduler,
    BatchSchedulerStats,
    BatchTicket,
    ExecutionPlanner,
    PlanCandidate,
    optimize_fnn_plan,
    standalone_pruning_ratios,
)
from repro.core.profiler import AlgorithmProfile, profile_kmeans, profile_knn
from repro.core.report import (
    format_batch_stats,
    format_fractions,
    format_speedup,
    format_table,
    format_time_ms,
    speedup,
)

__all__ = [
    "AccelerationReport",
    "AlgorithmProfile",
    "BatchScheduler",
    "BatchSchedulerStats",
    "BatchTicket",
    "CompressionPlan",
    "ExecutionPlanner",
    "MIN_PROMISING_ORACLE_SPEEDUP",
    "PIMAccelerator",
    "PlanCandidate",
    "choose_compressed_dims",
    "choose_fnn_segments",
    "choose_full_dims",
    "format_batch_stats",
    "format_fractions",
    "format_speedup",
    "format_table",
    "format_time_ms",
    "max_vectors_at_dims",
    "optimize_fnn_plan",
    "profile_kmeans",
    "profile_knn",
    "speedup",
    "standalone_pruning_ratios",
]
