"""Algorithm profiling (paper Section IV).

Given an algorithm run's event counters, the profiler produces the three
views of the paper's motivating analysis:

* **hardware-component breakdown** (Fig. 5) — shares of T_c, T_cache,
  T_ALU, T_Br, T_Fe per Eq. 1;
* **function breakdown** (Fig. 6) — shares per similarity/bound function;
* **PIM-oracle estimate** (Eq. 2, Fig. 7) — total time minus the
  offloadable buckets, the floor of any PIM implementation.

Convenience drivers run kNN and k-means workloads end-to-end and return
an :class:`AlgorithmProfile` with simulated times on the appropriate
platform. PIM-optimized algorithms add their wave time on top of the
Quartz CPU time, exactly like the paper sums NVSim and Quartz outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cost.counters import PerfCounters
from repro.cost.model import ComponentBreakdown, CostModel, combined_time_ns
from repro.hardware.config import HardwareConfig, baseline_platform
from repro.mining.kmeans.base import KMeansAlgorithm
from repro.mining.knn.base import KNNAlgorithm
from repro.telemetry import get_recorder


@dataclass
class AlgorithmProfile:
    """Profiling outcome of one algorithm on one workload."""

    name: str
    counters: PerfCounters
    components: ComponentBreakdown
    function_times_ns: dict[str, float]
    cpu_time_ns: float
    pim_time_ns: float
    offloadable: tuple[str, ...]
    pim_oracle_ns: float
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total_time_ns(self) -> float:
        """End-to-end simulated time (CPU + PIM)."""
        return combined_time_ns(self.cpu_time_ns, self.pim_time_ns)

    @property
    def total_time_ms(self) -> float:
        """Total time in milliseconds (the unit of the paper's figures)."""
        return self.total_time_ns / 1e6

    def component_fractions(self) -> dict[str, float]:
        """Fig. 5 series."""
        return self.components.fractions()

    def function_fractions(self) -> dict[str, float]:
        """Fig. 6 series."""
        total = sum(self.function_times_ns.values())
        if total <= 0:
            return {k: 0.0 for k in self.function_times_ns}
        return {k: v / total for k, v in self.function_times_ns.items()}

    @property
    def oracle_speedup(self) -> float:
        """T_total / T_PIM-oracle — the ideal gain of Eq. 2.

        Uses :attr:`total_time_ns` (CPU + PIM), matching the docstring:
        for baselines the two coincide (``pim_time_ns == 0``), but a
        profile of a PIM variant must count its wave time too.
        """
        if self.pim_oracle_ns <= 0:
            return float("inf")
        return self.total_time_ns / self.pim_oracle_ns


def _profile_from_counters(
    name: str,
    counters: PerfCounters,
    offloadable: tuple[str, ...],
    hardware: HardwareConfig,
    pim_time_ns: float,
) -> AlgorithmProfile:
    model = CostModel(hardware)
    return AlgorithmProfile(
        name=name,
        counters=counters,
        components=model.component_breakdown(counters),
        function_times_ns=model.function_times_ns(counters),
        cpu_time_ns=model.total_time_ns(counters),
        pim_time_ns=pim_time_ns,
        offloadable=offloadable,
        pim_oracle_ns=model.pim_oracle_time_ns(counters, set(offloadable)),
    )


def profile_knn(
    algorithm: KNNAlgorithm,
    queries: np.ndarray,
    k: int,
    hardware: HardwareConfig | None = None,
    batch_size: int | None = None,
) -> AlgorithmProfile:
    """Run a fitted kNN algorithm over a query workload and profile it.

    Times are summed over all queries. Pass the PIM platform for PIM
    variants (the controller's platform is used when available).

    ``batch_size`` routes the workload through the algorithm's
    :meth:`~repro.mining.knn.base.KNNAlgorithm.query_batch` in chunks of
    that size (amortizing wave setup on PIM variants); ``None`` keeps
    per-query dispatch. Results are identical either way; on a PIM
    controller the batch counters land in ``extras`` (waves per batch,
    amortized dispatch bytes per query, wave time saved).
    """
    queries = np.atleast_2d(np.asarray(queries))
    controller = getattr(algorithm, "controller", None)
    stats_before = None
    if controller is not None:
        stats_before = (
            controller.pim.stats.batches,
            controller.pim.stats.batched_queries,
            controller.pim.stats.batch_saved_ns,
        )
    if hardware is None:
        hardware = (
            controller.hardware if controller is not None
            else baseline_platform()
        )
    tele = get_recorder()
    profile_span = (
        tele.begin_span(
            "profile.knn", "algorithm",
            algorithm=algorithm.name, n_queries=int(len(queries)), k=k,
        )
        if tele.enabled
        else None
    )
    merged = PerfCounters()
    pim_time = 0.0
    exact = 0
    if batch_size is None:
        results = [algorithm.query(q, k) for q in queries]
    else:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        results = []
        for start in range(0, len(queries), batch_size):
            results.extend(
                algorithm.query_batch(queries[start : start + batch_size], k)
            )
    model = CostModel(hardware) if profile_span is not None else None
    for i, result in enumerate(results):
        merged = merged.merged_with(result.counters)
        pim_time += result.pim_time_ns
        exact += result.exact_computations
        if model is not None:
            # replay each query's Quartz CPU time onto the simulated
            # clock (the waves advanced it during execution above)
            with tele.span("cpu.query", "cpu", index=i):
                tele.advance(model.total_time_ns(result.counters))
    profile = _profile_from_counters(
        algorithm.name,
        merged,
        tuple(algorithm.offloadable_functions),
        hardware,
        pim_time,
    )
    profile.extras["exact_computations"] = float(exact)
    profile.extras["n_queries"] = float(len(queries))
    if stats_before is not None:
        _record_batch_extras(profile, algorithm, controller, stats_before)
    if profile_span is not None:
        tele.end_span(
            cpu_time_ns=profile.cpu_time_ns, pim_time_ns=profile.pim_time_ns
        )
        _record_profile_metrics(tele, profile)
    return profile


def _record_profile_metrics(tele, profile: AlgorithmProfile) -> None:
    """Fig. 5/6 buckets of one profile -> telemetry gauges.

    Span sums reconcile with these: the ``pim_dispatch`` spans of the
    profiled run add up to ``profiler.pim_time_ns`` and the ``cpu``
    spans to ``profiler.cpu_time_ns``.
    """
    m = tele.metrics
    prefix = f"profiler.{profile.name}"
    m.gauge(f"{prefix}.cpu_time_ns").set(profile.cpu_time_ns)
    m.gauge(f"{prefix}.pim_time_ns").set(profile.pim_time_ns)
    m.gauge(f"{prefix}.pim_oracle_ns").set(profile.pim_oracle_ns)
    for component, fraction in profile.component_fractions().items():
        m.gauge(f"{prefix}.component.{component}").set(fraction)
    for function, time_ns in profile.function_times_ns.items():
        m.gauge(f"{prefix}.function.{function}_ns").set(time_ns)


def _record_batch_extras(
    profile: AlgorithmProfile,
    algorithm: KNNAlgorithm,
    controller,
    stats_before: tuple[int, int, float],
) -> None:
    """Batch-level counters of one run -> ``profile.extras``."""
    from repro.cost.transfer import dispatch_transfer

    stats = controller.pim.stats
    batches = stats.batches - stats_before[0]
    batched_queries = stats.batched_queries - stats_before[1]
    saved_ns = stats.batch_saved_ns - stats_before[2]
    profile.extras["pim_batches"] = float(batches)
    profile.extras["pim_waves_per_batch"] = (
        batched_queries / batches if batches else 0.0
    )
    profile.extras["pim_batch_saved_ns"] = saved_ns
    mean_batch = max(int(round(batched_queries / batches)), 1) if batches else 1
    profile.extras["pim_dispatch_bytes_per_query"] = dispatch_transfer(
        algorithm.dims, controller.pim.config.operand_bits, mean_batch
    ).bytes_per_object()


def profile_kmeans(
    algorithm: KMeansAlgorithm,
    data: np.ndarray,
    centers: np.ndarray | None = None,
    seed: int = 0,
    hardware: HardwareConfig | None = None,
) -> AlgorithmProfile:
    """Run a k-means algorithm to convergence and profile it.

    ``extras['time_per_iteration_ms']`` carries the Table 7 metric.
    """
    assist = algorithm.pim
    batches_before = (
        assist.controller.pim.stats.batches if assist is not None else 0
    )
    if hardware is None:
        hardware = (
            assist.controller.hardware if assist is not None
            else baseline_platform()
        )
    tele = get_recorder()
    profile_span = (
        tele.begin_span(
            "profile.kmeans", "algorithm",
            algorithm=algorithm.name, n_points=int(np.asarray(data).shape[0]),
            n_clusters=algorithm.n_clusters,
        )
        if tele.enabled
        else None
    )
    result = algorithm.fit(data, centers=centers, seed=seed)
    if profile_span is not None:
        # replay the whole run's Quartz CPU time onto the simulated
        # clock (the waves advanced it during fit above)
        with tele.span("cpu.fit", "cpu", iterations=result.n_iterations):
            tele.advance(CostModel(hardware).total_time_ns(result.counters))
    profile = _profile_from_counters(
        algorithm.name,
        result.counters,
        algorithm.offloadable_functions(),
        hardware,
        result.pim_time_ns,
    )
    iters = max(result.n_iterations, 1)
    profile.extras["n_iterations"] = float(result.n_iterations)
    profile.extras["inertia"] = result.inertia
    profile.extras["exact_distances"] = float(result.exact_distances)
    profile.extras["time_per_iteration_ms"] = profile.total_time_ms / iters
    if assist is not None:
        stats = assist.controller.pim.stats
        batches = stats.batches - batches_before
        profile.extras["pim_batches"] = float(batches)
        profile.extras["pim_waves_per_batch"] = stats.waves_per_batch
    if profile_span is not None:
        tele.end_span(
            cpu_time_ns=profile.cpu_time_ns, pim_time_ns=profile.pim_time_ns
        )
        _record_profile_metrics(tele, profile)
    return profile
