"""The end-to-end framework of the paper (Section III-B).

Given a similarity-based mining algorithm, :class:`PIMAccelerator`
executes the paper's pipeline:

1. **profile** the baseline to find the bottleneck function and the
   PIM-oracle floor (Section IV);
2. **decide** whether PIM is worth exploiting (oracle speedup above a
   threshold — the paper's Elkan case shows it sometimes is not);
3. **build** the PIM-optimized variant: quantize the dataset, size the
   compressed dimensionality with Theorem 4, program the crossbars, and
   swap the bottleneck bound for its PIM-aware bound (Section V-A/B/C);
4. optionally **optimize the execution plan** with Eq. 13 (Section V-D);
5. **verify** that the optimized algorithm returns identical results and
   report the simulated speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.planner import optimize_fnn_plan
from repro.core.profiler import AlgorithmProfile, profile_kmeans, profile_knn
from repro.errors import ConfigurationError
from repro.hardware.config import HardwareConfig, pim_platform
from repro.hardware.controller import PIMController
from repro.mining.kmeans import PIMAssist, make_kmeans
from repro.mining.knn import FNNPIMOptimizeKNN, make_baseline, make_pim_variant
from repro.similarity.quantization import Quantizer
from repro.telemetry import get_recorder

#: Below this PIM-oracle speedup the framework recommends against PIM
#: (the paper's Elkan discussion: oracle gain of ~2x is marginal).
MIN_PROMISING_ORACLE_SPEEDUP = 1.5


@dataclass
class AccelerationReport:
    """Outcome of one accelerate() run."""

    baseline: AlgorithmProfile
    optimized: AlgorithmProfile
    results_match: bool
    promising: bool
    plan: tuple[str, ...] = ()
    notes: list[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Baseline total time over optimized total time."""
        if self.optimized.total_time_ns <= 0:
            return float("inf")
        return self.baseline.total_time_ns / self.optimized.total_time_ns

    @property
    def oracle_speedup(self) -> float:
        """Baseline total time over the Eq. 2 oracle floor."""
        return self.baseline.oracle_speedup


class PIMAccelerator:
    """Facade running the full profile -> offload -> verify pipeline."""

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        alpha: float = 10**6,
    ) -> None:
        self.hardware = hardware if hardware is not None else pim_platform()
        if not self.hardware.has_pim:
            raise ConfigurationError(
                "PIMAccelerator needs a platform with a PIM array"
            )
        self.alpha = alpha

    def _controller(self) -> PIMController:
        return PIMController(self.hardware)

    def _quantizer(self) -> Quantizer:
        return Quantizer(alpha=self.alpha, assume_normalized=True)

    # ------------------------------------------------------------------
    def accelerate_knn(
        self,
        baseline_name: str,
        data: np.ndarray,
        queries: np.ndarray,
        k: int,
        measure: str = "euclidean",
        optimize_plan: bool = False,
        batch_size: int | None = None,
    ) -> AccelerationReport:
        """Profile a kNN baseline, build its PIM variant, compare.

        Parameters
        ----------
        baseline_name:
            ``Standard``, ``OST``, ``SM`` or ``FNN``.
        data:
            Normalised dataset in [0, 1].
        queries:
            Query workload (2-D).
        k:
            Neighbour count.
        measure:
            Distance measure (``Standard`` supports all; the bound-based
            baselines are ED-only).
        optimize_plan:
            Run the Eq. 13 plan optimizer (FNN only — the other
            baselines have a single bound, so there is nothing to drop).
        batch_size:
            Wave batch size for the PIM variant's query workload; the
            default ships the whole workload as one batch per bound.
            ``1`` reproduces scalar dispatch. Results are identical at
            any batch size — only the simulated wave time changes.
        """
        data = np.asarray(data, dtype=np.float64)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n, dims = data.shape
        notes: list[str] = []
        tele = get_recorder()

        with tele.span("phase.profile_baseline", "phase", task="knn"):
            baseline = make_baseline(baseline_name, dims, measure=measure)
            baseline.fit(data)
            base_profile = profile_knn(baseline, queries, k)
        promising = base_profile.oracle_speedup >= MIN_PROMISING_ORACLE_SPEEDUP
        if not promising:
            notes.append(
                f"PIM-oracle speedup {base_profile.oracle_speedup:.2f}x is "
                "marginal; offloading may not pay off"
            )

        with tele.span("phase.build_pim", "phase", task="knn"):
            controller = self._controller()
            pim_algo = make_pim_variant(
                baseline_name + "-PIM",
                dims,
                n,
                measure=measure,
                controller=controller,
            )
            pim_algo.fit(data)
        plan: tuple[str, ...] = tuple(b.name for b in pim_algo.bounds)

        if optimize_plan:
            if baseline_name != "FNN":
                notes.append(
                    "plan optimization only applies to FNN's bound ladder; "
                    "running the default plan"
                )
            else:
                with tele.span("phase.optimize_plan", "phase", task="knn"):
                    pim_algo, plan, ratio_note = self._optimized_fnn(
                        pim_algo, baseline, data, queries, k, controller
                    )
                notes.append(ratio_note)

        with tele.span("phase.profile_pim", "phase", task="knn"):
            pim_profile = profile_knn(
                pim_algo,
                queries,
                k,
                batch_size=(
                    batch_size if batch_size is not None else len(queries)
                ),
            )
        with tele.span("phase.verify", "phase", task="knn"):
            results_match = self._knn_results_match(
                baseline, pim_algo, queries, k
            )
        return AccelerationReport(
            baseline=base_profile,
            optimized=pim_profile,
            results_match=results_match,
            promising=promising,
            plan=plan,
            notes=notes,
        )

    def _optimized_fnn(self, pim_algo, baseline, data, queries, k, controller):
        """Apply Section V-D to the FNN-PIM bound ladder."""
        from repro.bounds.ed import FNNBound

        pim_bound = pim_algo.bounds[0]
        originals = [
            FNNBound(s) for s in pim_algo.segment_ladder
        ]
        for b in originals:
            b.prepare(data)
        sample = queries[: min(3, len(queries))]
        plan, ratios = optimize_fnn_plan(
            pim_bound, originals, baseline, sample, k
        )
        optimized = FNNPIMOptimizeKNN(list(plan.bounds), controller)
        optimized.fit(data)
        note = "plan ratios: " + ", ".join(
            f"{name}={ratio:.3f}" for name, ratio in ratios.items()
        )
        return optimized, plan.names, note

    @staticmethod
    def _knn_results_match(a, b, queries, k) -> bool:
        """Per-query baseline answers vs the PIM variant's batched ones."""
        batched = b.query_batch(queries, k)
        for q, rb in zip(queries, batched):
            ra = a.query(q, k)
            if not np.allclose(
                np.sort(ra.scores), np.sort(rb.scores), atol=1e-9
            ):
                return False
        return True

    # ------------------------------------------------------------------
    def accelerate_outliers(
        self,
        data: np.ndarray,
        n_neighbors: int = 5,
        n_outliers: int = 10,
    ) -> AccelerationReport:
        """Profile the outlier-detection baseline, build its PIM variant.

        Same pipeline as :meth:`accelerate_knn` applied to the
        distance-based outlier task (Section II-C).
        """
        from repro.cost.model import CostModel
        from repro.core.profiler import AlgorithmProfile
        from repro.hardware.config import baseline_platform
        from repro.mining.outlier import (
            PIMOutlierDetector,
            StandardOutlierDetector,
        )

        data = np.asarray(data, dtype=np.float64)
        tele = get_recorder()
        with tele.span("phase.profile_baseline", "phase", task="outlier"):
            baseline = StandardOutlierDetector(n_neighbors, n_outliers)
            base_result = baseline.fit(data).detect()
        base_model = CostModel(baseline_platform())
        base_profile = AlgorithmProfile(
            name=baseline.name,
            counters=base_result.counters,
            components=base_model.component_breakdown(base_result.counters),
            function_times_ns=base_model.function_times_ns(
                base_result.counters
            ),
            cpu_time_ns=base_model.total_time_ns(base_result.counters),
            pim_time_ns=0.0,
            offloadable=baseline.offloadable_functions,
            pim_oracle_ns=base_model.pim_oracle_time_ns(
                base_result.counters, set(baseline.offloadable_functions)
            ),
        )
        promising = base_profile.oracle_speedup >= MIN_PROMISING_ORACLE_SPEEDUP

        with tele.span("phase.build_pim", "phase", task="outlier"):
            pim = PIMOutlierDetector(
                n_neighbors,
                n_outliers,
                controller=self._controller(),
                quantizer=self._quantizer(),
            )
            pim_result = pim.fit(data).detect()
        pim_model = CostModel(pim.controller.hardware)
        pim_profile = AlgorithmProfile(
            name=pim.name,
            counters=pim_result.counters,
            components=pim_model.component_breakdown(pim_result.counters),
            function_times_ns=pim_model.function_times_ns(
                pim_result.counters
            ),
            cpu_time_ns=pim_model.total_time_ns(pim_result.counters),
            pim_time_ns=pim_result.pim_time_ns,
            offloadable=pim.offloadable_functions,
            pim_oracle_ns=pim_model.pim_oracle_time_ns(
                pim_result.counters, set(pim.offloadable_functions)
            ),
        )
        results_match = bool(
            np.allclose(
                np.sort(base_result.scores), np.sort(pim_result.scores)
            )
        )
        return AccelerationReport(
            baseline=base_profile,
            optimized=pim_profile,
            results_match=results_match,
            promising=promising,
            plan=("LB_PIM-ED",),
        )

    # ------------------------------------------------------------------
    def accelerate_kmeans(
        self,
        baseline_name: str,
        data: np.ndarray,
        k: int,
        max_iters: int = 10,
        seed: int = 0,
    ) -> AccelerationReport:
        """Profile a k-means baseline, build its PIM variant, compare."""
        data = np.asarray(data, dtype=np.float64)
        notes: list[str] = []
        from repro.mining.kmeans import initial_centers

        tele = get_recorder()
        centers = initial_centers(data, k, seed)
        with tele.span("phase.profile_baseline", "phase", task="kmeans"):
            baseline = make_kmeans(baseline_name, k, max_iters=max_iters)
            base_profile = profile_kmeans(
                baseline, data, centers=centers.copy()
            )
        promising = base_profile.oracle_speedup >= MIN_PROMISING_ORACLE_SPEEDUP
        if not promising:
            notes.append(
                f"PIM-oracle speedup {base_profile.oracle_speedup:.2f}x is "
                "marginal; offloading may not pay off (the paper's Elkan "
                "case)"
            )

        with tele.span("phase.build_pim", "phase", task="kmeans"):
            assist = PIMAssist(self._controller(), self._quantizer())
            pim_algo = make_kmeans(
                baseline_name + "-PIM", k,
                max_iters=max_iters, pim_assist=assist,
            )
        with tele.span("phase.profile_pim", "phase", task="kmeans"):
            pim_profile = profile_kmeans(
                pim_algo, data, centers=centers.copy()
            )
        with tele.span("phase.verify", "phase", task="kmeans"):
            results_match = abs(
                pim_profile.extras["inertia"] - base_profile.extras["inertia"]
            ) <= 1e-6 * max(1.0, base_profile.extras["inertia"])
        return AccelerationReport(
            baseline=base_profile,
            optimized=pim_profile,
            results_match=results_match,
            promising=promising,
            plan=(assist.bound_name,),
            notes=notes,
        )
