"""Plain-text rendering of experiment tables and series.

The bench harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting uniform (fixed-width
columns, engineering units) and dependency-free.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width text table.

    Cells are stringified; floats get 4 significant digits. Ragged rows
    are tolerated: rows shorter than the widest row (or the header) are
    padded with empty cells, and rows longer than the header get
    unnamed columns rather than raising.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    n_cols = max(
        [len(headers)] + [len(r) for r in str_rows]
    ) if headers or str_rows else 0
    padded_headers = list(headers) + [""] * (n_cols - len(headers))
    str_rows = [r + [""] * (n_cols - len(r)) for r in str_rows]
    widths = [
        max(
            len(padded_headers[i]), *(len(r[i]) for r in str_rows)
        ) if str_rows else len(padded_headers[i])
        for i in range(n_cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(padded_headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_fractions(fractions: dict[str, float]) -> str:
    """``name=12.3%`` series on one line (Fig. 5/6 style)."""
    return "  ".join(f"{k}={v * 100:5.1f}%" for k, v in fractions.items())


def format_time_ms(ns: float) -> str:
    """Nanoseconds rendered as milliseconds with sane precision."""
    return f"{ns / 1e6:.3f} ms"


def format_batch_stats(extras: dict[str, float]) -> str:
    """One-line batch summary from a profile's ``extras``.

    Quotes the waves-per-batch ratio and the amortized per-query
    dispatch bytes that the batched engine reports; empty string when
    the run never batched.
    """
    batches = extras.get("pim_batches", 0.0)
    if not batches:
        return ""
    parts = [
        f"batches={batches:.0f}",
        f"waves/batch={extras.get('pim_waves_per_batch', 0.0):.1f}",
    ]
    if "pim_dispatch_bytes_per_query" in extras:
        parts.append(
            f"dispatch B/query={extras['pim_dispatch_bytes_per_query']:.1f}"
        )
    if "pim_batch_saved_ns" in extras:
        parts.append(
            f"saved={extras['pim_batch_saved_ns'] / 1e6:.3f} ms"
        )
    return "  ".join(parts)


def format_metrics(summaries: dict[str, dict[str, object]]) -> str:
    """A metric-per-row table from instrument summaries.

    ``summaries`` maps metric name -> summary dict (as produced by the
    telemetry instruments' ``summary()`` plus a ``type`` key). Columns
    are the union of all summary keys, so counters (``value``) and
    histograms (``count``/``sum``/``mean``/...) share one table; cells
    a metric does not report stay blank — this is the ragged-row case
    :func:`format_table` now supports.
    """
    if not summaries:
        return ""
    keys: list[str] = []
    for summary in summaries.values():
        for key in summary:
            if key != "type" and key not in keys:
                keys.append(key)
    headers = ["metric", "type"] + keys
    rows = [
        [name, str(summary.get("type", ""))]
        + [summary.get(key, "") for key in keys]
        for name, summary in summaries.items()
    ]
    return format_table(headers, rows)


def speedup(baseline_ns: float, optimized_ns: float) -> float:
    """Baseline/optimized ratio, guarding against zero."""
    if optimized_ns <= 0:
        return float("inf")
    return baseline_ns / optimized_ns


def format_speedup(baseline_ns: float, optimized_ns: float) -> str:
    """``12.3x`` speedup string."""
    return f"{speedup(baseline_ns, optimized_ns):.1f}x"
