"""Execution planning: bound-subset optimization and wave batching.

Two planners live here:

* the Eq. 13 optimizer (paper Section V-D). Replacing the bottleneck
  bound with its PIM-aware bound is the *default* plan; a better plan
  may drop some original bounds entirely (Fig. 12b: when the PIM bound
  is tighter than a finer original bound, keeping the original only adds
  transfer). The optimizer:

  1. estimates each candidate bound's *standalone pruning ratio* on
     sample queries, evaluating the bound against the true k-th-NN
     threshold (the paper measures ratios offline on conventional
     hardware);
  2. enumerates all ``2^L`` subsets of the candidate set, ordering each
     plan's bounds by per-object transfer cost (cheap filters first);
  3. scores every plan with Eq. 13 (the exact refinement is charged as
     the final stage) and returns the minimum-transfer plan;

* :class:`BatchScheduler`, the online batching layer. Distance-bound
  requests against the same programmed matrix are queued and flushed as
  one multi-query wave (one pipeline setup amortised over the group)
  when the group reaches ``max_batch``, when its deadline expires on the
  simulated clock, or when a caller forces the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.bounds.base import Bound
from repro.cost.transfer import TransferCost, exact_transfer, plan_transfer_bits
from repro.errors import OperandError, PlanError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import KNNAlgorithm
from repro.telemetry import get_recorder


@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated execution plan with its Eq. 13 transfer cost."""

    bounds: tuple[Bound, ...]
    transfer_bits: float

    @property
    def names(self) -> tuple[str, ...]:
        """Bound names in execution order."""
        return tuple(b.name for b in self.bounds)


def standalone_pruning_ratios(
    bounds: list[Bound],
    reference: KNNAlgorithm,
    queries: np.ndarray,
    k: int,
) -> dict[str, float]:
    """Pr(B) of each bound measured independently (Fig. 15's left axis).

    For each sample query the exact k-th score from ``reference``
    (typically a linear scan) is the pruning threshold; the ratio is the
    fraction of all objects each bound eliminates at that threshold.

    The bounds must already be prepared on the reference's dataset.
    """
    queries = np.atleast_2d(np.asarray(queries))
    evaluated = {b.name: 0 for b in bounds}
    pruned = {b.name: 0 for b in bounds}
    n = reference.n_objects
    for q in queries:
        result = reference.query(q, k)
        threshold = float(
            result.scores.max() if reference.minimize else result.scores.min()
        )
        for bound in bounds:
            values = bound.evaluate(q)
            evaluated[bound.name] += n
            pruned[bound.name] += int(bound.prunes(values, threshold).sum())
    return {
        name: pruned[name] / evaluated[name] if evaluated[name] else 0.0
        for name in evaluated
    }


class ExecutionPlanner:
    """Enumerate and score bound subsets per Eq. 13.

    Parameters
    ----------
    candidate_bounds:
        The candidate set: the original bounds plus the PIM-aware bound.
    n_objects:
        Dataset cardinality ``N``.
    dims:
        Original dimensionality (prices the exact refinement stage).
    operand_bits:
        Width of a stored coordinate on the CPU side (32 in the paper).
    """

    def __init__(
        self,
        candidate_bounds: list[Bound],
        n_objects: int,
        dims: int,
        operand_bits: int = 32,
    ) -> None:
        if not candidate_bounds:
            raise PlanError("the candidate bound set is empty")
        kinds = {b.kind for b in candidate_bounds}
        if len(kinds) != 1:
            raise PlanError("candidate bounds must share pruning direction")
        self.candidates = list(candidate_bounds)
        self.n_objects = n_objects
        self.dims = dims
        self.operand_bits = operand_bits

    def _plan_cost(
        self, bounds: tuple[Bound, ...], ratios: dict[str, float]
    ) -> float:
        """Eq. 13 with *conditional* stage ratios.

        Standalone ratios are measured against the whole dataset, but a
        bound running after a stronger filter sees only that filter's
        survivors. For bounds of one family at increasing tightness the
        pruned sets are (nearly) nested, so the conditional ratio of a
        stage following filters of combined strength ``r_prev`` is
        ``max(0, (r - r_prev) / (1 - r_prev))`` — in particular a bound
        weaker than what already ran prunes nothing, which is exactly
        the paper's argument for dropping the original bounds once
        LB_PIM-FNN^s is tighter (Section V-D).
        """
        stage_costs: list[TransferCost] = []
        stage_ratios: list[float] = []
        strongest = 0.0
        for bound in bounds:
            stage_costs.append(TransferCost(bound.per_object_transfer_bits))
            r = ratios.get(bound.name, 0.0)
            if strongest >= 1.0:
                conditional = 0.0
            else:
                conditional = max(0.0, (r - strongest) / (1.0 - strongest))
            stage_ratios.append(conditional)
            strongest = max(strongest, r)
        stage_costs.append(exact_transfer(self.dims, self.operand_bits))
        stage_ratios.append(0.0)
        return plan_transfer_bits(self.n_objects, stage_costs, stage_ratios)

    def enumerate_plans(
        self, ratios: dict[str, float]
    ) -> list[PlanCandidate]:
        """All 2^L - 1 non-empty plans, cheapest-transfer first.

        Bounds within a plan execute in increasing per-object transfer
        cost (the natural coarse-to-fine order of the paper's ladders).
        """
        plans: list[PlanCandidate] = []
        for size in range(1, len(self.candidates) + 1):
            for subset in combinations(self.candidates, size):
                ordered = tuple(
                    sorted(subset, key=lambda b: b.per_object_transfer_bits)
                )
                plans.append(
                    PlanCandidate(
                        bounds=ordered,
                        transfer_bits=self._plan_cost(ordered, ratios),
                    )
                )
        plans.sort(key=lambda p: p.transfer_bits)
        return plans

    def best_plan(self, ratios: dict[str, float]) -> PlanCandidate:
        """The minimum-Eq.13 plan (exhaustive over all subsets)."""
        return self.enumerate_plans(ratios)[0]

    def greedy_plan(self, ratios: dict[str, float]) -> PlanCandidate:
        """A greedy plan for large candidate sets.

        Exhaustive enumeration costs ``2^L`` evaluations; with many
        candidate bounds that becomes the planning bottleneck. The
        greedy variant grows the plan one bound at a time, always adding
        the candidate that lowers Eq. 13 the most, and stops when no
        addition helps. ``O(L^2)`` cost evaluations; the ablation bench
        compares its plan quality against the exhaustive optimum.
        """
        chosen: list[Bound] = []
        remaining = list(self.candidates)
        best_cost = self._plan_cost((), ratios)
        while remaining:
            scored = []
            for bound in remaining:
                trial = tuple(
                    sorted(
                        chosen + [bound],
                        key=lambda b: b.per_object_transfer_bits,
                    )
                )
                scored.append((self._plan_cost(trial, ratios), bound))
            cost, winner = min(scored, key=lambda pair: pair[0])
            if cost >= best_cost:
                break
            best_cost = cost
            chosen.append(winner)
            remaining.remove(winner)
        ordered = tuple(
            sorted(chosen, key=lambda b: b.per_object_transfer_bits)
        )
        return PlanCandidate(bounds=ordered, transfer_bits=best_cost)

    def no_filter_cost(self) -> float:
        """Transfer of the plan with no bounds (pure linear scan)."""
        return self._plan_cost((), {})


class BatchTicket:
    """A pending dot-product request issued to a :class:`BatchScheduler`.

    ``values`` blocks (in simulation: forces the owning group's flush)
    until the batched wave containing the request has fired.
    """

    def __init__(self, scheduler: "BatchScheduler", group: tuple) -> None:
        self._scheduler = scheduler
        self._group = group
        self._values: np.ndarray | None = None

    @property
    def done(self) -> bool:
        """Whether the backing wave has fired."""
        return self._values is not None

    @property
    def values(self) -> np.ndarray:
        """The dot products, flushing the pending group on first access."""
        if self._values is None:
            self._scheduler._flush_group(self._group, reason="demand")
        assert self._values is not None
        return self._values


@dataclass
class BatchSchedulerStats:
    """Dispatch accounting of one :class:`BatchScheduler`."""

    submitted: int = 0
    batches_flushed: int = 0
    queries_flushed: int = 0
    flush_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def waves_per_batch(self) -> float:
        """Mean flushed batch size (0 before the first flush)."""
        if self.batches_flushed == 0:
            return 0.0
        return self.queries_flushed / self.batches_flushed


class BatchScheduler:
    """Group pending PIM requests by matrix and flush them as one wave.

    The scheduler is the host-side half of the batched query engine:
    callers :meth:`submit` integer query vectors against a programmed
    matrix and hold a :class:`BatchTicket`; the scheduler stacks the
    vectors of each ``(matrix, input_bits)`` group into a single
    :meth:`~repro.hardware.controller.PIMController.dot_products_batch`
    dispatch when

    * the group reaches ``max_batch`` requests (size flush),
    * the group's oldest request ages past ``max_delay_ns`` on the
      simulated clock (deadline flush; advance the clock with
      :meth:`advance`), or
    * a ticket's results are demanded, or :meth:`flush` is called.

    Parameters
    ----------
    controller:
        The controller owning the programmed matrices.
    max_batch:
        Size threshold triggering an immediate flush.
    max_delay_ns:
        Deadline (simulated ns) a request may wait before its group is
        flushed; ``None`` disables deadline flushing.
    """

    def __init__(
        self,
        controller: PIMController,
        max_batch: int = 32,
        max_delay_ns: float | None = None,
    ) -> None:
        if max_batch < 1:
            raise PlanError("max_batch must be >= 1")
        if max_delay_ns is not None and max_delay_ns < 0:
            raise PlanError("max_delay_ns must be >= 0")
        self.controller = controller
        self.max_batch = max_batch
        self.max_delay_ns = max_delay_ns
        self.clock_ns = 0.0
        self.stats = BatchSchedulerStats()
        self._pending: dict[tuple, list[tuple[np.ndarray, BatchTicket]]] = {}
        self._deadlines: dict[tuple, float] = {}
        #: First-submission sequence number of each live group; breaks
        #: deadline ties so replays flush in submit order.
        self._group_seq: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        vector: np.ndarray,
        input_bits: int | None = None,
        deadline_ns: float | None = None,
    ) -> BatchTicket:
        """Queue one query vector; returns the ticket holding its results.

        ``deadline_ns`` optionally caps *this* request's wait on the
        simulated clock (absolute time); the owning group's flush
        deadline is tightened to the earliest request deadline, on top
        of the scheduler-wide ``max_delay_ns`` ageing rule. Serving-layer
        callers use it for deadline-aware dispatch.
        """
        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise OperandError("submit() expects a single 1-D query vector")
        if deadline_ns is not None and deadline_ns < self.clock_ns:
            raise PlanError("deadline_ns lies in the simulated past")
        group = (name, input_bits)
        ticket = BatchTicket(self, group)
        queue = self._pending.setdefault(group, [])
        if not queue:
            self._group_seq[group] = self.stats.submitted
            if self.max_delay_ns is not None:
                self._deadlines[group] = self.clock_ns + self.max_delay_ns
        if deadline_ns is not None:
            due = self._deadlines.get(group, float("inf"))
            self._deadlines[group] = min(due, float(deadline_ns))
        queue.append((vector, ticket))
        self.stats.submitted += 1
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("scheduler.submitted").add(1)
            tele.metrics.gauge("scheduler.queue_depth").set(self.pending())
        if len(queue) >= self.max_batch:
            self._flush_group(group, reason="size")
        return ticket

    def advance(self, ns: float) -> int:
        """Advance the simulated clock, flushing groups past deadline.

        Overdue groups flush oldest deadline first (ties broken by
        submit order), so a replay of the same submission trace fires
        identical waves in identical order. Returns the number of
        groups flushed.
        """
        if ns < 0:
            raise PlanError("time only moves forward")
        self.clock_ns += ns
        overdue = sorted(
            (
                group
                for group, due in self._deadlines.items()
                if due <= self.clock_ns
            ),
            key=lambda g: (self._deadlines[g], self._group_seq.get(g, 0)),
        )
        for group in overdue:
            self._flush_group(group, reason="deadline")
        return len(overdue)

    def flush(self, name: str | None = None) -> int:
        """Flush every pending group (or only those of ``name``).

        Groups flush in submit order (oldest first). Returns the number
        of queries dispatched.
        """
        groups = sorted(
            (g for g in self._pending if name is None or g[0] == name),
            key=lambda g: self._group_seq.get(g, 0),
        )
        dispatched = 0
        for group in groups:
            dispatched += self._flush_group(group, reason="manual")
        return dispatched

    def pending(self, name: str | None = None) -> int:
        """Queued requests awaiting a wave (optionally for one matrix)."""
        return sum(
            len(queue)
            for group, queue in self._pending.items()
            if name is None or group[0] == name
        )

    # ------------------------------------------------------------------
    def _flush_group(self, group: tuple, reason: str) -> int:
        queue = self._pending.pop(group, [])
        self._deadlines.pop(group, None)
        self._group_seq.pop(group, None)
        if not queue:
            return 0
        name, input_bits = group
        vectors = np.stack([vec for vec, _ in queue])
        result = self.controller.dot_products_batch(
            name, vectors, input_bits=input_bits
        )
        for row, (_, ticket) in zip(result.values, queue):
            ticket._values = row
        self.stats.batches_flushed += 1
        self.stats.queries_flushed += len(queue)
        self.stats.flush_reasons[reason] = (
            self.stats.flush_reasons.get(reason, 0) + 1
        )
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter(f"scheduler.flush.{reason}").add(1)
            tele.metrics.histogram("scheduler.batch_size").observe(
                len(queue)
            )
            tele.metrics.gauge("scheduler.queue_depth").set(self.pending())
        return len(queue)


def optimize_fnn_plan(
    pim_bound: Bound,
    original_bounds: list[Bound],
    reference: KNNAlgorithm,
    queries: np.ndarray,
    k: int,
) -> tuple[PlanCandidate, dict[str, float]]:
    """The paper's FNN-PIM-optimize construction (Fig. 16).

    All bounds must already be prepared on the reference's dataset.
    Returns the chosen plan and the measured standalone ratios.
    """
    candidates = [pim_bound] + list(original_bounds)
    ratios = standalone_pruning_ratios(candidates, reference, queries, k)
    planner = ExecutionPlanner(
        candidates, reference.n_objects, reference.dims
    )
    return planner.best_plan(ratios), ratios
