"""Execution-plan optimization (paper Section V-D, Eq. 13).

Replacing the bottleneck bound with its PIM-aware bound is the *default*
plan; a better plan may drop some original bounds entirely (Fig. 12b:
when the PIM bound is tighter than a finer original bound, keeping the
original only adds transfer). The optimizer:

1. estimates each candidate bound's *standalone pruning ratio* on sample
   queries, evaluating the bound against the true k-th-NN threshold
   (the paper measures ratios offline on conventional hardware);
2. enumerates all ``2^L`` subsets of the candidate set, ordering each
   plan's bounds by per-object transfer cost (cheap filters first);
3. scores every plan with Eq. 13 (the exact refinement is charged as the
   final stage) and returns the minimum-transfer plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.bounds.base import Bound
from repro.cost.transfer import TransferCost, exact_transfer, plan_transfer_bits
from repro.errors import PlanError
from repro.mining.knn.base import KNNAlgorithm


@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated execution plan with its Eq. 13 transfer cost."""

    bounds: tuple[Bound, ...]
    transfer_bits: float

    @property
    def names(self) -> tuple[str, ...]:
        """Bound names in execution order."""
        return tuple(b.name for b in self.bounds)


def standalone_pruning_ratios(
    bounds: list[Bound],
    reference: KNNAlgorithm,
    queries: np.ndarray,
    k: int,
) -> dict[str, float]:
    """Pr(B) of each bound measured independently (Fig. 15's left axis).

    For each sample query the exact k-th score from ``reference``
    (typically a linear scan) is the pruning threshold; the ratio is the
    fraction of all objects each bound eliminates at that threshold.

    The bounds must already be prepared on the reference's dataset.
    """
    queries = np.atleast_2d(np.asarray(queries))
    evaluated = {b.name: 0 for b in bounds}
    pruned = {b.name: 0 for b in bounds}
    n = reference.n_objects
    for q in queries:
        result = reference.query(q, k)
        threshold = float(
            result.scores.max() if reference.minimize else result.scores.min()
        )
        for bound in bounds:
            values = bound.evaluate(q)
            evaluated[bound.name] += n
            pruned[bound.name] += int(bound.prunes(values, threshold).sum())
    return {
        name: pruned[name] / evaluated[name] if evaluated[name] else 0.0
        for name in evaluated
    }


class ExecutionPlanner:
    """Enumerate and score bound subsets per Eq. 13.

    Parameters
    ----------
    candidate_bounds:
        The candidate set: the original bounds plus the PIM-aware bound.
    n_objects:
        Dataset cardinality ``N``.
    dims:
        Original dimensionality (prices the exact refinement stage).
    operand_bits:
        Width of a stored coordinate on the CPU side (32 in the paper).
    """

    def __init__(
        self,
        candidate_bounds: list[Bound],
        n_objects: int,
        dims: int,
        operand_bits: int = 32,
    ) -> None:
        if not candidate_bounds:
            raise PlanError("the candidate bound set is empty")
        kinds = {b.kind for b in candidate_bounds}
        if len(kinds) != 1:
            raise PlanError("candidate bounds must share pruning direction")
        self.candidates = list(candidate_bounds)
        self.n_objects = n_objects
        self.dims = dims
        self.operand_bits = operand_bits

    def _plan_cost(
        self, bounds: tuple[Bound, ...], ratios: dict[str, float]
    ) -> float:
        """Eq. 13 with *conditional* stage ratios.

        Standalone ratios are measured against the whole dataset, but a
        bound running after a stronger filter sees only that filter's
        survivors. For bounds of one family at increasing tightness the
        pruned sets are (nearly) nested, so the conditional ratio of a
        stage following filters of combined strength ``r_prev`` is
        ``max(0, (r - r_prev) / (1 - r_prev))`` — in particular a bound
        weaker than what already ran prunes nothing, which is exactly
        the paper's argument for dropping the original bounds once
        LB_PIM-FNN^s is tighter (Section V-D).
        """
        stage_costs: list[TransferCost] = []
        stage_ratios: list[float] = []
        strongest = 0.0
        for bound in bounds:
            stage_costs.append(TransferCost(bound.per_object_transfer_bits))
            r = ratios.get(bound.name, 0.0)
            if strongest >= 1.0:
                conditional = 0.0
            else:
                conditional = max(0.0, (r - strongest) / (1.0 - strongest))
            stage_ratios.append(conditional)
            strongest = max(strongest, r)
        stage_costs.append(exact_transfer(self.dims, self.operand_bits))
        stage_ratios.append(0.0)
        return plan_transfer_bits(self.n_objects, stage_costs, stage_ratios)

    def enumerate_plans(
        self, ratios: dict[str, float]
    ) -> list[PlanCandidate]:
        """All 2^L - 1 non-empty plans, cheapest-transfer first.

        Bounds within a plan execute in increasing per-object transfer
        cost (the natural coarse-to-fine order of the paper's ladders).
        """
        plans: list[PlanCandidate] = []
        for size in range(1, len(self.candidates) + 1):
            for subset in combinations(self.candidates, size):
                ordered = tuple(
                    sorted(subset, key=lambda b: b.per_object_transfer_bits)
                )
                plans.append(
                    PlanCandidate(
                        bounds=ordered,
                        transfer_bits=self._plan_cost(ordered, ratios),
                    )
                )
        plans.sort(key=lambda p: p.transfer_bits)
        return plans

    def best_plan(self, ratios: dict[str, float]) -> PlanCandidate:
        """The minimum-Eq.13 plan (exhaustive over all subsets)."""
        return self.enumerate_plans(ratios)[0]

    def greedy_plan(self, ratios: dict[str, float]) -> PlanCandidate:
        """A greedy plan for large candidate sets.

        Exhaustive enumeration costs ``2^L`` evaluations; with many
        candidate bounds that becomes the planning bottleneck. The
        greedy variant grows the plan one bound at a time, always adding
        the candidate that lowers Eq. 13 the most, and stops when no
        addition helps. ``O(L^2)`` cost evaluations; the ablation bench
        compares its plan quality against the exhaustive optimum.
        """
        chosen: list[Bound] = []
        remaining = list(self.candidates)
        best_cost = self._plan_cost((), ratios)
        while remaining:
            scored = []
            for bound in remaining:
                trial = tuple(
                    sorted(
                        chosen + [bound],
                        key=lambda b: b.per_object_transfer_bits,
                    )
                )
                scored.append((self._plan_cost(trial, ratios), bound))
            cost, winner = min(scored, key=lambda pair: pair[0])
            if cost >= best_cost:
                break
            best_cost = cost
            chosen.append(winner)
            remaining.remove(winner)
        ordered = tuple(
            sorted(chosen, key=lambda b: b.per_object_transfer_bits)
        )
        return PlanCandidate(bounds=ordered, transfer_bits=best_cost)

    def no_filter_cost(self) -> float:
        """Transfer of the plan with no bounds (pure linear scan)."""
        return self._plan_cost((), {})


def optimize_fnn_plan(
    pim_bound: Bound,
    original_bounds: list[Bound],
    reference: KNNAlgorithm,
    queries: np.ndarray,
    k: int,
) -> tuple[PlanCandidate, dict[str, float]]:
    """The paper's FNN-PIM-optimize construction (Fig. 16).

    All bounds must already be prepared on the reference's dataset.
    Returns the chosen plan and the measured standalone ratios.
    """
    candidates = [pim_bound] + list(original_bounds)
    ratios = standalone_pruning_ratios(candidates, reference, queries, k)
    planner = ExecutionPlanner(
        candidates, reference.n_objects, reference.dims
    )
    return planner.best_plan(ratios), ratios
