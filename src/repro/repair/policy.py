"""Repair-loop knobs: scrub pacing, confirmation, bandwidth budget.

:class:`RepairPolicy` is to :mod:`repro.repair` what
:class:`~repro.serving.health.RecoveryPolicy` is to per-dispatch
recovery — the single frozen bundle of operator knobs. Repair work is
background work: it runs only inside idle windows of the simulated
clock (between EDF dispatches in
:class:`~repro.serving.service.QueryService`), paced by
``scrub_period_ns`` and throttled by ``repair_bandwidth_bytes_per_s``,
so restoring redundancy never steals foreground service time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError


@dataclass(frozen=True)
class RepairPolicy:
    """How the self-healing loop paces and budgets its work.

    Attributes
    ----------
    scrub_period_ns:
        Target period of one full background sweep: every live shard is
        probed (one verification wave re-checking the residue checksum)
        once per period, spread evenly across it. Detection latency of a
        silent fault is therefore at most one period of idle time.
    probe_confirmations:
        Consecutive failed probes that confirm a *persistent* fault.
        One corrupt probe could be a transient ``wave_corrupt`` hit; a
        second probe immediately after distinguishes a stuck region
        (fails again) from a transient (passes).
    repair_bandwidth_bytes_per_s:
        Budget for re-replication copy traffic on the simulated clock.
        A chunk of ``B`` bytes occupies ``B / bandwidth`` seconds of
        idle time, split across however many idle windows it takes.
    target_replication:
        Live replicas per chunk the controller restores toward.
        ``None`` means the manager's configured ``replication``.
    quarantine_probes:
        Clean probe dispatches a repaired shard must serve before full
        re-admission. ``None`` defers to the manager's
        :class:`~repro.serving.health.RecoveryPolicy`.
    """

    scrub_period_ns: float = 50_000_000.0
    probe_confirmations: int = 2
    repair_bandwidth_bytes_per_s: float = 1e9
    target_replication: int | None = None
    quarantine_probes: int | None = None

    def __post_init__(self) -> None:
        if self.scrub_period_ns <= 0:
            raise ServingError("scrub_period_ns must be positive")
        if self.probe_confirmations < 1:
            raise ServingError("probe_confirmations must be >= 1")
        if self.repair_bandwidth_bytes_per_s <= 0:
            raise ServingError("repair bandwidth must be positive")
        if self.target_replication is not None and self.target_replication < 1:
            raise ServingError("target_replication must be >= 1 or None")
        if self.quarantine_probes is not None and self.quarantine_probes < 0:
            raise ServingError("quarantine_probes must be >= 0 or None")

    @property
    def copy_ns_per_byte(self) -> float:
        """Idle-time cost of copying one byte of replica payload."""
        return 1e9 / self.repair_bandwidth_bytes_per_s
