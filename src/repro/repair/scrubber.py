"""Background scrubber: idle-time re-verification of programmed shards.

PR-4's residue checksum detects a corrupted wave *when a query happens
to read it* — a stuck region flipped between queries sits silently until
the next unlucky dispatch pays a retry/failover. The scrubber closes
that gap: during idle windows of the simulated clock it walks the
shards round-robin and fires a small *probe wave* (two query vectors —
an all-ones vector that touches every programmed cell, plus one seeded
random vector) through the exact same faulty-array path queries take,
then re-verifies the residue checksum on the result. A silent defect is
therefore detected at most one ``scrub_period_ns`` of idle time after
it appears, instead of on the next real query to hit it.

The scrubber only *observes*; what to do about a bad probe —
confirmation, spare-crossbar remap, quarantine, re-replication — is the
:class:`~repro.repair.controller.RepairController`'s decision.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CrossbarDeadError
from repro.faults.injectors import ShardVerdict
from repro.faults.integrity import verify_wave_residues
from repro.repair.policy import RepairPolicy
from repro.telemetry import get_recorder

#: Salt mixed into the probe-vector RNG so scrub draws never collide
#: with any fault injector's stream derived from the same plan seed.
_PROBE_SEED_SALT = 0x5C12_0B5E


class BackgroundScrubber:
    """Round-robin idle-time prober over a :class:`ShardManager`'s shards.

    Pacing: one full sweep (every shard probed once) is spread evenly
    over ``policy.scrub_period_ns``; :meth:`due_ns` tells the controller
    when the next probe is owed. A controller confirming a suspicion can
    :meth:`hold` the cursor to re-probe the same shard immediately.
    """

    def __init__(self, manager, policy: RepairPolicy | None = None) -> None:
        self.manager = manager
        self.policy = policy if policy is not None else RepairPolicy()
        self.cursor = 0
        self.sweeps = 0
        self.probes = 0
        self.outcomes: dict[str, int] = {}
        self._next_due_ns = 0.0
        seed = manager.fault_plan.seed if manager.fault_plan is not None else 0
        bits = manager.hardware.pim.operand_bits if manager.hardware.pim else 8
        rng = np.random.default_rng((int(seed) << 8) ^ _PROBE_SEED_SALT)
        # all-ones touches every programmed cell (any stuck cell whose
        # original value differs perturbs the dot product); the random
        # companion breaks the rare residue blind spot of the first
        self._queries = np.stack(
            [
                np.ones(manager.dims, dtype=np.int64),
                rng.integers(0, 1 << bits, size=manager.dims, dtype=np.int64),
            ]
        )
        self._bits = bits

    # ------------------------------------------------------------------
    @property
    def interval_ns(self) -> float:
        """Idle time between two probes of one sweep."""
        return self.policy.scrub_period_ns / max(self.manager.n_shards, 1)

    def due_ns(self) -> float:
        """Simulated time the next probe is owed at."""
        return self._next_due_ns

    def advance(self, t_ns: float) -> None:
        """Move the cursor to the next shard and schedule its probe.

        Backlog is capped at one period: after a long stretch without
        idle time the scrubber catches up with at most one full sweep
        instead of replaying every missed one.
        """
        self.cursor = (self.cursor + 1) % self.manager.n_shards
        if self.cursor == 0:
            self.sweeps += 1
        self._next_due_ns = max(
            self._next_due_ns + self.interval_ns,
            t_ns - self.policy.scrub_period_ns,
        )

    def hold(self) -> None:
        """Keep the cursor in place: the next probe re-checks this shard."""
        # _next_due_ns unchanged — the confirmation probe is due now

    # ------------------------------------------------------------------
    def probe(self, t_ns: float) -> dict:
        """Fire one probe wave at the cursor shard.

        Returns ``{"shard", "outcome", "cost_ns", "bad_waves"}`` where
        ``outcome`` is one of:

        * ``"skip"``       — shard empty, chunked, or already dead;
        * ``"clean"``      — probe served and residues verified (or
          verification is off — nothing to check against);
        * ``"corrupt"``    — residues failed: a silent defect is live;
        * ``"dead_array"`` — the wave raised ``CrossbarDeadError``;
        * ``"crash"`` / ``"hang"`` — shard-level verdict, no wave fired.
        """
        s = self.cursor
        shard = self.manager.shards[s]
        recovery = self.manager.recovery
        self.probes += 1
        result = {"shard": s, "outcome": "skip", "cost_ns": 0.0, "bad_waves": 0}
        if (
            shard.controller is None
            or shard.n_rows == 0
            or not self.manager.health.alive(s)
        ):
            return self._finish(result)
        shard.advance_clock(t_ns)
        verdict = (
            shard.fault_engine.outcome(t_ns)
            if shard.fault_engine is not None
            else ShardVerdict("ok")
        )
        if verdict.status == "crash":
            result.update(outcome="crash", cost_ns=recovery.crash_detect_ns)
            return self._finish(result)
        if verdict.status == "hang":
            cost = recovery.dispatch_timeout_ns or recovery.crash_detect_ns
            result.update(outcome="hang", cost_ns=cost)
            shard.busy_ns += cost
            return self._finish(result)
        try:
            dots, pim_ns = shard.dot_products(self._queries)
        except CrossbarDeadError:
            result.update(
                outcome="dead_array", cost_ns=recovery.crash_detect_ns
            )
            return self._finish(result)
        pim_ns *= verdict.factor
        shard.busy_ns += pim_ns
        result["cost_ns"] = pim_ns
        result["outcome"] = "clean"
        if shard.verify and shard.n_rows:
            clean = np.atleast_1d(verify_wave_residues(dots, self._bits))
            bad = int(clean.size - np.count_nonzero(clean))
            if bad:
                result["outcome"] = "corrupt"
                result["bad_waves"] = bad
        return self._finish(result)

    def _finish(self, result: dict) -> dict:
        outcome = result["outcome"]
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("repair.scrub_probes").add(1)
            tele.metrics.counter(f"repair.scrub.{outcome}").add(1)
            with tele.span(
                "repair.scrub_probe", "repair",
                shard=result["shard"], outcome=outcome,
            ):
                pass  # zero-duration marker on the trace timeline
        return result

    def report(self) -> dict:
        """Probe accounting for the repair report."""
        return {
            "probes": self.probes,
            "sweeps": self.sweeps,
            "outcomes": dict(sorted(self.outcomes.items())),
            "interval_ns": self.interval_ns,
        }
