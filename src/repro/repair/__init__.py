"""Self-healing serving: scrubbing, spare-crossbar remap, re-replication.

The repair layer closes the loop PR-4 left open. Fault *tolerance*
(retries, failover, degraded recompute) keeps answers exact while a
fault is live; *repair* makes the fault go away: a background scrubber
re-verifies residue checksums during idle simulated time, confirmed
device faults are remapped onto each shard's spare-crossbar pool, lost
replicas are re-created under a bandwidth budget, and repaired shards
re-enter rotation through quarantine. All of it runs on the simulated
clock, interleaved with EDF dispatch — two runs of the same plan heal
identically, byte for byte.
"""

from repro.repair.controller import RepairController
from repro.repair.policy import RepairPolicy
from repro.repair.scrubber import BackgroundScrubber

__all__ = [
    "BackgroundScrubber",
    "RepairController",
    "RepairPolicy",
]
