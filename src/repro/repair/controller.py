"""The self-healing loop: detect, remap, re-replicate, re-admit.

:class:`RepairController` owns the
:class:`~repro.repair.scrubber.BackgroundScrubber` and turns its probe
outcomes into repairs, entirely within idle windows of the simulated
clock handed over by :meth:`advance`:

* a **corrupt** probe raises suspicion; ``probe_confirmations``
  consecutive failures confirm a *persistent* defect (a single hit could
  be a transient ``wave_corrupt``), at which point the controller asks
  the shard's :class:`~repro.faults.injectors.FaultyPIMArray` which
  device faults are live and remaps the affected data crossbars onto
  the shard's spare pool (wear-leveled, charged real reprogramming
  latency), then quarantines the shard via
  :meth:`~repro.serving.health.ShardHealthTracker.mark_repaired`;
* a **dead_array** probe is conclusive on its own — hard failures need
  no confirmation;
* a **crash** verdict marks the shard permanently dead, and any chunk
  below its target replica count is queued for **re-replication**: the
  chunk's bytes are copied from a surviving replica under the
  ``repair_bandwidth_bytes_per_s`` budget (split across idle windows),
  then the target shard's matrix is reprogrammed, checksum row included;
* when the spare pool is exhausted, a stuck shard is left to the
  per-query detection path and a dead one is declared unrepairable
  (permanently failed), falling through to re-replication.

Every decision lands in the event timeline (:meth:`drain_events`) the
:class:`~repro.serving.slo.SLOTracker` folds into the SLO report, and
:meth:`heal` finishes outstanding redundancy restoration after the last
request drains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import (
    CapacityError,
    ChunkUnavailableError,
    ServingError,
    WatchdogTimeoutError,
)
from repro.repair.policy import RepairPolicy
from repro.repair.scrubber import BackgroundScrubber
from repro.telemetry import get_recorder


@dataclass
class _Transfer:
    """One in-flight re-replication: copy phase, then program phase."""

    chunk: int
    target: int
    started_ns: float
    bytes: int
    remaining_ns: float
    phase: str = "copy"
    record: dict | None = None


class RepairController:
    """Drives scrubbing, spare-crossbar remap and live re-replication.

    The controller keeps its own monotone clock (``now_ns``): a probe
    that slightly overruns the handed-over window simply pushes the next
    window's start, so repair work never runs concurrently with itself.
    """

    def __init__(self, manager, policy: RepairPolicy | None = None) -> None:
        self.manager = manager
        self.policy = policy if policy is not None else RepairPolicy()
        self.scrubber = BackgroundScrubber(manager, self.policy)
        self.now_ns = 0.0
        self.busy_ns = 0.0
        self.detections = 0
        self.remaps = 0
        self.remap_ns = 0.0
        self.rereplications = 0
        self.rereplicated_bytes = 0
        self.events: list[dict] = []
        self._pending: list[_Transfer] = []
        self._suspicion: dict[int, int] = {}
        self._unrepairable: set[int] = set()
        self._dead_handled: set[int] = set()
        self._spread_noted: set[int] = set()

    # ------------------------------------------------------------------
    # idle-window scheduling
    # ------------------------------------------------------------------
    def advance(self, start_ns: float, end_ns: float) -> float:
        """Spend the idle window ``[start_ns, end_ns)`` on repair work.

        Redundancy restoration outranks scrubbing: queued re-replication
        transfers progress first (under the bandwidth budget), then due
        scrub probes fire. Returns the simulated time consumed.
        """
        t = max(float(start_ns), self.now_ns)
        end = float(end_ns)
        if end <= t:
            return 0.0
        t0 = t
        self._enqueue_missing(t)
        while t < end:
            if self._pending:
                t = self._transfer_step(t, end)
                continue
            due = self.scrubber.due_ns()
            if due >= end:
                break
            t = max(t, due)
            t += self._scrub_once(t)
        self.now_ns = max(self.now_ns, t)
        used = max(t - t0, 0.0)
        self.busy_ns += used
        return used

    def heal(self, now_ns: float, max_steps: int = 100_000) -> float:
        """Finish all outstanding re-replication after the run drains.

        Ignores scrub pacing — this is the end-of-run "restore every
        chunk to its target replica count" pass. Returns the simulated
        time at which the last transfer completed.
        """
        t = max(float(now_ns), self.now_ns)
        for _ in range(max_steps):
            self._enqueue_missing(t)
            if not self._pending:
                break
            t = self._transfer_step(t, math.inf)
        else:
            raise WatchdogTimeoutError(
                f"heal() made no progress after {max_steps} steps "
                f"({len(self._pending)} transfers stuck)"
            )
        self.now_ns = max(self.now_ns, t)
        return self.now_ns

    # ------------------------------------------------------------------
    # scrub outcomes -> repair decisions
    # ------------------------------------------------------------------
    def _scrub_once(self, t_ns: float) -> float:
        probe = self.scrubber.probe(t_ns)
        s = probe["shard"]
        outcome = probe["outcome"]
        cost = float(probe["cost_ns"])
        t_done = t_ns + cost
        health = self.manager.health
        if outcome in ("clean", "skip"):
            self._suspicion[s] = 0
            self.scrubber.advance(t_done)
        elif outcome == "crash":
            health.record_failure(s, t_done, permanent=True)
            self._suspicion[s] = 0
            self._event(t_done, "shard_dead", shard=s, via="scrub")
            self.scrubber.advance(t_done)
            self._enqueue_missing(t_done)
        elif outcome == "hang":
            health.record_failure(s, t_done)
            self.scrubber.advance(t_done)
        else:  # corrupt / dead_array
            self._suspicion[s] = self._suspicion.get(s, 0) + 1
            # a hard CrossbarDeadError is conclusive on its own; a bad
            # residue could be a transient wave_corrupt and needs the
            # policy's consecutive confirmations
            needed = (
                1
                if outcome == "dead_array"
                else self.policy.probe_confirmations
            )
            if self._suspicion[s] >= needed:
                self._suspicion[s] = 0
                cost += self._repair_shard(s, t_done)
                self.scrubber.advance(t_ns + cost)
            else:
                self.scrubber.hold()
        return cost

    def _repair_shard(self, s: int, t_ns: float) -> float:
        """Remap a confirmed-bad shard's faulty crossbars onto spares."""
        shard = self.manager.shards[s]
        health = self.manager.health
        faulty = shard.faulty
        events = (
            [
                e
                for e in faulty.repairable_events(t_ns)
                if id(e) not in self._unrepairable
            ]
            if faulty is not None
            else []
        )
        self.detections += 1
        self._event(
            t_ns, "detect", shard=s,
            faults=[e.describe() for e in events],
        )
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("repair.detections").add(1)
        if not events:
            # transient (wave_corrupt) or nothing the plan owns up to:
            # the per-query retry path absorbs it, nothing to remap
            return 0.0
        repaired = 0
        spent_ns = 0.0
        dead_beyond_repair = False
        window_open = False
        for event in events:
            old_ids = self._crossbars_of(shard, event)
            try:
                # pre-check the pool so a mid-loop exhaustion can't eat
                # spares without actually clearing the fault
                if shard.controller.pim.spares_remaining < len(old_ids):
                    raise CapacityError(
                        f"{shard.name}: {len(old_ids)} crossbars to remap, "
                        f"{shard.controller.pim.spares_remaining} spares left"
                    )
                # the remap is going ahead: open the outage window now
                # so the MTTR sample measures detection -> re-admission
                # (probation included) — opening it for a repair that
                # never runs (spares exhausted on a stuck shard) would
                # let the next routine success record a spurious
                # recovery sample
                if not window_open:
                    health.record_failure(s, t_ns)
                    window_open = True
                spares, ns = shard.faulty.remap_crossbars(old_ids)
            except CapacityError:
                self._unrepairable.add(id(event))
                self._event(
                    t_ns + spent_ns, "spares_exhausted",
                    shard=s, fault=event.describe(),
                )
                if event.kind == "crossbar_dead":
                    dead_beyond_repair = True
                continue
            shard.faulty.mark_repaired(event)
            repaired += 1
            spent_ns += ns
            self.remaps += len(old_ids)
            self.remap_ns += ns
            self._event(
                t_ns + spent_ns, "remap",
                shard=s, crossbars=old_ids, spares=spares,
                reprogram_ns=ns, fault=event.describe(),
            )
        if dead_beyond_repair:
            # the array cannot answer and no spare can bring it back:
            # declare the shard dead and let re-replication take over
            health.record_failure(s, t_ns + spent_ns, permanent=True)
            self._event(
                t_ns + spent_ns, "shard_dead", shard=s, via="spares_exhausted"
            )
            self._enqueue_missing(t_ns + spent_ns)
        elif repaired:
            probes = self.policy.quarantine_probes
            health.mark_repaired(s, t_ns + spent_ns, probes)
            self._event(
                t_ns + spent_ns, "quarantine",
                shard=s,
                probes=(
                    probes
                    if probes is not None
                    else self.manager.recovery.quarantine_probes
                ),
            )
        return spent_ns

    @staticmethod
    def _crossbars_of(shard, event) -> list[int]:
        """Physical crossbar ids a repairable fault touches.

        Data crossbars are group-major: vector group ``g`` (of
        ``vectors_per_crossbar`` vectors) occupies the ``g``-th run of
        ``stack = ceil(dims/rows)`` consecutive ids of the matrix's
        allocation; gather crossbars occupy the tail. A ``stuck_cells``
        event maps through its affected vectors to whole groups; a
        ``crossbar_dead`` event has no vector footprint — remapping the
        first data crossbar models swapping the failed device.
        """
        pim = shard.controller.pim
        name = shard.name
        ids = pim.crossbar_ids_of(name)
        layout = pim.layouts()[name]
        if event.kind != "stuck_cells":
            return ids[:1]
        vectors = shard.faulty.affected_vectors(name, event)
        vpc = layout.vectors_per_crossbar
        n_groups = math.ceil(layout.n_vectors / vpc)
        stack = max(layout.n_data_crossbars // max(n_groups, 1), 1)
        groups = sorted({int(v) // vpc for v in vectors})
        out: list[int] = []
        for g in groups:
            out.extend(ids[g * stack : (g + 1) * stack])
        return out or ids[:1]

    # ------------------------------------------------------------------
    # live re-replication
    # ------------------------------------------------------------------
    def _target_replication(self) -> int:
        if self.policy.target_replication is not None:
            return self.policy.target_replication
        return self.manager.replication

    def _enqueue_missing(self, t_ns: float) -> int:
        """Queue a transfer for every chunk below its replica target.

        Target selection defers to ``manager.replica_target_score``:
        least-loaded shard first historically, and — with a failure-
        domain topology attached — domain-disjoint shards before
        co-domain ones, so repair restores *spread*, not just count.
        A chunk already at its target count but whose surviving
        replicas all share one failure domain (``manager.chunk_risk``)
        gets one extra domain-disjoint copy when a shard outside that
        domain can host it: count-only repair would declare victory
        while the next correlated outage still takes every copy.
        """
        manager = self.manager
        if manager.chunked:
            return 0  # chunked shards reprogram per chunk; no remap substrate
        health = manager.health
        alive = [s for s in range(manager.n_shards) if health.alive(s)]
        target_k = min(self._target_replication(), len(alive))
        inflight: dict[int, int] = {}
        targeted: set[tuple[int, int]] = set()
        for tr in self._pending:
            inflight[tr.chunk] = inflight.get(tr.chunk, 0) + 1
            targeted.add((tr.chunk, tr.target))
        queued = 0
        for c in range(manager.n_chunks):
            live = manager.live_replicas(c)
            if not live:
                # no surviving copy anywhere: degraded recompute is the
                # only recourse; note it once so the timeline shows why
                if c not in self._dead_handled:
                    self._dead_handled.add(c)
                    self._event(t_ns, "unrecoverable", chunk=c)
                continue
            deficit = target_k - len(live) - inflight.get(c, 0)
            rows = int(manager.chunk_rows[c].size)
            while deficit > 0:
                # a target must be able to fit the appended chunk — its
                # array shrank by the spare reservation, so the smallest
                # shard is not automatically a legal host (concurrent
                # in-flight transfers are re-checked at program time by
                # add_replica's own pre-check)
                candidates = [
                    s
                    for s in alive
                    if c not in manager.shards[s].chunk_slices
                    and (c, s) not in targeted
                    and manager.shards[s].can_host(rows, manager.verify)
                ]
                if not candidates:
                    break
                tgt = min(
                    candidates,
                    key=lambda s: manager.replica_target_score(c, s),
                )
                size = manager.chunk_bytes(c)
                self._pending.append(
                    _Transfer(
                        chunk=c,
                        target=tgt,
                        started_ns=t_ns,
                        bytes=size,
                        remaining_ns=size * self.policy.copy_ns_per_byte,
                    )
                )
                targeted.add((c, tgt))
                inflight[c] = inflight.get(c, 0) + 1
                deficit -= 1
                queued += 1
                self._event(
                    t_ns, "rereplicate_start",
                    chunk=c, target=tgt, bytes=size,
                )
            if (
                deficit <= 0
                and not inflight.get(c)
                and manager.topology is not None
                and manager.spread
                and manager.chunk_risk(c) is not None
            ):
                spread_candidates = [
                    s
                    for s in alive
                    if c not in manager.shards[s].chunk_slices
                    and (c, s) not in targeted
                    and manager.shards[s].can_host(rows, manager.verify)
                    and manager.replica_target_score(c, s)[0] == 0
                ]
                if not spread_candidates:
                    if c not in self._spread_noted:
                        self._spread_noted.add(c)
                        self._event(
                            t_ns, "spread_unrestorable",
                            chunk=c, level=manager.chunk_risk(c),
                        )
                    continue
                self._spread_noted.discard(c)
                tgt = min(
                    spread_candidates,
                    key=lambda s: manager.replica_target_score(c, s),
                )
                size = manager.chunk_bytes(c)
                self._pending.append(
                    _Transfer(
                        chunk=c,
                        target=tgt,
                        started_ns=t_ns,
                        bytes=size,
                        remaining_ns=size * self.policy.copy_ns_per_byte,
                    )
                )
                targeted.add((c, tgt))
                inflight[c] = inflight.get(c, 0) + 1
                queued += 1
                self._event(
                    t_ns, "rereplicate_start",
                    chunk=c, target=tgt, bytes=size, spread_repair=True,
                )
        return queued

    def _transfer_step(self, t_ns: float, end_ns: float) -> float:
        """Progress the head transfer; returns the new simulated time."""
        tr = self._pending[0]
        step = min(tr.remaining_ns, end_ns - t_ns)
        tr.remaining_ns -= step
        t_ns += step
        if tr.remaining_ns > 1e-9:
            return t_ns  # window exhausted mid-phase; resume next window
        if tr.phase == "copy":
            try:
                record = self.manager.add_replica(tr.chunk, tr.target)
            except (CapacityError, ChunkUnavailableError, ServingError) as exc:
                self._pending.pop(0)
                self._event(
                    t_ns, "rereplicate_failed",
                    chunk=tr.chunk, target=tr.target, reason=str(exc),
                )
                return t_ns
            tr.record = record
            tr.phase = "program"
            tr.remaining_ns = float(record["program_ns"])
            return t_ns
        # program phase finished: the replica is live
        self._pending.pop(0)
        self.rereplications += 1
        self.rereplicated_bytes += tr.bytes
        record = dict(tr.record or {})
        record.update(duration_ns=t_ns - tr.started_ns)
        self._event(t_ns, "rereplicate_done", **record)
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("repair.rereplications").add(1)
            tele.metrics.counter("repair.rereplicated_bytes").add(tr.bytes)
        return t_ns

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _event(self, t_ns: float, kind: str, **attrs) -> None:
        self.events.append({"t_ns": float(t_ns), "kind": kind, **attrs})
        tele = get_recorder()
        if tele.enabled:
            # each repair action is its own root span on the repair
            # track: timeline events are stamped at completion, so the
            # span covers the action's known duration ending at t_ns
            duration = attrs.get("duration_ns", attrs.get("reprogram_ns", 0.0))
            try:
                duration = max(0.0, float(duration))
            except (TypeError, ValueError):
                duration = 0.0
            start = max(0.0, float(t_ns) - duration)
            safe = {
                k: v
                for k, v in attrs.items()
                if isinstance(v, (str, int, float, bool, type(None)))
            }
            tele.record_span(
                f"repair.{kind}", "repair", start, float(t_ns),
                trace_id=tele.mint_id("t"), track="repair", **safe,
            )

    def drain_events(self) -> list[dict]:
        """Timeline events recorded since the last drain."""
        out = self.events
        self.events = []
        return out

    def report(self) -> dict:
        """The repair loop's own dashboard (folded into SLO summaries)."""
        manager = self.manager
        spares = [
            (
                shard.controller.pim.spares_remaining
                if shard.controller is not None
                else 0
            )
            for shard in manager.shards
        ]
        return {
            "scrub": self.scrubber.report(),
            "detections": self.detections,
            "remaps": self.remaps,
            "remap_ns": self.remap_ns,
            "rereplications": self.rereplications,
            "rereplicated_bytes": self.rereplicated_bytes,
            "pending_transfers": len(self._pending),
            "spares_remaining": spares,
            "replica_counts": manager.replica_counts(),
            "at_risk_chunks": manager.spread_report()["n_at_risk"],
            "busy_ns": self.busy_ns,
        }
