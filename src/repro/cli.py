"""Command-line interface: ``python -m repro <command>``.

Runs the paper's pipeline from a shell without writing code:

* ``info`` — the simulated platforms and the dataset catalog;
* ``knn`` — accelerate a kNN baseline on a catalog dataset;
* ``kmeans`` — accelerate a k-means baseline;
* ``profile`` — Section IV profiling of a baseline (components,
  functions, PIM-oracle);
* ``serve`` — sharded multi-array query serving with admission control
  and SLO tracking (the ``repro.serving`` subsystem).

Examples::

    python -m repro info
    python -m repro knn --dataset MSD --algorithm FNN --k 10 --optimize-plan
    python -m repro kmeans --dataset Year --algorithm Drake --k 64
    python -m repro profile --dataset MSD --algorithm Standard --task knn
    python -m repro serve --dataset MSD --shards 4 --requests 200
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.core.framework import PIMAccelerator
from repro.core.profiler import profile_kmeans, profile_knn
from repro.core.report import (
    format_batch_stats,
    format_fractions,
    format_table,
)
from repro.data.catalog import PROFILES, make_dataset, make_queries
from repro.hardware.config import pim_platform
from repro.mining.kmeans import initial_centers, make_kmeans
from repro.mining.knn import make_baseline

KNN_ALGORITHMS = ("Standard", "OST", "SM", "FNN")
KMEANS_ALGORITHMS = ("Standard", "Elkan", "Drake", "Yinyang")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="MSD", choices=sorted(PROFILES),
        help="Table 6 dataset stand-in",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="override the scaled dataset cardinality",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="dataset RNG seed"
    )
    parser.add_argument(
        "--pim-mib", type=int, default=2048,
        help="PIM array capacity in MiB (paper default: 2048)",
    )
    parser.add_argument(
        "--data-file", default=None,
        help=(
            "run on your own dataset (.npy/.npz/.csv/.txt; min-max "
            "normalised automatically) instead of the synthetic catalog"
        ),
    )
    add_telemetry_args(parser)


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace-out``/``--metrics-out`` options.

    Pair with :func:`telemetry_scope`; benchmarks reuse both so every
    entry point exposes identical telemetry wiring.
    """
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help=(
            "record simulated-clock spans and write a Chrome/Perfetto "
            "trace file (open at https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="record telemetry metrics and write a JSONL snapshot",
    )
    parser.add_argument(
        "--prom-out", default=None, metavar="FILE",
        help=(
            "record telemetry metrics and write a Prometheus-style "
            "text snapshot (latency histograms carry exemplar trace ids)"
        ),
    )


@contextmanager
def telemetry_scope(args: argparse.Namespace, out=None) -> Iterator:
    """Run a block under telemetry when the shared flags ask for it.

    Yields the active recorder (or ``None`` when neither flag is set)
    and writes the requested trace/metrics files on exit — the wiring
    previously duplicated by every subcommand.
    """
    out = out if out is not None else sys.stdout
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    prom_out = getattr(args, "prom_out", None)
    if trace_out is None and metrics_out is None and prom_out is None:
        yield None
        return

    from repro.telemetry import telemetry_session
    from repro.telemetry.export import (
        summarize_metrics,
        write_chrome_trace,
        write_metrics_jsonl,
        write_prometheus,
    )

    with telemetry_session() as tele:
        yield tele
    if trace_out is not None:
        n_events = write_chrome_trace(tele, trace_out)
        print(f"trace written  : {trace_out} ({n_events} events)", file=out)
    if metrics_out is not None:
        n_lines = write_metrics_jsonl(tele, metrics_out)
        print(f"metrics written: {metrics_out} ({n_lines} lines)", file=out)
        print(summarize_metrics(tele), file=out)
    if prom_out is not None:
        n_series = write_prometheus(tele, prom_out)
        print(
            f"prom written   : {prom_out} ({n_series} series)", file=out
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Accelerating Similarity-based Mining Tasks "
            "on High-dimensional Data by Processing-in-memory' (ICDE'21)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show platforms and dataset catalog")

    knn = sub.add_parser("knn", help="accelerate a kNN baseline")
    _add_common(knn)
    knn.add_argument(
        "--algorithm", default="Standard", choices=KNN_ALGORITHMS
    )
    knn.add_argument("--k", type=int, default=10)
    knn.add_argument("--queries", type=int, default=5)
    knn.add_argument(
        "--measure", default="euclidean",
        choices=("euclidean", "cosine", "pearson"),
    )
    knn.add_argument(
        "--optimize-plan", action="store_true",
        help="apply the Section V-D execution-plan optimizer (FNN only)",
    )
    knn.add_argument(
        "--batch-size", type=_positive_int, default=None,
        help="PIM wave batch size (default: the whole query workload; "
        "1 reproduces scalar dispatch)",
    )
    knn.add_argument(
        "--pim", action="store_true",
        help=(
            "profile only the PIM-optimized variant (no baseline or "
            "verification runs, so the trace's pim_dispatch spans sum "
            "exactly to the reported PIM wave time)"
        ),
    )
    knn.add_argument(
        "--substrate", default="crossbar", metavar="NAME",
        help=(
            "memory-side compute backend for --pim runs (registered: "
            "crossbar, hbm_pim); results are bit-identical, only the "
            "cost model changes"
        ),
    )

    kmeans = sub.add_parser("kmeans", help="accelerate a k-means baseline")
    _add_common(kmeans)
    kmeans.add_argument(
        "--algorithm", default="Standard", choices=KMEANS_ALGORITHMS
    )
    kmeans.add_argument("--k", type=int, default=16)
    kmeans.add_argument("--max-iters", type=int, default=10)

    profile = sub.add_parser(
        "profile", help="Section IV profiling of a baseline"
    )
    _add_common(profile)
    profile.add_argument("--task", default="knn", choices=("knn", "kmeans"))
    profile.add_argument("--algorithm", default="Standard")
    profile.add_argument("--k", type=int, default=10)

    serve = sub.add_parser(
        "serve", help="sharded multi-array query serving (repro.serving)"
    )
    _add_common(serve)
    serve.add_argument(
        "--shards", type=_positive_int, default=4,
        help="PIM arrays the dataset is partitioned across",
    )
    serve.add_argument(
        "--placement", default="range", choices=("range", "hash")
    )
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument(
        "--requests", type=_positive_int, default=200,
        help="open-loop arrivals to serve",
    )
    serve.add_argument(
        "--rate", type=float, default=None, metavar="QPS",
        help=(
            "offered load in simulated queries/second (default: sized "
            "to ~80%% of the measured single-node capacity)"
        ),
    )
    serve.add_argument(
        "--arrival", default="poisson", choices=("poisson", "bursty")
    )
    serve.add_argument(
        "--max-batch", type=_positive_int, default=8,
        help="requests per dispatched PIM batch wave",
    )
    serve.add_argument(
        "--queue-capacity", type=_positive_int, default=64
    )
    serve.add_argument(
        "--policy", default="reject",
        choices=("reject", "drop_oldest", "degrade"),
        help="backpressure when the admission queue is full",
    )
    serve.add_argument(
        "--deadline-us", type=float, default=None,
        help="per-request deadline (simulated us); late requests shed",
    )
    serve.add_argument(
        "--tenants", type=_positive_int, default=2,
        help="tenants in the mix (workload kinds rotate per tenant)",
    )
    serve.add_argument(
        "--replication", type=_positive_int, default=1,
        help="replicas per data chunk (>=2 survives a shard death)",
    )
    serve.add_argument(
        "--substrates", default=None, metavar="NAME[,NAME...]",
        help=(
            "substrate per shard: one name for a uniform fleet, or a "
            "comma list naming each shard's backend (heterogeneous "
            "placement; e.g. crossbar,hbm_pim,crossbar,hbm_pim)"
        ),
    )
    serve.add_argument(
        "--route", default="auto",
        choices=("auto", "latency", "energy", "none"),
        help=(
            "cost-router objective for replica selection: auto prices "
            "by latency on heterogeneous placements and stays off on "
            "uniform ones"
        ),
    )
    serve.add_argument(
        "--topology", default=None, metavar="SxBxC",
        help=(
            "failure-domain tree as shards-per-board x boards-per-"
            "channel x channels-per-power-domain (e.g. 2x2x1); turns "
            "on domain-spread replica placement and the durability "
            "accounting (at-risk chunks, spread violations)"
        ),
    )
    serve.add_argument(
        "--naive-placement", action="store_true",
        help=(
            "with --topology, keep the historical domain-oblivious "
            "ring placement (the naive arm of the DR comparison) "
            "while still reporting spread/at-risk accounting"
        ),
    )
    serve.add_argument(
        "--domain-outage", type=_positive_int, default=None,
        nargs="?", const=1, metavar="N",
        help=(
            "inject a seeded correlated outage: every shard of N "
            "whole power domains crashes simultaneously mid-run "
            "(requires --topology; composable with --chaos/--gray-chaos)"
        ),
    )
    serve.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help=(
            "write a crash-consistent checkpoint of the fleet to FILE "
            "after the run drains (atomic write-then-rename, SHA-256 "
            "integrity hashes)"
        ),
    )
    serve.add_argument(
        "--restore", default=None, metavar="FILE",
        help=(
            "cold-start the fleet from a checkpoint instead of "
            "building it fresh: dataset, placement, replication and "
            "topology come from the checkpoint (bit-identical "
            "answers); workload flags still shape the traffic"
        ),
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help=(
            "inject a seeded chaos fault plan (one shard killed "
            "mid-run, one corrupting waves) and report recovery"
        ),
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed of the chaos fault plan (with --chaos)",
    )
    serve.add_argument(
        "--gray-chaos", action="store_true",
        help=(
            "inject a seeded gray-failure plan (a sustained straggler "
            "shard, an intermittently slow shard and a flaky "
            "host<->shard link) — slow-but-correct weather, "
            "composable with --chaos"
        ),
    )
    serve.add_argument(
        "--outlier-ejection", action="store_true",
        help=(
            "enable the gray-failure defenses: latency-outlier "
            "detection with ejection + probed re-admission, "
            "observed-latency replica routing, and adaptive "
            "p95-triggered hedging"
        ),
    )
    serve.add_argument(
        "--hedge-budget", type=float, default=None, metavar="FRACTION",
        help=(
            "cap hedged waves at this fraction of dispatch attempts "
            "(implies --outlier-ejection)"
        ),
    )
    serve.add_argument(
        "--brownout", action="store_true",
        help=(
            "degrade overflow to approximate service instead of "
            "shedding while an SLO burn-rate alert is firing"
        ),
    )
    serve.add_argument(
        "--repair", action="store_true",
        help=(
            "attach the self-healing loop (repro.repair): background "
            "scrubbing during idle time, spare-crossbar remap of "
            "confirmed device faults, live re-replication of lost "
            "chunks, quarantine re-admission"
        ),
    )
    serve.add_argument(
        "--spares", type=int, default=0, metavar="N",
        help=(
            "spare crossbars reserved per shard as the remap pool "
            "(typically used with --repair)"
        ),
    )
    serve.add_argument(
        "--scrub-period", type=float, default=50_000.0, metavar="US",
        help=(
            "background scrub sweep period in simulated microseconds "
            "(with --repair); every shard is re-verified once per period"
        ),
    )
    serve.add_argument(
        "--live-report", nargs="?", const=500.0, default=None,
        type=float, metavar="US",
        help=(
            "print a periodic operational dashboard line every US "
            "simulated microseconds (default period: 500)"
        ),
    )
    serve.add_argument(
        "--burn-window-us", type=float, default=500.0, metavar="US",
        help=(
            "base window of the SLO burn-rate alert rules in simulated "
            "microseconds (fast rule: this window @ 14.4x; slow rule: "
            "6x this window @ 6x)"
        ),
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_info(out) -> int:
    platform = pim_platform()
    print("Simulated PIM platform (paper Table 5):", file=out)
    rows = [
        ["CPU", f"{platform.cpu.frequency_hz / 1e9:.2f} GHz"],
        ["caches", "32 KB / 256 KB / 20 MB"],
        ["total memory", f"{platform.memory.total_bytes // 1024**3} GB"],
        ["PIM array", f"{platform.pim.capacity_bytes // 1024**3} GB"
                      f" ({platform.pim.num_crossbars} crossbars)"],
        ["crossbar", f"{platform.pim.crossbar.rows}x"
                     f"{platform.pim.crossbar.cols}, "
                     f"{platform.pim.crossbar.cell_bits}-bit cells"],
        ["internal bus", f"{platform.memory.internal_bus_gbs:.0f} GB/s"],
    ]
    print(format_table(["component", "value"], rows), file=out)
    from repro.substrate import available_substrates, substrate_capabilities

    print("\nRegistered compute substrates:", file=out)
    rows = []
    for name in available_substrates():
        caps = substrate_capabilities(name, platform)
        desc = caps.describe()
        rows.append(
            [
                name,
                desc["unit_name"],
                desc["memory_device"],
                f"{desc['endurance']:.0e}",
            ]
        )
    print(
        format_table(["substrate", "unit", "device", "endurance"], rows),
        file=out,
    )
    print("\nDataset catalog (scaled Table 6 stand-ins):", file=out)
    rows = [
        [p.name, p.dims, p.default_n, f"{p.paper_n:,}", p.description]
        for p in PROFILES.values()
    ]
    print(
        format_table(
            ["dataset", "d", "scaled N", "paper N", "character"], rows
        ),
        file=out,
    )
    return 0


def _platform(args):
    return pim_platform(pim_capacity_bytes=args.pim_mib * 1024**2)


def _load_data(args):
    """The workload matrix: a user file or the synthetic catalog."""
    if args.data_file is not None:
        from repro.data.loaders import load_matrix

        return load_matrix(args.data_file, max_rows=args.n)
    return make_dataset(args.dataset, n=args.n, seed=args.seed)


def _cmd_knn(args, out) -> int:
    data = _load_data(args)
    if args.data_file is not None:
        from repro.data.synthetic import queries_from

        queries = queries_from(data, args.queries, seed=args.seed + 1)
    else:
        queries = make_queries(args.dataset, data, n_queries=args.queries)
    if args.pim:
        return _cmd_knn_pim(args, data, queries, out)
    accelerator = PIMAccelerator(hardware=_platform(args))
    report = accelerator.accelerate_knn(
        args.algorithm,
        data,
        queries,
        k=args.k,
        measure=args.measure,
        optimize_plan=args.optimize_plan,
        batch_size=args.batch_size,
    )
    label = args.data_file if args.data_file else args.dataset
    print(f"dataset        : {label} {data.shape}", file=out)
    print(f"baseline       : {report.baseline.total_time_ms:.3f} ms", file=out)
    print(f"PIM-optimized  : {report.optimized.total_time_ms:.3f} ms", file=out)
    print(f"speedup        : {report.speedup:.1f}x "
          f"(oracle {report.oracle_speedup:.1f}x)", file=out)
    print(f"results exact  : {report.results_match}", file=out)
    print(f"bound plan     : {' + '.join(report.plan)}", file=out)
    batching = format_batch_stats(report.optimized.extras)
    if batching:
        print(f"batching       : {batching}", file=out)
    for note in report.notes:
        print(f"note           : {note}", file=out)
    return 0 if report.results_match else 1


def _cmd_knn_pim(args, data, queries, out) -> int:
    """Profile only the PIM variant (``knn --pim``).

    Nothing besides the profiled workload touches the controller, so
    the summed ``pim_dispatch`` span durations in a recorded trace
    equal the reported PIM wave time exactly (programming waves are
    charged separately under ``pim_program``).
    """
    from repro.hardware.controller import PIMController
    from repro.mining.knn import make_pim_variant

    n, dims = data.shape
    controller = PIMController(_platform(args), substrate=args.substrate)
    algo = make_pim_variant(
        args.algorithm + "-PIM",
        dims,
        n,
        measure=args.measure,
        controller=controller,
    )
    algo.fit(data)
    profile = profile_knn(
        algo,
        queries,
        args.k,
        batch_size=(
            args.batch_size if args.batch_size is not None else len(queries)
        ),
    )
    label = args.data_file if args.data_file else args.dataset
    print(f"dataset        : {label} {data.shape}", file=out)
    print(f"substrate      : {args.substrate}", file=out)
    print(f"algorithm      : {profile.name}", file=out)
    print(f"total time     : {profile.total_time_ms:.3f} ms", file=out)
    print(f"CPU time       : {profile.cpu_time_ns / 1e6:.3f} ms", file=out)
    print(f"PIM wave time  : {profile.pim_time_ns / 1e6:.3f} ms", file=out)
    batching = format_batch_stats(profile.extras)
    if batching:
        print(f"batching       : {batching}", file=out)
    return 0


def _cmd_kmeans(args, out) -> int:
    data = _load_data(args)
    accelerator = PIMAccelerator(hardware=_platform(args))
    report = accelerator.accelerate_kmeans(
        args.algorithm, data, k=args.k, max_iters=args.max_iters
    )
    iters = report.baseline.extras["n_iterations"]
    label = args.data_file if args.data_file else args.dataset
    print(f"dataset        : {label} {data.shape}", file=out)
    print(f"iterations     : {iters:.0f}", file=out)
    print(
        f"baseline       : "
        f"{report.baseline.extras['time_per_iteration_ms']:.3f} ms/iter",
        file=out,
    )
    print(
        f"PIM-optimized  : "
        f"{report.optimized.extras['time_per_iteration_ms']:.3f} ms/iter",
        file=out,
    )
    print(f"speedup        : {report.speedup:.1f}x "
          f"(oracle {report.oracle_speedup:.1f}x)", file=out)
    print(f"same clustering: {report.results_match}", file=out)
    for note in report.notes:
        print(f"note           : {note}", file=out)
    return 0 if report.results_match else 1


def _cmd_profile(args, out) -> int:
    data = _load_data(args)
    if args.task == "knn":
        queries = make_queries(args.dataset, data, n_queries=3)
        algo = make_baseline(args.algorithm, data.shape[1])
        profile = profile_knn(algo.fit(data), queries, args.k)
    else:
        centers = initial_centers(data, args.k, seed=1)
        algo = make_kmeans(args.algorithm, args.k, max_iters=5)
        profile = profile_kmeans(algo, data, centers=centers)
    print(f"algorithm      : {profile.name}", file=out)
    print(f"total time     : {profile.total_time_ms:.3f} ms", file=out)
    print("components     : "
          + format_fractions(profile.component_fractions()), file=out)
    print("functions      : "
          + format_fractions(profile.function_fractions()), file=out)
    print(f"PIM-oracle     : {profile.pim_oracle_ns / 1e6:.4f} ms "
          f"({profile.oracle_speedup:.1f}x potential)", file=out)
    print(f"offloadable    : {', '.join(profile.offloadable)}", file=out)
    return 0


def _format_shard_health(entry: dict) -> str:
    """One shard's health snapshot as a compact ``shardN=status`` token."""
    status = entry["status"]
    detail = ""
    if status == "dead" and entry["dead_since_ns"] is not None:
        detail = f"@{entry['dead_since_ns'] / 1e6:.1f}ms"
    elif status == "quarantine":
        detail = f"({entry['quarantine_left']} probes left)"
    elif status == "open" and entry["open_until_ns"] is not None:
        detail = f"(until {entry['open_until_ns'] / 1e6:.1f}ms)"
    elif status == "ejected":
        detail = f"(susp {entry.get('suspicion', 0.0):.1f})"
    token = f"shard{entry['shard']}={status}{detail}"
    # the detector's view, when one is attached: suspicion score and
    # the observed service-time p95 behind routing/hedging decisions
    p95 = entry.get("observed_p95_ns")
    if p95 is not None:
        token += f"[p95 {p95 / 1e3:.1f}us"
        if status != "ejected" and entry.get("suspicion", 0.0) > 0.0:
            token += f", susp {entry['suspicion']:.1f}"
        token += "]"
    return token


def _cmd_serve(args, out) -> int:
    from repro.data.workloads import KINDS, make_workload
    from repro.serving import (
        QueryService,
        ShardManager,
        TenantSpec,
        WorkloadDriver,
    )

    data = _load_data(args)
    substrates = args.substrates
    if substrates is not None and "," in substrates:
        substrates = [name.strip() for name in substrates.split(",")]
    tenants = [
        TenantSpec(
            name=f"tenant{i}",
            workload=KINDS[i % len(KINDS)],
            k=args.k,
        )
        for i in range(args.tenants)
    ]
    rate = args.rate
    if rate is None:
        # probe one full batch on a throwaway clean manager to size the
        # offered load at ~80% of the node's capacity
        probe_manager = ShardManager(
            data,
            n_shards=args.shards,
            placement=args.placement,
            hardware=_platform(args),
            seed=args.seed,
            substrates=substrates,
            route=args.route,
        )
        probe = make_workload(
            data, "near", n_queries=args.max_batch, seed=args.seed + 7
        )
        _, timing = probe_manager.knn_batch(probe, args.k)
        rate = 0.8 * args.max_batch * 1e9 / timing.service_ns
    topology = None
    if args.topology is not None:
        from repro.hardware import FailureDomainTopology

        try:
            spb, bpc, cpp = (
                int(part) for part in args.topology.lower().split("x")
            )
        except ValueError:
            raise SystemExit(
                f"--topology expects SxBxC (e.g. 2x2x1), got "
                f"{args.topology!r}"
            )
        topology = FailureDomainTopology(
            n_shards=args.shards,
            shards_per_board=spb,
            boards_per_channel=bpc,
            channels_per_power_domain=cpp,
        )
    if args.domain_outage is not None and topology is None:
        raise SystemExit("--domain-outage requires --topology")
    fault_plan = None
    horizon_ns = args.requests / rate * 1e9
    if args.chaos:
        from repro.faults import FaultPlan

        # horizon = expected run length, so the kill lands mid-run
        fault_plan = FaultPlan.chaos(
            args.shards,
            horizon_ns=horizon_ns,
            seed=args.fault_seed,
        )
    if args.gray_chaos:
        from repro.faults import FaultPlan

        gray = FaultPlan.gray_chaos(
            args.shards, horizon_ns=horizon_ns, seed=args.fault_seed + 1
        )
        fault_plan = (
            gray
            if fault_plan is None
            else FaultPlan(
                fault_plan.events + gray.events, seed=args.fault_seed
            )
        )
    if args.domain_outage is not None:
        from repro.faults import FaultPlan

        outage = FaultPlan.domain_outage(
            topology,
            horizon_ns=horizon_ns,
            seed=args.fault_seed + 2,
            outage_domains=args.domain_outage,
        )
        fault_plan = (
            outage
            if fault_plan is None
            else FaultPlan(
                fault_plan.events + outage.events, seed=args.fault_seed
            )
        )
    recovery = None
    if args.outlier_ejection or args.hedge_budget is not None:
        from repro.serving import RecoveryPolicy

        recovery = RecoveryPolicy(
            outlier_ejection=True,
            adaptive_hedge=True,
            hedge_budget=args.hedge_budget,
        )
    if args.restore is not None:
        from repro.checkpoint import restore_manager

        manager = restore_manager(
            args.restore,
            hardware=_platform(args),
            fault_plan=fault_plan,
            recovery=recovery,
        )
        data = manager.source_data
    else:
        manager = ShardManager(
            data,
            n_shards=args.shards,
            placement=args.placement,
            hardware=_platform(args),
            seed=args.seed,
            replication=args.replication,
            fault_plan=fault_plan,
            recovery=recovery,
            spare_crossbars=args.spares,
            substrates=substrates,
            route=args.route,
            topology=topology,
            spread=not args.naive_placement,
        )
    repair = None
    if args.repair:
        from repro.repair import RepairController, RepairPolicy

        repair = RepairController(
            manager,
            RepairPolicy(scrub_period_ns=args.scrub_period * 1e3),
        )
    driver = WorkloadDriver(data, tenants, seed=args.seed)
    requests = driver.open_loop(
        rate, args.requests, arrival=args.arrival
    )
    from repro.observability import BurnRateMonitor, LiveReport

    monitor = BurnRateMonitor(base_window_ns=args.burn_window_us * 1e3)
    brownout = None
    if args.brownout:
        from repro.observability import BrownoutController

        brownout = BrownoutController(monitor)
    live_report = None
    if args.live_report is not None:
        live_report = LiveReport(
            period_ns=args.live_report * 1e3, out=out
        )
    service = QueryService(
        manager,
        tenants,
        max_batch=args.max_batch,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        default_deadline_ns=(
            args.deadline_us * 1e3 if args.deadline_us is not None else None
        ),
        repair=repair,
        monitor=monitor,
        brownout=brownout,
        live_report=live_report,
    )
    service.run(requests)
    summary = service.summary()
    label = args.data_file if args.data_file else args.dataset
    print(f"dataset        : {label} {data.shape}", file=out)
    print(
        f"shards         : {manager.n_shards} x "
        f"{manager.placement.kind} (rows {manager.shard_sizes()})",
        file=out,
    )
    if args.restore is not None:
        print(
            f"restored       : {args.restore} (recovery point "
            f"{manager.last_checkpoint_ns / 1e6:.3f} ms)",
            file=out,
        )
    if len(set(manager.substrates)) > 1 or manager._router is not None:
        routing = manager.routing_report()
        winners: dict[str, int] = {}
        for decision in routing["decisions"]:
            name = decision["winner_substrate"]
            winners[name] = winners.get(name, 0) + 1
        won = " ".join(
            f"{name}={count}" for name, count in sorted(winners.items())
        )
        print(
            f"substrates     : {' '.join(manager.substrates)}",
            file=out,
        )
        print(
            f"routing        : {routing['objective'] or 'off'} "
            f"(winners {won or 'none'})",
            file=out,
        )
    print(
        f"offered        : {summary['offered']} requests @ "
        f"{rate:,.0f} qps ({args.arrival})",
        file=out,
    )
    print(
        f"completed      : {summary['completed']} "
        f"({summary['degraded']} degraded)",
        file=out,
    )
    sheds = (
        " ".join(
            f"{reason}={count}"
            for reason, count in sorted(summary["shed_reasons"].items())
        )
        or "none"
    )
    print(
        f"shed           : {summary['shed']} "
        f"({summary['shed_rate']:.1%}; {sheds})",
        file=out,
    )
    print(
        f"throughput     : {summary['throughput_qps']:,.0f} qps (simulated)",
        file=out,
    )
    print(
        "latency        : "
        f"p50 {summary['p50_ns'] / 1e3:.1f} us  "
        f"p95 {summary['p95_ns'] / 1e3:.1f} us  "
        f"p99 {summary['p99_ns'] / 1e3:.1f} us",
        file=out,
    )
    utils = " ".join(
        f"{u:.0%}" for u in summary.get("shard_utilization", [])
    )
    print(f"utilization    : {utils}", file=out)
    if fault_plan is not None:
        rec = summary["recovery"]
        print(
            f"chaos plan     : {fault_plan.describe()}",
            file=out,
        )
        print(
            f"availability   : {summary['availability']:.2%} "
            f"(retry rate {summary['retry_rate']:.2%}, "
            f"mttr {summary['mttr_ns'] / 1e6:.2f} ms)",
            file=out,
        )
        print(
            "recovery       : "
            f"crashes={rec['crashes']} timeouts={rec['timeouts']} "
            f"corrupt={rec['corrupt_detected']} "
            f"failovers={rec['failovers']} retries={rec['retries']} "
            f"degraded_chunks={rec['degraded_chunks']}",
            file=out,
        )
        dead = manager.health.dead_shards
        print(
            f"dead shards    : {dead if dead else 'none'}",
            file=out,
        )
    if recovery is not None:
        rec = summary["recovery"]
        print(
            "gray defense   : "
            f"hedges={rec['hedges']} won={rec['hedges_won']} "
            f"lost={rec['hedges_lost']} denied={rec['hedges_denied']} "
            f"rate={rec['hedge_rate']:.1%} "
            f"link_drops={rec['link_drops']} "
            f"cancelled={rec['hedge_cancelled_ns'] / 1e3:.1f} us",
            file=out,
        )
    if brownout is not None:
        b = summary["brownout"]
        print(
            "brownout       : "
            f"{'active' if b['active'] else 'idle'} "
            f"engagements={b['engagements']} "
            f"degraded={b['degraded_requests']} "
            f"rescued_sheds={b['rescued_sheds']}",
            file=out,
        )
    print(
        "health         : " + " ".join(
            _format_shard_health(entry) for entry in summary["health"]
        ),
        file=out,
    )
    dur = summary["durability"]
    if dur["topology"] is not None:
        at_risk = dur["at_risk_chunks"]
        print(
            "durability     : "
            f"{'spread' if dur['spread_placement'] else 'ring'} "
            f"placement, min spread {dur['min_spread']}, "
            f"at-risk chunks {at_risk if at_risk else 'none'}, "
            f"violations {len(dur['violations'])}",
            file=out,
        )
    if args.checkpoint is not None:
        from repro.checkpoint import write_checkpoint

        manifest = write_checkpoint(
            manager, args.checkpoint, t_ns=service.now_ns
        )
        print(
            f"checkpoint     : {args.checkpoint} "
            f"(t={manifest['t_ns'] / 1e6:.3f} ms, "
            f"{len(manifest['hashes'])} hashed arrays)",
            file=out,
        )
    if repair is not None:
        rep = summary["repair"]
        scrub = rep["scrub"]
        print(
            "scrubber       : "
            f"{scrub['probes']} probes / {scrub['sweeps']} sweeps "
            f"({' '.join(f'{k}={v}' for k, v in scrub['outcomes'].items())})",
            file=out,
        )
        print(
            "repair         : "
            f"detections={rep['detections']} remaps={rep['remaps']} "
            f"rereplications={rep['rereplications']} "
            f"({rep['rereplicated_bytes'] / 1024:.0f} KiB copied)",
            file=out,
        )
        print(
            f"replicas       : {rep['replica_counts']} "
            f"(spares left {rep['spares_remaining']})",
            file=out,
        )
    if monitor.alerts:
        print("alerts         :", file=out)
        for alert in monitor.alerts:
            print(
                f"  [{alert['severity']}] "
                f"{alert['objective']}/{alert['rule']} "
                f"burn={alert['burn_rate']:.1f}x "
                f"(threshold {alert['threshold']:.1f}x) "
                f"@ {alert['t_ns'] / 1e6:.2f} ms",
                file=out,
            )
    else:
        print("alerts         : none", file=out)
    rows = [
        [
            tenant,
            f"{pcts['p50_ns'] / 1e3:.1f}",
            f"{pcts['p95_ns'] / 1e3:.1f}",
            f"{pcts['p99_ns'] / 1e3:.1f}",
        ]
        for tenant, pcts in summary["per_tenant"].items()
    ]
    if rows:
        print(
            format_table(
                ["tenant", "p50 (us)", "p95 (us)", "p99 (us)"], rows
            ),
            file=out,
        )
    from repro.telemetry import get_recorder

    tele = get_recorder()
    if tele.enabled:
        from repro.observability import format_breakdown, slowest_request
        from repro.telemetry.export import chrome_trace_events

        slow = slowest_request(chrome_trace_events(tele))
        if slow is not None:
            print("\nslowest request (critical path):", file=out)
            print(format_breakdown(slow), file=out)
    return 0


def _dispatch(args, out) -> int:
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "knn":
        return _cmd_knn(args, out)
    if args.command == "kmeans":
        return _cmd_kmeans(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    return _cmd_profile(args, out)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    with telemetry_scope(args, out):
        code = _dispatch(args, out)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
