"""Segment statistics used by FNN-style dimensionality reduction.

LB_FNN (Hwang et al., Table 3) partitions a ``d``-dimensional vector into
``d'`` equal-length segments and summarises each by its mean and standard
deviation. These helpers compute the summaries in batch form and expose
the segmentation bookkeeping (segment count candidates must divide ``d``
so segments have equal length ``l = d / d'``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, OperandError


def equal_segment_counts(dims: int) -> list[int]:
    """All segment counts ``d'`` that split ``dims`` into equal parts."""
    if dims <= 0:
        raise ConfigurationError("dims must be positive")
    return [s for s in range(1, dims + 1) if dims % s == 0]


def fnn_segment_ladder(dims: int, ratios: tuple[int, ...] = (64, 16, 4)) -> list[int]:
    """The paper's FNN bound ladder: ``d/64, d/16, d/4`` segment counts.

    Ratios that do not divide ``dims`` (or would give zero segments) are
    replaced by the closest valid divisor, preserving the monotone
    coarse-to-fine ordering; duplicates are dropped.
    """
    divisors = equal_segment_counts(dims)
    ladder: list[int] = []
    for ratio in ratios:
        target = max(1, dims // ratio)
        nearest = min(divisors, key=lambda s: (abs(s - target), s))
        if nearest not in ladder:
            ladder.append(nearest)
    return sorted(ladder)


@dataclass(frozen=True)
class SegmentSummary:
    """Per-segment means and standard deviations of a batch of vectors.

    Attributes
    ----------
    means, stds:
        ``(n_vectors, n_segments)`` arrays.
    segment_length:
        ``l = d / d'``.
    """

    means: np.ndarray
    stds: np.ndarray
    segment_length: int

    @property
    def n_segments(self) -> int:
        """Number of segments ``d'``."""
        return self.means.shape[-1]


def summarize(vectors: np.ndarray, n_segments: int) -> SegmentSummary:
    """Mean/std per equal-length segment for one vector or a batch.

    Parameters
    ----------
    vectors:
        ``(dims,)`` or ``(n, dims)`` float array; ``dims`` must be a
        multiple of ``n_segments``.
    n_segments:
        Segment count ``d'``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    single = vectors.ndim == 1
    if single:
        vectors = vectors[None, :]
    if vectors.ndim != 2:
        raise OperandError("summarize() expects a vector or a 2-D batch")
    n, dims = vectors.shape
    if n_segments <= 0 or dims % n_segments != 0:
        raise ConfigurationError(
            f"{n_segments} segments do not evenly divide {dims} dimensions"
        )
    length = dims // n_segments
    shaped = vectors.reshape(n, n_segments, length)
    means = shaped.mean(axis=2)
    stds = shaped.std(axis=2)
    if single:
        means, stds = means[0], stds[0]
    return SegmentSummary(means=means, stds=stds, segment_length=length)
