"""Quantization of floating-point vectors to PIM operands (Section V-B).

ReRAM crossbars only accept non-negative integers. The paper's recipe
(Eqs. 5-6): min-max normalise the dataset to ``[0, 1]``, scale by a
factor ``alpha`` (default 1e6) and truncate to the integer part. The
induced looseness of the PIM-aware bounds is bounded by Theorem 3:

``ED - LB_PIM-ED <= 4d/alpha + 2d/alpha**2``.

:class:`Quantizer` owns the normalisation statistics so queries arriving
at the online stage are mapped with the *dataset's* ranges (values are
clipped into them, exactly as normalising a new query against fixed
min/max would).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, OperandError

#: The paper's default scaling factor.
DEFAULT_ALPHA = 10**6


def theorem3_error_bound(dims: int, alpha: float) -> float:
    """Upper bound on ``ED - LB_PIM-ED`` (Theorem 3)."""
    if dims <= 0 or alpha <= 0:
        raise ConfigurationError("dims and alpha must be positive")
    return 4.0 * dims / alpha + 2.0 * dims / alpha**2


def required_operand_bits(alpha: float) -> int:
    """Bits needed to store a quantized value (max value is ``alpha``)."""
    return int(np.ceil(np.log2(float(alpha) + 1.0)))


@dataclass(frozen=True)
class QuantizedVector:
    """A quantized vector and its scaled floating-point original.

    Attributes
    ----------
    scaled:
        ``p_bar = p * alpha`` (normalised then scaled), float64.
    integers:
        ``floor(p_bar)`` — the crossbar operands.
    """

    scaled: np.ndarray
    integers: np.ndarray


class Quantizer:
    """Min-max normalisation + alpha scaling + floor truncation.

    Parameters
    ----------
    alpha:
        Scaling factor; larger alpha = tighter bounds (Theorem 3) but
        wider operands.

    The quantizer must be :meth:`fit` on the dataset before use; queries
    are transformed with the stored ranges and clipped into ``[0, 1]``.
    """

    def __init__(
        self, alpha: float = DEFAULT_ALPHA, assume_normalized: bool = False
    ) -> None:
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.alpha = float(alpha)
        self.assume_normalized = assume_normalized
        self._min: np.ndarray | None = None
        self._range: np.ndarray | None = None

    @classmethod
    def for_operand_bits(
        cls, operand_bits: int, assume_normalized: bool = False
    ) -> "Quantizer":
        """The tightest quantizer whose values fit ``operand_bits``.

        Theorem 3 says larger alpha is strictly tighter, so the best
        alpha for a device is the largest one the operand width can
        hold: ``alpha = 2**bits - 1``.
        """
        if operand_bits < 1:
            raise ConfigurationError("operand_bits must be >= 1")
        return cls(
            alpha=float((1 << operand_bits) - 1),
            assume_normalized=assume_normalized,
        )

    @property
    def is_fitted(self) -> bool:
        """Whether dataset statistics have been learned."""
        return self._min is not None

    @property
    def operand_bits(self) -> int:
        """Bits needed per quantized operand."""
        return required_operand_bits(self.alpha)

    def fit(self, data: np.ndarray) -> "Quantizer":
        """Learn per-dimension min/max from the dataset.

        Constant dimensions get range 1 so they normalise to 0 without
        dividing by zero.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("fit() expects a 2-D (vectors x dims) array")
        if self.assume_normalized:
            if data.size and (data.min() < 0.0 or data.max() > 1.0):
                raise OperandError(
                    "assume_normalized quantizer given data outside [0, 1]"
                )
            dims = data.shape[1]
            self._min = np.zeros(dims)
            self._range = np.ones(dims)
            return self
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        rng = hi - lo
        rng[rng == 0] = 1.0
        self._min = lo
        self._range = rng
        return self

    def normalize(self, vectors: np.ndarray) -> np.ndarray:
        """Map raw values into ``[0, 1]`` with the fitted ranges."""
        if self._min is None or self._range is None:
            raise OperandError("quantizer must be fitted before use")
        vectors = np.asarray(vectors, dtype=np.float64)
        normed = (vectors - self._min) / self._range
        return np.clip(normed, 0.0, 1.0)

    def scale(self, vectors: np.ndarray) -> np.ndarray:
        """``p_bar = normalize(p) * alpha`` (Eq. 5)."""
        return self.normalize(vectors) * self.alpha

    def quantize(self, vectors: np.ndarray) -> QuantizedVector:
        """Full pipeline: normalise, scale, floor (Eqs. 5-6)."""
        scaled = self.scale(vectors)
        integers = np.floor(scaled).astype(np.int64)
        return QuantizedVector(scaled=scaled, integers=integers)

    def fit_quantize(self, data: np.ndarray) -> QuantizedVector:
        """Convenience: :meth:`fit` then :meth:`quantize` the dataset."""
        return self.fit(data).quantize(data)

    def export_state(self) -> dict:
        """The fitted statistics, for checkpointing.

        Returns ``alpha``, ``assume_normalized`` and — when fitted —
        the per-dimension ``min``/``range`` arrays. A quantizer rebuilt
        with :meth:`from_state` maps every vector bit-identically, so
        a restored service quantizes queries exactly as the original.
        """
        state = {
            "alpha": self.alpha,
            "assume_normalized": bool(self.assume_normalized),
            "fitted": self.is_fitted,
        }
        if self.is_fitted:
            state["min"] = np.array(self._min, dtype=np.float64)
            state["range"] = np.array(self._range, dtype=np.float64)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "Quantizer":
        """Rebuild a quantizer from :meth:`export_state` output."""
        q = cls(
            alpha=float(state["alpha"]),
            assume_normalized=bool(state["assume_normalized"]),
        )
        if state.get("fitted"):
            q._min = np.asarray(state["min"], dtype=np.float64)
            q._range = np.asarray(state["range"], dtype=np.float64)
        return q

    def error_bound(self, dims: int) -> float:
        """Theorem 3 bound for this quantizer's alpha."""
        return theorem3_error_bound(dims, self.alpha)
