"""Similarity measures of paper Table 2: ED, CS, PCC, HD.

Conventions (matching the paper):

* ``euclidean`` is the **squared** Euclidean distance — the paper's
  ``ED(p, q) = sum_i (p_i - q_i)^2`` carries no square root, and every
  bound in Table 3 bounds this squared form.
* ``cosine`` and ``pearson`` are *similarities* (higher = closer), so
  kNN under them maximises; their PIM-aware bounds are upper bounds.
* ``hamming`` operates on 0/1 integer vectors.

Every measure comes in a scalar form (one pair) and a batch form (one
query against a matrix); batch forms are what the mining algorithms use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperandError

#: Canonical measure names accepted throughout the library.
MEASURES = ("euclidean", "cosine", "pearson", "hamming")

#: Measures for which larger values mean more similar.
SIMILARITY_MEASURES = frozenset({"cosine", "pearson"})


def _check_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape or p.ndim != 1:
        raise OperandError(
            f"expected two vectors of equal length, got {p.shape} vs {q.shape}"
        )
    return p, q


def euclidean(p: np.ndarray, q: np.ndarray) -> float:
    """Squared Euclidean distance (paper Table 2, no square root)."""
    p, q = _check_pair(p, q)
    diff = p - q
    return float(diff @ diff)


def euclidean_batch(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance of ``q`` to every row of ``data``."""
    data = np.asarray(data, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    diff = data - q
    return np.einsum("ij,ij->i", diff, diff)


def cosine(p: np.ndarray, q: np.ndarray) -> float:
    """Cosine similarity ``p.q / (|p| |q|)``.

    Zero vectors yield similarity 0 rather than NaN.
    """
    p, q = _check_pair(p, q)
    denom = float(np.linalg.norm(p) * np.linalg.norm(q))
    if denom == 0.0:
        return 0.0
    return float(p @ q) / denom


def cosine_batch(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``q`` to every row of ``data``."""
    data = np.asarray(data, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    norms = np.linalg.norm(data, axis=1) * np.linalg.norm(q)
    dots = data @ q
    out = np.zeros(data.shape[0], dtype=np.float64)
    nonzero = norms > 0
    out[nonzero] = dots[nonzero] / norms[nonzero]
    return out


def pearson(p: np.ndarray, q: np.ndarray) -> float:
    """Pearson correlation coefficient.

    Constant vectors (zero standard deviation) yield 0 rather than NaN.
    """
    p, q = _check_pair(p, q)
    pc = p - p.mean()
    qc = q - q.mean()
    denom = float(np.linalg.norm(pc) * np.linalg.norm(qc))
    if denom == 0.0:
        return 0.0
    return float(pc @ qc) / denom


def pearson_batch(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Pearson correlation of ``q`` with every row of ``data``."""
    data = np.asarray(data, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    dc = data - data.mean(axis=1, keepdims=True)
    qc = q - q.mean()
    norms = np.linalg.norm(dc, axis=1) * np.linalg.norm(qc)
    dots = dc @ qc
    out = np.zeros(data.shape[0], dtype=np.float64)
    nonzero = norms > 0
    out[nonzero] = dots[nonzero] / norms[nonzero]
    return out


def hamming(p: np.ndarray, q: np.ndarray) -> int:
    """Hamming distance between two 0/1 integer vectors."""
    p = np.asarray(p)
    q = np.asarray(q)
    if p.shape != q.shape or p.ndim != 1:
        raise OperandError("expected two binary vectors of equal length")
    _check_binary(p)
    _check_binary(q)
    return int(np.count_nonzero(p != q))


def hamming_batch(codes: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Hamming distance of ``q`` to every row of binary matrix ``codes``."""
    codes = np.asarray(codes)
    q = np.asarray(q)
    _check_binary(codes)
    _check_binary(q)
    return np.count_nonzero(codes != q, axis=1)


def _check_binary(values: np.ndarray) -> None:
    if not np.issubdtype(values.dtype, np.integer):
        raise OperandError("binary vectors must have an integer dtype")
    if values.size and (int(values.min()) < 0 or int(values.max()) > 1):
        raise OperandError("binary vectors may only contain 0 and 1")


def compute(measure: str, p: np.ndarray, q: np.ndarray) -> float:
    """Dispatch to a measure by name."""
    try:
        fn = _SCALAR[measure]
    except KeyError:
        raise OperandError(
            f"unknown measure {measure!r}; expected one of {MEASURES}"
        ) from None
    return float(fn(p, q))


def compute_batch(measure: str, data: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Dispatch to a batch measure by name."""
    try:
        fn = _BATCH[measure]
    except KeyError:
        raise OperandError(
            f"unknown measure {measure!r}; expected one of {MEASURES}"
        ) from None
    return fn(data, q)


def is_similarity(measure: str) -> bool:
    """True when larger values mean more similar (CS, PCC)."""
    if measure not in MEASURES:
        raise OperandError(
            f"unknown measure {measure!r}; expected one of {MEASURES}"
        )
    return measure in SIMILARITY_MEASURES


_SCALAR = {
    "euclidean": euclidean,
    "cosine": cosine,
    "pearson": pearson,
    "hamming": hamming,
}
_BATCH = {
    "euclidean": euclidean_batch,
    "cosine": cosine_batch,
    "pearson": pearson_batch,
    "hamming": hamming_batch,
}
