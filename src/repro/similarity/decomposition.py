"""PIM-aware function decomposition (paper Section V-A, Table 4).

A similarity or bound function ``F(p, q)`` is *PIM-aware* when it can be
written ``F(p, q) = G(Phi(p), Phi(q), p.q)`` where

* ``Phi`` maps a vector to a fixed-size summary (pre-computable offline),
* the dot products are the only O(d) work (offloadable to PIM), and
* ``G`` combines the pieces in O(1) on the host.

:class:`Decomposition` packages the three pieces per measure so that the
identity ``F(p, q) == G(...)`` is executable and testable. The mining
layer itself uses the *quantized bound* variants in :mod:`repro.bounds.pim`;
these exact decompositions document the algebra and back the exactness
tests (and the HD case, which PIM computes exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import OperandError
from repro.similarity import measures
from repro.similarity.segments import summarize


@dataclass(frozen=True)
class Decomposition:
    """One row of Table 4.

    Attributes
    ----------
    name:
        Measure or bound name (``"euclidean"``, ``"LB_FNN"`` ...).
    phi:
        Offline summary ``Phi(p) -> 1-D array of scalars``.
    dot_operands:
        The vector(s) whose dot products PIM computes; returns a list of
        equal-length vectors (one entry for ED/CS/PCC; two for HD — the
        code and its complement; two for LB_FNN — segment means and stds).
    combine:
        ``G(phi_p, phi_q, dots) -> float`` where ``dots[i]`` is the dot
        product of the i-th operand of ``p`` with the i-th of ``q``.
    """

    name: str
    phi: Callable[[np.ndarray], np.ndarray]
    dot_operands: Callable[[np.ndarray], list[np.ndarray]]
    combine: Callable[[np.ndarray, np.ndarray, list[float]], float]

    def evaluate(self, p: np.ndarray, q: np.ndarray) -> float:
        """Evaluate ``F(p, q)`` through the decomposition.

        Tests assert this equals the direct measure.
        """
        p = np.asarray(p, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        ops_p = self.dot_operands(p)
        ops_q = self.dot_operands(q)
        dots = [float(a @ b) for a, b in zip(ops_p, ops_q)]
        return float(self.combine(self.phi(p), self.phi(q), dots))


# ----------------------------------------------------------------------
# Table 4 rows
# ----------------------------------------------------------------------
def _ed_phi(p: np.ndarray) -> np.ndarray:
    return np.array([float(p @ p)])


def euclidean_decomposition() -> Decomposition:
    """ED(p,q) = Phi(p) + Phi(q) - 2 p.q with Phi(p) = sum p_i^2 (Eq. 4)."""
    return Decomposition(
        name="euclidean",
        phi=_ed_phi,
        dot_operands=lambda p: [np.asarray(p, dtype=np.float64)],
        combine=lambda fp, fq, dots: float(fp[0] + fq[0] - 2.0 * dots[0]),
    )


def cosine_decomposition() -> Decomposition:
    """CS(p,q) = p.q / (Phi(p) Phi(q)) with Phi(p) = |p|."""

    def combine(fp: np.ndarray, fq: np.ndarray, dots: list[float]) -> float:
        denom = float(fp[0] * fq[0])
        return dots[0] / denom if denom else 0.0

    return Decomposition(
        name="cosine",
        phi=lambda p: np.array([float(np.linalg.norm(p))]),
        dot_operands=lambda p: [np.asarray(p, dtype=np.float64)],
        combine=combine,
    )


def pearson_decomposition() -> Decomposition:
    """PCC via Table 4: (d p.q - Phi_b(p) Phi_b(q)) / (Phi_a(p) Phi_a(q)).

    ``Phi_a(p) = sqrt(d sum p^2 - (sum p)^2)`` and ``Phi_b(p) = sum p``.
    """

    def phi(p: np.ndarray) -> np.ndarray:
        d = p.shape[0]
        total = float(p.sum())
        phi_a_sq = d * float(p @ p) - total**2
        phi_a = float(np.sqrt(max(phi_a_sq, 0.0)))
        return np.array([phi_a, total])

    def combine(fp: np.ndarray, fq: np.ndarray, dots: list[float]) -> float:
        denom = float(fp[0] * fq[0])
        if denom == 0.0:
            return 0.0
        return (fp[2] * dots[0] - fp[1] * fq[1]) / denom

    def phi_with_d(p: np.ndarray) -> np.ndarray:
        base = phi(p)
        return np.append(base, float(p.shape[0]))

    return Decomposition(
        name="pearson",
        phi=phi_with_d,
        dot_operands=lambda p: [np.asarray(p, dtype=np.float64)],
        combine=combine,
    )


def hamming_decomposition() -> Decomposition:
    """HD(p,q) = d - p.q - p~.q~ with p~ the bit complement (Table 4)."""

    def operands(p: np.ndarray) -> list[np.ndarray]:
        p = np.asarray(p)
        if p.size and (int(p.min()) < 0 or int(p.max()) > 1):
            raise OperandError("hamming decomposition needs 0/1 vectors")
        code = p.astype(np.float64)
        return [code, 1.0 - code]

    return Decomposition(
        name="hamming",
        phi=lambda p: np.array([float(np.asarray(p).shape[0])]),
        dot_operands=operands,
        combine=lambda fp, fq, dots: float(fp[0] - dots[0] - dots[1]),
    )


def fnn_decomposition(n_segments: int) -> Decomposition:
    """LB_FNN via Table 4: Phi(p) = l sum(mu^2 + sigma^2); two dot terms.

    ``LB_FNN = Phi(p) + Phi(q) - 2 l mu(p).mu(q) - 2 l sigma(p).sigma(q)``.
    """

    def phi(p: np.ndarray) -> np.ndarray:
        s = summarize(p, n_segments)
        val = s.segment_length * float((s.means**2).sum() + (s.stds**2).sum())
        return np.array([val, float(s.segment_length)])

    def operands(p: np.ndarray) -> list[np.ndarray]:
        s = summarize(p, n_segments)
        return [np.asarray(s.means), np.asarray(s.stds)]

    def combine(fp: np.ndarray, fq: np.ndarray, dots: list[float]) -> float:
        length = fp[1]
        return float(fp[0] + fq[0] - 2.0 * length * (dots[0] + dots[1]))

    return Decomposition(
        name="LB_FNN", phi=phi, dot_operands=operands, combine=combine
    )


def decomposition_for(measure: str, n_segments: int | None = None) -> Decomposition:
    """Factory over Table 4 by measure name."""
    if measure == "euclidean":
        return euclidean_decomposition()
    if measure == "cosine":
        return cosine_decomposition()
    if measure == "pearson":
        return pearson_decomposition()
    if measure == "hamming":
        return hamming_decomposition()
    if measure == "LB_FNN":
        if n_segments is None:
            raise OperandError("LB_FNN decomposition needs n_segments")
        return fnn_decomposition(n_segments)
    raise OperandError(
        f"no PIM-aware decomposition for {measure!r}; "
        f"known: euclidean, cosine, pearson, hamming, LB_FNN"
    )


def is_pim_aware(measure: str) -> bool:
    """Whether a measure has a Table 4 decomposition."""
    return measure in {"euclidean", "cosine", "pearson", "hamming", "LB_FNN"}


# re-export for convenience in tests
direct_measures = measures
