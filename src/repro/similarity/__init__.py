"""Similarity measures, PIM-aware decompositions and quantization.

* :mod:`repro.similarity.measures` — ED/CS/PCC/HD (paper Table 2);
* :mod:`repro.similarity.decomposition` — Table 4 decompositions;
* :mod:`repro.similarity.quantization` — Eqs. 5-6 + Theorem 3;
* :mod:`repro.similarity.segments` — FNN-style segment summaries.
"""

from repro.similarity.decomposition import (
    Decomposition,
    decomposition_for,
    is_pim_aware,
)
from repro.similarity.measures import (
    MEASURES,
    compute,
    compute_batch,
    cosine,
    cosine_batch,
    euclidean,
    euclidean_batch,
    hamming,
    hamming_batch,
    is_similarity,
    pearson,
    pearson_batch,
)
from repro.similarity.quantization import (
    DEFAULT_ALPHA,
    QuantizedVector,
    Quantizer,
    required_operand_bits,
    theorem3_error_bound,
)
from repro.similarity.segments import (
    SegmentSummary,
    equal_segment_counts,
    fnn_segment_ladder,
    summarize,
)

__all__ = [
    "DEFAULT_ALPHA",
    "Decomposition",
    "MEASURES",
    "QuantizedVector",
    "Quantizer",
    "SegmentSummary",
    "compute",
    "compute_batch",
    "cosine",
    "cosine_batch",
    "decomposition_for",
    "equal_segment_counts",
    "euclidean",
    "euclidean_batch",
    "fnn_segment_ladder",
    "hamming",
    "hamming_batch",
    "is_pim_aware",
    "is_similarity",
    "pearson",
    "pearson_batch",
    "required_operand_bits",
    "summarize",
    "theorem3_error_bound",
]
