"""Bound protocol shared by CPU (Table 3) and PIM (Theorem 1/2) bounds.

A *bound* filters candidates before an exact similarity computation:

* a **lower** bound on a distance prunes object ``p`` when
  ``LB(p, q) > threshold`` (it cannot beat the current k-th distance);
* an **upper** bound on a similarity prunes when ``UB(p, q) < threshold``.

Bounds are prepared offline against a dataset (``prepare``) and queried
online (``evaluate``). Each bound also knows its per-object cost profile
— transfer bits, flops, branch count — which is what the cost model and
the Eq. 13 execution-plan optimizer consume. :meth:`Bound.charge` records
those events on a :class:`~repro.cost.counters.PerfCounters` under the
bound's name, keeping cost accounting next to the semantics it describes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cost.counters import PerfCounters
from repro.errors import ProgrammingError

#: Bound direction constants.
LOWER = "lower"
UPPER = "upper"


class Bound(abc.ABC):
    """One filtering bound over a prepared dataset."""

    #: Display / cost-bucket name, e.g. ``"LB_FNN_105"``.
    name: str
    #: :data:`LOWER` (distance LBs) or :data:`UPPER` (similarity UBs).
    kind: str

    def __init__(self, name: str, kind: str) -> None:
        if kind not in (LOWER, UPPER):
            raise ValueError(f"kind must be {LOWER!r} or {UPPER!r}")
        self.name = name
        self.kind = kind
        self._n_objects: int | None = None

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(self, data: np.ndarray) -> None:
        """Offline stage: pre-compute summaries of ``data``."""

    @abc.abstractmethod
    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Bound values of ``query`` against the prepared objects.

        Parameters
        ----------
        query:
            The online vector, in the same space as the prepared data.
        indices:
            Restrict evaluation to these object indices (a cascade's
            surviving candidates); ``None`` means all objects.
        """

    @property
    def n_objects(self) -> int:
        """Number of prepared objects."""
        if self._n_objects is None:
            raise ProgrammingError(f"bound {self.name} is not prepared")
        return self._n_objects

    # ------------------------------------------------------------------
    # cost profile
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def per_object_transfer_bits(self) -> float:
        """Memory->CPU bits one evaluation moves (Eq. 13's Tcost(B))."""

    @property
    @abc.abstractmethod
    def per_object_flops(self) -> float:
        """Arithmetic operations one evaluation costs on the host."""

    @property
    def per_object_long_ops(self) -> float:
        """Long-latency host ops (sqrt/div) per evaluation."""
        return 0.0

    def charge(self, counters: PerfCounters, n_evaluated: int) -> None:
        """Record the host-side cost of evaluating ``n_evaluated`` objects."""
        counters.record(
            self.name,
            calls=n_evaluated,
            flops=self.per_object_flops * n_evaluated,
            bytes_from_memory=self.per_object_transfer_bits / 8.0 * n_evaluated,
            long_ops=self.per_object_long_ops * n_evaluated,
            branches=float(n_evaluated),
        )

    def charge_query_setup(self, counters: PerfCounters, dims: int) -> None:
        """Record the once-per-query preparation (e.g. computing Phi(q))."""
        counters.record(
            self.name,
            flops=3.0 * dims,
            bytes_cached=8.0 * dims,
        )

    # ------------------------------------------------------------------
    # pruning semantics
    # ------------------------------------------------------------------
    def prunes(self, values: np.ndarray, threshold: float) -> np.ndarray:
        """Boolean mask of objects this bound eliminates at ``threshold``."""
        values = np.asarray(values)
        if self.kind == LOWER:
            return values > threshold
        return values < threshold

    def survivors(
        self,
        values: np.ndarray,
        threshold: float,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Indices that survive the filter.

        ``values`` must align with ``indices`` (or with all objects when
        ``indices`` is None).
        """
        keep = ~self.prunes(values, threshold)
        if indices is None:
            return np.nonzero(keep)[0]
        return np.asarray(indices)[keep]
