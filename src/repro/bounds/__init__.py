"""Bound functions: Table 3 CPU baselines and Theorem 1/2 PIM bounds.

* :mod:`repro.bounds.base` — the :class:`Bound` protocol;
* :mod:`repro.bounds.ed` — LB_OST, LB_SM, LB_FNN, UB_part;
* :mod:`repro.bounds.pim` — LB_PIM-ED, LB_PIM-FNN, UB_PIM-CS,
  UB_PIM-PCC and the exact PIM Hamming distance;
* :mod:`repro.bounds.cascade` — progressive filtering with statistics.
"""

from repro.bounds.base import LOWER, UPPER, Bound
from repro.bounds.cascade import BoundCascade, CascadeResult, StageStats
from repro.bounds.ed import FNNBound, OSTBound, PartitionUpperBound, SMBound
from repro.bounds.pim import (
    PIMCosineBound,
    PIMEuclideanBound,
    PIMFNNBound,
    PIMHammingDistance,
    PIMOSTBound,
    PIMPearsonBound,
    PIMSMBound,
)

__all__ = [
    "Bound",
    "BoundCascade",
    "CascadeResult",
    "FNNBound",
    "LOWER",
    "OSTBound",
    "PIMCosineBound",
    "PIMEuclideanBound",
    "PIMFNNBound",
    "PIMHammingDistance",
    "PIMOSTBound",
    "PIMPearsonBound",
    "PIMSMBound",
    "PartitionUpperBound",
    "SMBound",
    "StageStats",
    "UPPER",
]
