"""PIM-aware bound functions (paper Section V-B, Theorems 1-2).

These bounds do the O(d) part of their work on the PIM array: the
quantized integer dataset is programmed onto crossbars at the offline
stage, and one online *wave* yields the dot-product term for every object
at once. The host only combines three scalars per object (Fig. 8), so
the per-object memory->CPU transfer collapses from ``d*b`` to ``3*b``
bits — the source of the paper's speedups.

Correctness contracts (verified by property tests):

* :class:`PIMEuclideanBound` — Theorem 1: ``LB_PIM-ED(p,q) <= ED(p,q)``;
* :class:`PIMFNNBound` — Theorem 2: ``LB_PIM-FNN(p,q) <= LB_FNN(p,q)``
  (hence also ``<= ED``);
* :class:`PIMCosineBound` / :class:`PIMPearsonBound` — upper bounds of
  CS/PCC via the floor inequality on the dot product;
* :class:`PIMHammingDistance` — *exact* (binary vectors need no bound).

Every bound shares one :class:`~repro.hardware.controller.PIMController`
so crossbar capacity and wave times accumulate on a single simulated
device.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import LOWER, UPPER, Bound
from repro.cost.transfer import pim_bound_transfer
from repro.errors import OperandError
from repro.hardware.controller import PIMController
from repro.similarity.quantization import Quantizer
from repro.similarity.segments import summarize


class _PIMBoundBase(Bound):
    """Shared machinery: quantizer, controller, wave caching.

    One wave computes dot products for *all* programmed objects; when a
    cascade later asks for a subset, the cached wave results are sliced
    instead of re-firing the array.
    """

    _instances = 0

    def __init__(
        self,
        name: str,
        kind: str,
        controller: PIMController,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(name=name, kind=kind)
        self.controller = controller
        self.quantizer = (
            quantizer
            if quantizer is not None
            else Quantizer(assume_normalized=True)
        )
        _PIMBoundBase._instances += 1
        self._matrix_name = f"{name}#{_PIMBoundBase._instances}"
        self._last_key: bytes | None = None
        self._last_values: np.ndarray | None = None
        self._batch_cache: dict[bytes, np.ndarray] = {}
        self._prep_key: tuple | None = None

    def _already_prepared(self, data: np.ndarray) -> bool:
        """Idempotence guard: skip re-programming for the same dataset.

        The plan optimizer re-fits algorithms that share an existing
        programmed bound; re-programming would wear the crossbars (and
        the array rejects duplicate matrix names). Preparing a bound on
        *different* data is an error — build a new bound instead.
        """
        key = (data.shape, hash(data.tobytes()))
        if self._prep_key is None:
            self._prep_key = key
            return False
        if key == self._prep_key:
            return True
        raise OperandError(
            f"{self.name} is already programmed with a different dataset; "
            "create a fresh bound (re-programming wears the crossbars)"
        )

    @property
    def alpha(self) -> float:
        """Quantization scaling factor."""
        return self.quantizer.alpha

    @property
    def operand_bits(self) -> int:
        """Operand width used for transfer accounting."""
        return self.controller.pim.config.operand_bits

    def _compensated(self, values: np.ndarray) -> np.ndarray:
        """Raw wave readings -> safe dot-product upper bounds under noise."""
        values = values.astype(np.float64)
        noise = getattr(self.controller, "noise", None)
        if noise is not None and not noise.is_ideal:
            from repro.hardware.noise import compensate_dot_upper

            values = compensate_dot_upper(values, noise)
        return values

    def _wave(self, query_ints: np.ndarray) -> np.ndarray:
        """Fire (or reuse) the wave for this exact query.

        Results primed by :meth:`prime_queries` are served from the
        batch cache without touching the array again. On a noisy
        controller the reading is compensated to a guaranteed *upper*
        bound of the true dot product. That keeps every derived bound
        valid in its own direction: the ED-family lower bounds use
        ``-2*dot`` (a larger dot only loosens them downward) and the
        CS/PCC upper bounds use ``+dot`` (a larger dot only loosens them
        upward). Noise costs tightness, never correctness.
        """
        key = query_ints.tobytes()
        cached = self._batch_cache.get(key)
        if cached is not None:
            return cached
        if key != self._last_key or self._last_values is None:
            result = self.controller.dot_products(
                self._matrix_name, query_ints
            )
            self._last_key = key
            self._last_values = self._compensated(result.values)
        return self._last_values

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        """The integer input vector this bound dispatches for ``query``.

        Must match what :meth:`evaluate` computes internally byte for
        byte, so primed batch results are found in the cache.
        """
        raise NotImplementedError

    def prime_queries(self, queries: np.ndarray) -> int:
        """Fire ONE batched wave covering every query's dot products.

        Subsequent :meth:`evaluate` calls on any of these queries (for
        any object subset) hit the cache instead of dispatching their
        own wave, so a workload of B queries pays one pipeline setup.
        Returns the number of queries dispatched (after intra-batch
        dedup). Priming replaces any previously primed batch.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        ints = np.stack([self._query_ints(q) for q in queries])
        # duplicate query vectors would waste wave slots; keep first
        keys: list[bytes] = []
        rows: list[np.ndarray] = []
        seen: set[bytes] = set()
        for row in ints:
            key = row.tobytes()
            if key in seen:
                continue
            seen.add(key)
            keys.append(key)
            rows.append(row)
        result = self.controller.dot_products_batch(
            self._matrix_name, np.stack(rows)
        )
        values = self._compensated(result.values)
        self._batch_cache = {
            key: values[i] for i, key in enumerate(keys)
        }
        return len(rows)

    @property
    def per_object_transfer_bits(self) -> float:
        return pim_bound_transfer(self.operand_bits).bits_per_object

    @property
    def per_object_flops(self) -> float:
        return 7.0  # G: two adds, one fma, one scale, plus the compare


class PIMEuclideanBound(_PIMBoundBase):
    """LB_PIM-ED (Theorem 1): quantized lower bound of squared ED.

    ``LB = max(0, (Phi(p) + Phi(q) - 2 floor(p).floor(q) - 2d) / alpha^2)``
    with ``Phi(p) = sum p_bar_i^2 - 2 sum floor(p_bar_i)``.

    The clamp at zero is valid (squared ED is non-negative) and tightens
    the bound for near-identical pairs.
    """

    def __init__(
        self, controller: PIMController, quantizer: Quantizer | None = None
    ) -> None:
        super().__init__(
            name="LB_PIM-ED", kind=LOWER, controller=controller,
            quantizer=quantizer,
        )
        self._phi: np.ndarray | None = None
        self._dims: int | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("prepare() expects a (vectors x dims) matrix")
        if self._already_prepared(data):
            self._n_objects = data.shape[0]
            return
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        qv = self.quantizer.quantize(data)
        self._phi = (qv.scaled**2).sum(axis=1) - 2.0 * qv.integers.sum(axis=1)
        self._dims = data.shape[1]
        side_bytes = self._phi.nbytes
        self.controller.program(self._matrix_name, qv.integers, side_bytes)
        self._n_objects = data.shape[0]

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        return self.quantizer.quantize(query).integers

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._phi is None or self._dims is None:
            raise OperandError(f"{self.name} is not prepared")
        qq = self.quantizer.quantize(np.asarray(query, dtype=np.float64))
        phi_q = float((qq.scaled**2).sum() - 2.0 * qq.integers.sum())
        dots = self._wave(qq.integers)
        phi = self._phi if indices is None else self._phi[indices]
        d = dots if indices is None else dots[indices]
        lb = (phi + phi_q - 2.0 * d - 2.0 * self._dims) / self.alpha**2
        return np.maximum(lb, 0.0)

    def evaluate_matrix(self, queries: np.ndarray) -> np.ndarray:
        """Bounds for several queries at once, shape ``(N, n_queries)``.

        The queries ship as one batched wave (one pipeline setup plus
        per-query increments); used by the k-means assign step, which
        needs LB_PIM-ED of every point to every center each iteration.
        """
        if self._phi is None or self._dims is None:
            raise OperandError(f"{self.name} is not prepared")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        qq = self.quantizer.quantize(queries)
        phi_q = (qq.scaled**2).sum(axis=1) - 2.0 * qq.integers.sum(axis=1)
        result = self.controller.dot_products_batch(
            self._matrix_name, qq.integers
        )
        values = self._compensated(result.values)
        dots = values.T  # (N, n_queries)
        lb = (
            self._phi[:, None] + phi_q[None, :] - 2.0 * dots
            - 2.0 * self._dims
        ) / self.alpha**2
        return np.maximum(lb, 0.0)


class PIMFNNBound(_PIMBoundBase):
    """LB_PIM-FNN (Theorem 2): quantized lower bound of LB_FNN.

    Segment means and standard deviations of the *scaled* vectors are
    floored and programmed as one concatenated ``2 d'``-dimensional
    matrix, so a single wave delivers
    ``floor(mu_p).floor(mu_q) + floor(sigma_p).floor(sigma_q)``:

    ``LB = max(0, l/alpha^2 * (Phi(p) + Phi(q) - 2 dot - 4 d'))``.
    """

    def __init__(
        self,
        n_segments: int,
        controller: PIMController,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(
            name=f"LB_PIM-FNN_{n_segments}",
            kind=LOWER,
            controller=controller,
            quantizer=quantizer,
        )
        self.n_segments = n_segments
        self._phi: np.ndarray | None = None
        self._segment_length: int | None = None

    def _summaries(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Scaled segment means/stds: (means, stds, segment_length)."""
        scaled = self.quantizer.scale(vectors)
        summary = summarize(scaled, self.n_segments)
        return (
            np.atleast_2d(summary.means),
            np.atleast_2d(summary.stds),
            summary.segment_length,
        )

    def prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("prepare() expects a (vectors x dims) matrix")
        if self._already_prepared(data):
            self._n_objects = data.shape[0]
            return
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        means, stds, length = self._summaries(data)
        floors = np.floor(np.concatenate([means, stds], axis=1)).astype(
            np.int64
        )
        self._phi = (
            (means**2).sum(axis=1)
            + (stds**2).sum(axis=1)
            - 2.0 * floors.sum(axis=1)
        )
        self._segment_length = length
        self.controller.program(self._matrix_name, floors, self._phi.nbytes)
        self._n_objects = data.shape[0]

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        means, stds, _ = self._summaries(query)
        return np.floor(np.concatenate([means[0], stds[0]])).astype(np.int64)

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._phi is None or self._segment_length is None:
            raise OperandError(f"{self.name} is not prepared")
        means, stds, _ = self._summaries(np.asarray(query, dtype=np.float64))
        q_floors = np.floor(np.concatenate([means[0], stds[0]])).astype(
            np.int64
        )
        phi_q = float(
            (means**2).sum() + (stds**2).sum() - 2.0 * q_floors.sum()
        )
        dots = self._wave(q_floors)
        phi = self._phi if indices is None else self._phi[indices]
        d = dots if indices is None else dots[indices]
        lb = (
            self._segment_length
            / self.alpha**2
            * (phi + phi_q - 2.0 * d - 4.0 * self.n_segments)
        )
        return np.maximum(lb, 0.0)


class PIMSMBound(_PIMBoundBase):
    """PIM-aware bound of LB_SM: quantized segment-means lower bound.

    Identical derivation to Theorem 2 restricted to the mean terms:
    ``LB = max(0, l/alpha^2 * (Phi(p) + Phi(q) - 2 dot - 2 d'))`` with
    ``Phi(p) = sum mu_bar^2 - 2 sum floor(mu_bar)``. Lower-bounds LB_SM
    and therefore the squared ED.
    """

    def __init__(
        self,
        n_segments: int,
        controller: PIMController,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(
            name=f"LB_PIM-SM_{n_segments}",
            kind=LOWER,
            controller=controller,
            quantizer=quantizer,
        )
        self.n_segments = n_segments
        self._phi: np.ndarray | None = None
        self._segment_length: int | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("prepare() expects a (vectors x dims) matrix")
        if self._already_prepared(data):
            self._n_objects = data.shape[0]
            return
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        means = np.atleast_2d(
            summarize(self.quantizer.scale(data), self.n_segments).means
        )
        floors = np.floor(means).astype(np.int64)
        self._phi = (means**2).sum(axis=1) - 2.0 * floors.sum(axis=1)
        self._segment_length = data.shape[1] // self.n_segments
        self.controller.program(self._matrix_name, floors, self._phi.nbytes)
        self._n_objects = data.shape[0]

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        means = summarize(self.quantizer.scale(query), self.n_segments).means
        return np.floor(means).astype(np.int64)

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._phi is None or self._segment_length is None:
            raise OperandError(f"{self.name} is not prepared")
        scaled = self.quantizer.scale(np.asarray(query, dtype=np.float64))
        means = summarize(scaled, self.n_segments).means
        q_floors = np.floor(means).astype(np.int64)
        phi_q = float((means**2).sum() - 2.0 * q_floors.sum())
        dots = self._wave(q_floors)
        phi = self._phi if indices is None else self._phi[indices]
        d = dots if indices is None else dots[indices]
        lb = (
            self._segment_length
            / self.alpha**2
            * (phi + phi_q - 2.0 * d - 2.0 * self.n_segments)
        )
        return np.maximum(lb, 0.0)


class PIMOSTBound(_PIMBoundBase):
    """PIM-aware bound of LB_OST.

    The head term (exact squared ED over the first ``d0`` dimensions) is
    replaced by its Theorem 1 quantized lower bound computed on PIM; the
    tail term reuses the pre-computed tail norms with one extra scalar of
    transfer: ``LB = LB_PIM-ED(head) + (|p_tail| - |q_tail|)^2``.
    """

    def __init__(
        self,
        head_dims: int,
        controller: PIMController,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(
            name=f"LB_PIM-OST_{head_dims}",
            kind=LOWER,
            controller=controller,
            quantizer=quantizer,
        )
        self.head_dims = head_dims
        self._phi: np.ndarray | None = None
        self._tail_norms: np.ndarray | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("prepare() expects a (vectors x dims) matrix")
        if self._already_prepared(data):
            self._n_objects = data.shape[0]
            return
        if data.shape[1] <= self.head_dims:
            raise OperandError("head_dims must be below the data dims")
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        scaled = self.quantizer.scale(data)
        head = scaled[:, : self.head_dims]
        floors = np.floor(head).astype(np.int64)
        self._phi = (head**2).sum(axis=1) - 2.0 * floors.sum(axis=1)
        normed = self.quantizer.normalize(data)
        self._tail_norms = np.linalg.norm(normed[:, self.head_dims :], axis=1)
        side = self._phi.nbytes + self._tail_norms.nbytes
        self.controller.program(self._matrix_name, floors, side)
        self._n_objects = data.shape[0]

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        head = self.quantizer.scale(query)[: self.head_dims]
        return np.floor(head).astype(np.int64)

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._phi is None or self._tail_norms is None:
            raise OperandError(f"{self.name} is not prepared")
        query = np.asarray(query, dtype=np.float64)
        scaled = self.quantizer.scale(query)
        head = scaled[: self.head_dims]
        q_floors = np.floor(head).astype(np.int64)
        phi_q = float((head**2).sum() - 2.0 * q_floors.sum())
        q_tail = float(
            np.linalg.norm(self.quantizer.normalize(query)[self.head_dims :])
        )
        dots = self._wave(q_floors)
        phi = self._phi if indices is None else self._phi[indices]
        tails = (
            self._tail_norms if indices is None else self._tail_norms[indices]
        )
        d = dots if indices is None else dots[indices]
        head_lb = np.maximum(
            (phi + phi_q - 2.0 * d - 2.0 * self.head_dims) / self.alpha**2,
            0.0,
        )
        return head_lb + (tails - q_tail) ** 2

    @property
    def per_object_transfer_bits(self) -> float:
        # Phi, dot result and the tail norm
        return pim_bound_transfer(self.operand_bits).bits_per_object + float(
            self.operand_bits
        )


class PIMCosineBound(_PIMBoundBase):
    """Quantized upper bound of cosine similarity.

    ``p.q <= (dot + sum floor(p_bar) + sum floor(q_bar) + d) / alpha^2``
    by the floor inequality; dividing by the exact norms (pre-computed
    offline / once per query) upper-bounds CS. Clamped to 1.
    """

    def __init__(
        self, controller: PIMController, quantizer: Quantizer | None = None
    ) -> None:
        super().__init__(
            name="UB_PIM-CS", kind=UPPER, controller=controller,
            quantizer=quantizer,
        )
        self._floor_sums: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._dims: int | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("prepare() expects a (vectors x dims) matrix")
        if self._already_prepared(data):
            self._n_objects = data.shape[0]
            return
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        qv = self.quantizer.quantize(data)
        self._floor_sums = qv.integers.sum(axis=1).astype(np.float64)
        self._norms = np.linalg.norm(self.quantizer.normalize(data), axis=1)
        self._dims = data.shape[1]
        side = self._floor_sums.nbytes + self._norms.nbytes
        self.controller.program(self._matrix_name, qv.integers, side)
        self._n_objects = data.shape[0]

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        return self.quantizer.quantize(query).integers

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._floor_sums is None or self._norms is None or self._dims is None:
            raise OperandError(f"{self.name} is not prepared")
        query = np.asarray(query, dtype=np.float64)
        qq = self.quantizer.quantize(query)
        q_floor_sum = float(qq.integers.sum())
        q_norm = float(np.linalg.norm(self.quantizer.normalize(query)))
        dots = self._wave(qq.integers)
        sums = self._floor_sums if indices is None else self._floor_sums[indices]
        norms = self._norms if indices is None else self._norms[indices]
        d = dots if indices is None else dots[indices]
        dot_ub = (d + sums + q_floor_sum + self._dims) / self.alpha**2
        denom = norms * q_norm
        ub = np.ones_like(dot_ub)
        nonzero = denom > 0
        ub[nonzero] = dot_ub[nonzero] / denom[nonzero]
        return np.minimum(ub, 1.0)

    @property
    def per_object_long_ops(self) -> float:
        return 1.0  # the division by the norm product


class PIMPearsonBound(_PIMBoundBase):
    """Quantized upper bound of the Pearson correlation coefficient.

    Using the Table 4 form ``PCC = (d p.q - S_p S_q) / (Phi_a(p) Phi_a(q))``
    with non-negative data, an upper bound on ``p.q`` upper-bounds the
    numerator; the denominator terms are exact and pre-computed. Objects
    with zero variance get UB = 1 (never pruned). Clamped to [-1, 1].
    """

    def __init__(
        self, controller: PIMController, quantizer: Quantizer | None = None
    ) -> None:
        super().__init__(
            name="UB_PIM-PCC", kind=UPPER, controller=controller,
            quantizer=quantizer,
        )
        self._floor_sums: np.ndarray | None = None
        self._sums: np.ndarray | None = None
        self._phi_a: np.ndarray | None = None
        self._dims: int | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise OperandError("prepare() expects a (vectors x dims) matrix")
        if self._already_prepared(data):
            self._n_objects = data.shape[0]
            return
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        normed = self.quantizer.normalize(data)
        qv = self.quantizer.quantize(data)
        d = data.shape[1]
        self._floor_sums = qv.integers.sum(axis=1).astype(np.float64)
        self._sums = normed.sum(axis=1)
        phi_a_sq = d * (normed**2).sum(axis=1) - self._sums**2
        self._phi_a = np.sqrt(np.maximum(phi_a_sq, 0.0))
        self._dims = d
        side = (
            self._floor_sums.nbytes + self._sums.nbytes + self._phi_a.nbytes
        )
        self.controller.program(self._matrix_name, qv.integers, side)
        self._n_objects = data.shape[0]

    def _query_ints(self, query: np.ndarray) -> np.ndarray:
        return self.quantizer.quantize(query).integers

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if (
            self._floor_sums is None
            or self._sums is None
            or self._phi_a is None
            or self._dims is None
        ):
            raise OperandError(f"{self.name} is not prepared")
        query = np.asarray(query, dtype=np.float64)
        q_norm = self.quantizer.normalize(query)
        qq = self.quantizer.quantize(query)
        d = float(self._dims)
        q_floor_sum = float(qq.integers.sum())
        q_sum = float(q_norm.sum())
        q_phi_a = float(
            np.sqrt(max(d * float(q_norm @ q_norm) - q_sum**2, 0.0))
        )
        dots = self._wave(qq.integers)
        f_sums = (
            self._floor_sums if indices is None else self._floor_sums[indices]
        )
        sums = self._sums if indices is None else self._sums[indices]
        phi_a = self._phi_a if indices is None else self._phi_a[indices]
        dvals = dots if indices is None else dots[indices]
        dot_ub = (dvals + f_sums + q_floor_sum + d) / self.alpha**2
        numerator_ub = d * dot_ub - sums * q_sum
        denom = phi_a * q_phi_a
        ub = np.ones_like(numerator_ub)
        nonzero = denom > 0
        ub[nonzero] = numerator_ub[nonzero] / denom[nonzero]
        return np.clip(ub, -1.0, 1.0)

    @property
    def per_object_transfer_bits(self) -> float:
        # Phi_a, S_p, floor-sum and the dot result: one extra operand
        return pim_bound_transfer(self.operand_bits).bits_per_object + float(
            self.operand_bits
        )

    @property
    def per_object_long_ops(self) -> float:
        return 1.0


class PIMHammingDistance(Bound):
    """Exact Hamming distance on PIM (Table 4 decomposition).

    ``HD(p, q) = d - p.q - p~.q~`` needs two dot products; the code
    matrix and its bit complement are programmed separately and each
    query fires two waves, moving ``2 * 32`` result bits per object —
    which is why the paper finds PIM unattractive for short codes.

    Registered as a ``lower`` bound that *equals* the distance, so the
    standard pruning machinery applies (pruning with an exact value keeps
    results exact trivially).
    """

    _instances = 0

    def __init__(self, controller: PIMController) -> None:
        super().__init__(name="HD_PIM", kind=LOWER)
        self.controller = controller
        PIMHammingDistance._instances += 1
        self._code_name = f"HD#{PIMHammingDistance._instances}"
        self._comp_name = f"HDc#{PIMHammingDistance._instances}"
        self._dims: int | None = None
        self._last_key: bytes | None = None
        self._last_values: np.ndarray | None = None
        self._batch_cache: dict[bytes, np.ndarray] = {}

    @property
    def result_bits(self) -> int:
        """Width of one PIM result for binary codes (paper: 32)."""
        return min(32, self.controller.pim.config.accumulator_bits)

    def prepare(self, data: np.ndarray) -> None:
        codes = np.asarray(data)
        if codes.ndim != 2:
            raise OperandError("prepare() expects a (codes x bits) matrix")
        if not np.issubdtype(codes.dtype, np.integer):
            raise OperandError("binary codes must be integers")
        if codes.size and (int(codes.min()) < 0 or int(codes.max()) > 1):
            raise OperandError("binary codes may only contain 0 and 1")
        codes = codes.astype(np.int64)
        self.controller.program(self._code_name, codes)
        self.controller.program(self._comp_name, 1 - codes)
        self._dims = codes.shape[1]
        self._n_objects = codes.shape[0]

    def prime_queries(self, queries: np.ndarray) -> int:
        """Two batched waves (codes + complement) covering every query."""
        if self._dims is None:
            raise OperandError(f"{self.name} is not prepared")
        queries = np.atleast_2d(np.asarray(queries)).astype(np.int64)
        dots = self.controller.dot_products_batch(
            self._code_name, queries
        ).values
        comps = self.controller.dot_products_batch(
            self._comp_name, 1 - queries
        ).values
        distances = (self._dims - dots - comps).astype(np.float64)
        self._batch_cache = {
            row.tobytes(): distances[i] for i, row in enumerate(queries)
        }
        return queries.shape[0]

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._dims is None:
            raise OperandError(f"{self.name} is not prepared")
        query = np.asarray(query).astype(np.int64)
        key = query.tobytes()
        cached = self._batch_cache.get(key)
        if cached is not None:
            values = cached
        elif key == self._last_key and self._last_values is not None:
            values = self._last_values
        else:
            dot = self.controller.dot_products(self._code_name, query).values
            comp = self.controller.dot_products(
                self._comp_name, 1 - query
            ).values
            values = (self._dims - dot - comp).astype(np.float64)
            self._last_values = values
            self._last_key = key
        return values if indices is None else values[indices]

    @property
    def per_object_transfer_bits(self) -> float:
        return float(2 * self.result_bits)

    @property
    def per_object_flops(self) -> float:
        return 3.0
