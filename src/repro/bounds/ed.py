"""CPU bound functions of paper Table 3 (the baselines' filters).

* :class:`OSTBound` — LB_OST (Liaw et al.): exact head distance over the
  first ``d0`` dimensions plus the squared difference of tail norms.
* :class:`SMBound` — LB_SM (Yi & Faloutsos): segmented-mean distance.
* :class:`FNNBound` — LB_FNN (Hwang et al.): segmented mean *and*
  standard deviation distance; the FNN algorithm stacks several of these
  at increasing resolution (``d/64, d/16, d/4`` segments).
* :class:`PartitionUpperBound` — UB_part (LEMP): upper bound on a dot
  product, used for cosine-similarity kNN.

All are lower bounds of the squared ED (upper bound of CS for UB_part);
property tests verify the inequalities on random data.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import LOWER, UPPER, Bound
from repro.errors import ConfigurationError, OperandError
from repro.similarity.segments import summarize


def _as_matrix(data: np.ndarray) -> np.ndarray:
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise OperandError("prepare() expects a (vectors x dims) matrix")
    return data


class OSTBound(Bound):
    """LB_OST: head-exact, tail-norm lower bound of squared ED.

    ``LB_OST(p, q) = sum_{i<=d0} (p_i - q_i)^2
    + (sqrt(sum_{i>d0} p_i^2) - sqrt(sum_{i>d0} q_i^2))^2``

    Parameters
    ----------
    head_dims:
        The split point ``d0``.
    operand_bits:
        Width used for transfer accounting (floats move 32-bit values in
        the paper's C++ baselines).
    """

    def __init__(self, head_dims: int, operand_bits: int = 32) -> None:
        super().__init__(name=f"LB_OST_{head_dims}", kind=LOWER)
        if head_dims <= 0:
            raise ConfigurationError("head_dims must be positive")
        self.head_dims = head_dims
        self.operand_bits = operand_bits
        self._heads: np.ndarray | None = None
        self._tail_norms: np.ndarray | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = _as_matrix(data)
        if data.shape[1] < self.head_dims:
            raise ConfigurationError(
                f"head_dims {self.head_dims} exceeds data dims {data.shape[1]}"
            )
        self._heads = data[:, : self.head_dims].copy()
        self._tail_norms = np.linalg.norm(data[:, self.head_dims :], axis=1)
        self._n_objects = data.shape[0]

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._heads is None or self._tail_norms is None:
            raise OperandError(f"{self.name} is not prepared")
        query = np.asarray(query, dtype=np.float64)
        q_head = query[: self.head_dims]
        q_tail_norm = float(np.linalg.norm(query[self.head_dims :]))
        heads = self._heads if indices is None else self._heads[indices]
        tails = (
            self._tail_norms if indices is None else self._tail_norms[indices]
        )
        diff = heads - q_head
        head_part = np.einsum("ij,ij->i", diff, diff)
        tail_part = (tails - q_tail_norm) ** 2
        return head_part + tail_part

    @property
    def per_object_transfer_bits(self) -> float:
        return float((self.head_dims + 1) * self.operand_bits)

    @property
    def per_object_flops(self) -> float:
        return 3.0 * self.head_dims + 3.0


class SMBound(Bound):
    """LB_SM: segmented-means lower bound of squared ED.

    ``LB_SM(p, q) = l * sum_i (mu(p_i) - mu(q_i))^2``
    """

    def __init__(self, n_segments: int, operand_bits: int = 32) -> None:
        super().__init__(name=f"LB_SM_{n_segments}", kind=LOWER)
        if n_segments <= 0:
            raise ConfigurationError("n_segments must be positive")
        self.n_segments = n_segments
        self.operand_bits = operand_bits
        self._means: np.ndarray | None = None
        self._segment_length: int | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = _as_matrix(data)
        summary = summarize(data, self.n_segments)
        self._means = summary.means
        self._segment_length = summary.segment_length
        self._n_objects = data.shape[0]

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if self._means is None or self._segment_length is None:
            raise OperandError(f"{self.name} is not prepared")
        q_means = summarize(np.asarray(query), self.n_segments).means
        means = self._means if indices is None else self._means[indices]
        diff = means - q_means
        return self._segment_length * np.einsum("ij,ij->i", diff, diff)

    @property
    def per_object_transfer_bits(self) -> float:
        return float(self.n_segments * self.operand_bits)

    @property
    def per_object_flops(self) -> float:
        return 3.0 * self.n_segments + 1.0


class FNNBound(Bound):
    """LB_FNN: segment mean + std lower bound of squared ED.

    ``LB_FNN(p, q) = l * sum_i ((mu_p,i - mu_q,i)^2 + (sigma_p,i - sigma_q,i)^2)``
    """

    def __init__(self, n_segments: int, operand_bits: int = 32) -> None:
        super().__init__(name=f"LB_FNN_{n_segments}", kind=LOWER)
        if n_segments <= 0:
            raise ConfigurationError("n_segments must be positive")
        self.n_segments = n_segments
        self.operand_bits = operand_bits
        self._means: np.ndarray | None = None
        self._stds: np.ndarray | None = None
        self._segment_length: int | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = _as_matrix(data)
        summary = summarize(data, self.n_segments)
        self._means = summary.means
        self._stds = summary.stds
        self._segment_length = summary.segment_length
        self._n_objects = data.shape[0]

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if (
            self._means is None
            or self._stds is None
            or self._segment_length is None
        ):
            raise OperandError(f"{self.name} is not prepared")
        q_summary = summarize(np.asarray(query), self.n_segments)
        means = self._means if indices is None else self._means[indices]
        stds = self._stds if indices is None else self._stds[indices]
        mu_diff = means - q_summary.means
        sd_diff = stds - q_summary.stds
        return self._segment_length * (
            np.einsum("ij,ij->i", mu_diff, mu_diff)
            + np.einsum("ij,ij->i", sd_diff, sd_diff)
        )

    @property
    def per_object_transfer_bits(self) -> float:
        # means and stds are both fetched per object
        return float(2 * self.n_segments * self.operand_bits)

    @property
    def per_object_flops(self) -> float:
        return 6.0 * self.n_segments + 1.0


class PartitionUpperBound(Bound):
    """UB_part (LEMP): upper bound of the dot product / cosine similarity.

    ``UB_part(p, q) = sum_{i<=d0} p_i q_i
    + sqrt(sum_{i>d0} p_i^2) * sqrt(sum_{i>d0} q_i^2)``

    holds by Cauchy-Schwarz on the tail. With ``normalize=True`` the
    bound is divided by ``|p| |q|``, upper-bounding cosine similarity.
    """

    def __init__(
        self, head_dims: int, operand_bits: int = 32, normalize: bool = True
    ) -> None:
        super().__init__(name=f"UB_part_{head_dims}", kind=UPPER)
        if head_dims <= 0:
            raise ConfigurationError("head_dims must be positive")
        self.head_dims = head_dims
        self.operand_bits = operand_bits
        self.normalize = normalize
        self._heads: np.ndarray | None = None
        self._tail_norms: np.ndarray | None = None
        self._full_norms: np.ndarray | None = None

    def prepare(self, data: np.ndarray) -> None:
        data = _as_matrix(data)
        if data.shape[1] < self.head_dims:
            raise ConfigurationError(
                f"head_dims {self.head_dims} exceeds data dims {data.shape[1]}"
            )
        self._heads = data[:, : self.head_dims].copy()
        self._tail_norms = np.linalg.norm(data[:, self.head_dims :], axis=1)
        self._full_norms = np.linalg.norm(data, axis=1)
        self._n_objects = data.shape[0]

    def evaluate(
        self, query: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        if (
            self._heads is None
            or self._tail_norms is None
            or self._full_norms is None
        ):
            raise OperandError(f"{self.name} is not prepared")
        query = np.asarray(query, dtype=np.float64)
        q_head = query[: self.head_dims]
        q_tail_norm = float(np.linalg.norm(query[self.head_dims :]))
        heads = self._heads if indices is None else self._heads[indices]
        tails = (
            self._tail_norms if indices is None else self._tail_norms[indices]
        )
        dot_ub = heads @ q_head + tails * q_tail_norm
        if not self.normalize:
            return dot_ub
        norms = (
            self._full_norms if indices is None else self._full_norms[indices]
        )
        q_norm = float(np.linalg.norm(query))
        denom = norms * q_norm
        out = np.zeros_like(dot_ub)
        nonzero = denom > 0
        out[nonzero] = dot_ub[nonzero] / denom[nonzero]
        return out

    @property
    def per_object_transfer_bits(self) -> float:
        return float((self.head_dims + 2) * self.operand_bits)

    @property
    def per_object_flops(self) -> float:
        return 2.0 * self.head_dims + 4.0

    @property
    def per_object_long_ops(self) -> float:
        return 1.0 if self.normalize else 0.0
