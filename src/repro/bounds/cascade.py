"""Bound cascades: progressive filtering with per-stage statistics.

The FNN algorithm (and every execution plan produced by the Section V-D
optimizer) applies a sequence of bounds of increasing tightness; each
stage evaluates only the survivors of the previous one. The cascade
records how many objects each stage evaluated and pruned — these counts
feed both the cost counters and the pruning-ratio estimation the planner
relies on (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bounds.base import Bound
from repro.cost.counters import PerfCounters
from repro.errors import PlanError
from repro.telemetry import get_recorder


@dataclass
class StageStats:
    """Evaluation/pruning counts of one cascade stage."""

    name: str
    evaluated: int = 0
    pruned: int = 0

    @property
    def pruning_ratio(self) -> float:
        """Fraction of evaluated objects the stage eliminated."""
        if self.evaluated == 0:
            return 0.0
        return self.pruned / self.evaluated


@dataclass
class CascadeResult:
    """Survivor indices plus their latest bound values."""

    indices: np.ndarray
    values: np.ndarray
    stats: list[StageStats] = field(default_factory=list)


class BoundCascade:
    """Ordered sequence of bounds applied filter-after-filter.

    All bounds must share pruning direction (all lower or all upper);
    mixing directions in one threshold-driven cascade is a plan error.
    """

    def __init__(self, bounds: list[Bound]) -> None:
        if not bounds:
            raise PlanError("a cascade needs at least one bound")
        kinds = {b.kind for b in bounds}
        if len(kinds) != 1:
            raise PlanError(
                f"cascade mixes bound kinds {sorted(kinds)}; "
                "use one direction per cascade"
            )
        self.bounds = list(bounds)
        self.kind = bounds[0].kind
        self.stats = [StageStats(name=b.name) for b in self.bounds]

    def prepare(self, data: np.ndarray) -> None:
        """Offline stage for every bound."""
        for bound in self.bounds:
            bound.prepare(data)

    def run(
        self,
        query: np.ndarray,
        threshold: float,
        counters: PerfCounters | None = None,
        indices: np.ndarray | None = None,
    ) -> CascadeResult:
        """Filter objects against a fixed threshold.

        Parameters
        ----------
        query:
            The online vector.
        threshold:
            Pruning threshold (k-th best distance/similarity so far).
        counters:
            When given, each stage charges its host-side cost.
        indices:
            Initial candidate set; ``None`` means every prepared object.

        Returns
        -------
        CascadeResult
            Indices surviving every stage and the last stage's values
            for them.
        """
        current = (
            np.arange(self.bounds[0].n_objects)
            if indices is None
            else np.asarray(indices)
        )
        values = np.empty(0)
        tele = get_recorder()
        for bound, stats in zip(self.bounds, self.stats):
            if current.size == 0:
                break
            span = (
                tele.begin_span(
                    f"cascade.{bound.name}", "bound_stage",
                    candidates=int(current.size),
                )
                if tele.enabled
                else None
            )
            values = bound.evaluate(query, current)
            if counters is not None:
                bound.charge(counters, int(current.size))
            keep = ~bound.prunes(values, threshold)
            evaluated = int(current.size)
            pruned = int(current.size - keep.sum())
            stats.evaluated += evaluated
            stats.pruned += pruned
            current = current[keep]
            values = values[keep]
            if span is not None:
                tele.end_span(pruned=pruned)
                m = tele.metrics
                m.counter(f"cascade.{bound.name}.evaluated").add(evaluated)
                m.counter(f"cascade.{bound.name}.pruned").add(pruned)
                m.gauge(f"cascade.{bound.name}.prune_ratio").set(
                    pruned / evaluated if evaluated else 0.0
                )
        return CascadeResult(
            indices=current, values=values, stats=self.stats
        )

    def pruning_ratios(self) -> dict[str, float]:
        """Observed per-stage pruning ratios (planner input)."""
        return {s.name: s.pruning_ratio for s in self.stats}

    def reset_stats(self) -> None:
        """Zero all per-stage counters."""
        for stats in self.stats:
            stats.evaluated = 0
            stats.pruned = 0
