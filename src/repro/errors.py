"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of the simulator and the mining framework with a
single ``except`` clause while still being able to discriminate precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigurationError(ReproError):
    """A hardware or algorithm configuration value is invalid."""


class CapacityError(ReproError):
    """The PIM array cannot accommodate the requested data.

    Raised by the memory manager when no compressed dimensionality ``s``
    satisfies Theorem 4 for the given hardware budget, and by the mapper
    when a caller tries to program more data than the array holds.
    """


class EnduranceExceededError(ReproError):
    """A ReRAM cell was written more times than its rated endurance."""


class OperandError(ReproError):
    """An operand violates PIM constraints (negative, too wide, wrong shape)."""


class ProgrammingError(ReproError):
    """The PIM array is used before data has been programmed onto it,
    or programmed twice without an explicit reset."""


class PlanError(ReproError):
    """The execution-plan optimizer was given an unusable bound set."""


class DatasetError(ReproError):
    """A dataset request cannot be fulfilled (unknown name, bad shape)."""


class ServingError(ReproError):
    """The serving layer is misconfigured or violated an invariant
    (bad placement, unknown tenant, exhausted re-programming budget)."""


class AdmissionError(ServingError):
    """A request was refused at admission (used internally to signal
    sheds; callers normally observe shed counters, not this exception)."""
