"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of the simulator and the mining framework with a
single ``except`` clause while still being able to discriminate precisely.

Hardware *fault* conditions (injected or organic) derive from
:class:`FaultError` and carry structured context — the failing unit, the
simulated timestamp, and kind-specific details — so the serving layer can
convert them into shed reason codes and operators can correlate an error
with the fault-timeline telemetry instead of parsing message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigurationError(ReproError):
    """A hardware or algorithm configuration value is invalid."""


class CapacityError(ReproError):
    """The PIM array cannot accommodate the requested data.

    Raised by the memory manager when no compressed dimensionality ``s``
    satisfies Theorem 4 for the given hardware budget, and by the mapper
    when a caller tries to program more data than the array holds.
    """


class FaultError(ReproError):
    """A hardware or shard fault (injected or organic) surfaced.

    Parameters
    ----------
    message:
        Human-readable description (kept as ``str(exc)``).
    unit:
        The failing unit — a crossbar id, ``"shard3"``, an array name.
    timestamp_ns:
        Simulated time the fault surfaced (the fault clock / service
        clock, whichever raised).
    **context:
        Kind-specific structured details (write counts, chunk ids,
        elapsed time…), exposed as :attr:`context`.

    The serving layer converts these into sheds with :attr:`reason` as
    the shed reason code rather than letting them crash the event loop.
    """

    #: Shed reason code the serving layer files this fault under.
    reason = "fault"

    def __init__(
        self,
        message: str,
        *,
        unit=None,
        timestamp_ns: float | None = None,
        **context,
    ) -> None:
        super().__init__(message)
        self.unit = unit
        self.timestamp_ns = timestamp_ns
        self.context = dict(context)


class EnduranceExceededError(FaultError):
    """A ReRAM cell was written more times than its rated endurance.

    Carries the worn unit id, its cumulative write count and the rated
    endurance as structured context (``unit``, ``context["writes"]``,
    ``context["endurance"]``).
    """

    reason = "endurance"


class CrossbarDeadError(FaultError):
    """A crossbar (or a whole PIM array) died and no longer answers waves."""

    reason = "fault:crossbar_dead"


class ShardCrashedError(FaultError):
    """A serving shard crashed; dispatches to it fail fast."""

    reason = "fault:shard_crash"


class ShardHungError(FaultError, TimeoutError):
    """A shard dispatch hung past the watchdog with no replica to fail
    over to. ``TimeoutError``-family so generic timeout handlers apply."""

    reason = "fault:shard_hung"


class WaveCorruptionError(FaultError):
    """A PIM wave failed its integrity (residue/checksum) verification
    and no recovery path (retry, replica, degraded recompute) was left."""

    reason = "fault:wave_corrupt"


class ChunkUnavailableError(FaultError):
    """Every replica of a data chunk is dead and degraded host-side
    recomputation is disabled — the query cannot be answered exactly."""

    reason = "fault:chunk_unavailable"


class OperandError(ReproError):
    """An operand violates PIM constraints (negative, too wide, wrong shape)."""


class ProgrammingError(ReproError):
    """The PIM array is used before data has been programmed onto it,
    or programmed twice without an explicit reset."""


class PlanError(ReproError):
    """The execution-plan optimizer was given an unusable bound set."""


class DatasetError(ReproError):
    """A dataset request cannot be fulfilled (unknown name, bad shape)."""


class ServingError(ReproError):
    """The serving layer is misconfigured or violated an invariant
    (bad placement, unknown tenant, exhausted re-programming budget)."""


class AdmissionError(ServingError):
    """A request was refused at admission (used internally to signal
    sheds; callers normally observe shed counters, not this exception)."""


class WatchdogTimeoutError(ServingError, TimeoutError):
    """The serving event loop stopped making progress (a hung dispatch
    or a non-terminating drain) and the watchdog terminated the run."""


class CheckpointError(ReproError):
    """A checkpoint cannot be written, read, or trusted: unsupported
    version, truncated payload, an integrity hash that does not match
    its array, or restored state inconsistent with the manifest."""
