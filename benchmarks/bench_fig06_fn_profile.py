"""Fig. 6 — execution-time breakdown by function.

Paper series: per algorithm, the share of time in ED, the bound
functions, bound updates and everything else.

Expected shape: ED dominates Standard kNN; the LB_* bounds dominate the
bound-based kNN algorithms (72-86%% in the paper); ED takes 52-96%% of
every k-means algorithm, with Elkan spending a large share on bound
maintenance.
"""

from __future__ import annotations

from repro.core.profiler import profile_kmeans, profile_knn
from repro.core.report import format_table
from repro.mining.kmeans import initial_centers, make_kmeans
from repro.mining.knn import make_baseline

KNN_ALGOS = ["Standard", "OST", "SM", "FNN"]
KMEANS_ALGOS = ["Standard", "Elkan", "Drake", "Yinyang"]


def _function_rows(profiles):
    rows = []
    for profile in profiles:
        fractions = profile.function_fractions()
        bound_share = sum(
            v for k, v in fractions.items() if k.startswith(("LB_", "UB_"))
        )
        rows.append(
            [
                profile.name,
                f"{fractions.get('euclidean', fractions.get('ED', 0.0)) * 100:.1f}%",
                f"{bound_share * 100:.1f}%",
                f"{fractions.get('bound_update', 0.0) * 100:.1f}%",
                f"{fractions.get('other', 0.0) * 100:.1f}%",
            ]
        )
    return rows


def test_fig06_fn_profile(benchmark, msd_workload, kmeans_datasets, save_results):
    data, queries = msd_workload
    knn_profiles = [
        profile_knn(
            make_baseline(name, data.shape[1]).fit(data), queries, k=10
        )
        for name in KNN_ALGOS
    ]
    nuswide = kmeans_datasets["NUS-WIDE"]
    centers = initial_centers(nuswide, 64, seed=1)
    kmeans_profiles = [
        profile_kmeans(
            make_kmeans(name, 64, max_iters=8), nuswide,
            centers=centers.copy(),
        )
        for name in KMEANS_ALGOS
    ]

    headers = ["algorithm", "ED", "bounds", "bound_update", "other"]
    text = "\n\n".join(
        [
            format_table(
                headers,
                _function_rows(knn_profiles),
                title="Fig 6(a): kNN on MSD (k=10) — time share by function",
            ),
            format_table(
                headers,
                _function_rows(kmeans_profiles),
                title=(
                    "Fig 6(b): k-means on NUS-WIDE (k=64) — "
                    "time share by function"
                ),
            ),
        ]
    )
    save_results("fig06_fn_profile", text)

    # paper shapes
    standard = knn_profiles[0].function_fractions()
    assert standard["euclidean"] > 0.8
    for profile in knn_profiles[1:]:
        fractions = profile.function_fractions()
        bound_share = sum(
            v for k, v in fractions.items() if k.startswith("LB_")
        )
        assert bound_share > fractions.get("euclidean", 0.0), profile.name
    for profile in kmeans_profiles:
        assert profile.function_fractions()["ED"] > 0.5, profile.name

    algo = make_baseline("FNN", data.shape[1]).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))
