"""Fig. 5 — CPU-time breakdown by hardware component.

Paper series: for each kNN algorithm (Standard/FNN/SM/OST on MSD, k=10)
and each k-means algorithm (Standard/Elkan/Drake/Yinyang on NUS-WIDE,
k=64), the share of Tc / Tcache / TALU / TBr / TFe per Eq. 1.

Expected shape: Tcache dominates — 65-83%% for kNN, 62-75%% for k-means
in the paper — which is the motivation for PIM.
"""

from __future__ import annotations

from repro.core.profiler import profile_kmeans, profile_knn
from repro.core.report import format_table
from repro.mining.kmeans import initial_centers, make_kmeans
from repro.mining.knn import make_baseline

KNN_ALGOS = ["Standard", "FNN", "SM", "OST"]
KMEANS_ALGOS = ["Standard", "Elkan", "Drake", "Yinyang"]
COMPONENTS = ["Tc", "Tcache", "TALU", "TBr", "TFe"]


def _component_rows(profiles):
    rows = []
    for profile in profiles:
        fractions = profile.component_fractions()
        rows.append(
            [profile.name] + [f"{fractions[c] * 100:.1f}%" for c in COMPONENTS]
        )
    return rows


def test_fig05_hw_profile(benchmark, msd_workload, kmeans_datasets, save_results):
    data, queries = msd_workload
    knn_profiles = [
        profile_knn(
            make_baseline(name, data.shape[1]).fit(data), queries, k=10
        )
        for name in KNN_ALGOS
    ]

    nuswide = kmeans_datasets["NUS-WIDE"]
    centers = initial_centers(nuswide, 64, seed=1)
    kmeans_profiles = [
        profile_kmeans(
            make_kmeans(name, 64, max_iters=8), nuswide,
            centers=centers.copy(),
        )
        for name in KMEANS_ALGOS
    ]

    text = "\n\n".join(
        [
            format_table(
                ["algorithm"] + COMPONENTS,
                _component_rows(knn_profiles),
                title="Fig 5(a): kNN on MSD (k=10) — CPU time share",
            ),
            format_table(
                ["algorithm"] + COMPONENTS,
                _component_rows(kmeans_profiles),
                title="Fig 5(b): k-means on NUS-WIDE (k=64) — CPU time share",
            ),
        ]
    )
    save_results("fig05_hw_profile", text)

    # paper shape: memory stalls dominate every algorithm
    for profile in knn_profiles + kmeans_profiles:
        assert profile.component_fractions()["Tcache"] > 0.4, profile.name

    algo = make_baseline("Standard", data.shape[1]).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))
