"""Fig. 7 — No-PIM vs PIM-oracle (Eq. 2) for kNN and k-means.

Paper series: per algorithm, total execution time and the theoretical
optimum if every offloadable function became free.

Expected shape: enormous oracle gains for the kNN algorithms (the paper
reports 183.9x for Standard) and for Standard k-means (51.4x), but much
smaller gains for Drake/Yinyang/Elkan (7.5x/5.3x/2.2x) because ED is a
smaller share of their time.
"""

from __future__ import annotations

from repro.core.profiler import profile_kmeans, profile_knn
from repro.core.report import format_table
from repro.mining.kmeans import initial_centers, make_kmeans
from repro.mining.knn import make_baseline

KNN_ALGOS = ["Standard", "OST", "SM", "FNN"]
KMEANS_ALGOS = ["Standard", "Elkan", "Drake", "Yinyang"]


def test_fig07_pim_oracle(benchmark, msd_workload, kmeans_datasets, save_results):
    data, queries = msd_workload
    knn_rows = []
    for name in KNN_ALGOS:
        profile = profile_knn(
            make_baseline(name, data.shape[1]).fit(data), queries, k=10
        )
        knn_rows.append(
            [
                name,
                profile.total_time_ms,
                profile.pim_oracle_ns / 1e6,
                f"{profile.oracle_speedup:.1f}x",
            ]
        )

    nuswide = kmeans_datasets["NUS-WIDE"]
    centers = initial_centers(nuswide, 64, seed=1)
    kmeans_rows = []
    oracle_speedups = {}
    for name in KMEANS_ALGOS:
        profile = profile_kmeans(
            make_kmeans(name, 64, max_iters=8), nuswide,
            centers=centers.copy(),
        )
        iters = profile.extras["n_iterations"]
        kmeans_rows.append(
            [
                name,
                profile.total_time_ms / iters,
                profile.pim_oracle_ns / 1e6 / iters,
                f"{profile.oracle_speedup:.1f}x",
            ]
        )
        oracle_speedups[name] = profile.oracle_speedup

    headers = ["algorithm", "No-PIM (ms)", "PIM-oracle (ms)", "gain"]
    text = "\n\n".join(
        [
            format_table(
                headers, knn_rows,
                title="Fig 7(a): kNN on MSD (k=10), total over 5 queries",
            ),
            format_table(
                headers, kmeans_rows,
                title="Fig 7(b): k-means on NUS-WIDE (k=64), ms/iteration",
            ),
        ]
    )
    save_results("fig07_pim_oracle", text)

    # paper shape: Standard k-means has the largest oracle gain; the
    # bound-heavy algorithms (especially Elkan) gain the least
    assert oracle_speedups["Standard"] > oracle_speedups["Elkan"]
    assert oracle_speedups["Standard"] > oracle_speedups["Yinyang"]

    algo = make_kmeans("Standard", 64, max_iters=1)
    benchmark.pedantic(
        lambda: algo.fit(nuswide, centers.copy()), rounds=2, iterations=1
    )
