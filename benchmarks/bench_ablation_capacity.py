"""Ablation — PIM-array capacity vs Theorem 4 compression vs speed.

The paper fixes a 2 GB PIM array; Section V-C's memory manager picks the
compressed dimensionality ``s`` for whatever capacity exists. This bench
sweeps the array size and reports the chosen ``s``, the resulting kNN
time and the speedup over the CPU baseline — showing how the gain
degrades gracefully as the array shrinks (a crossover the paper's fixed
configuration cannot show).
"""

from __future__ import annotations

from repro.core.memory_manager import choose_fnn_segments
from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.errors import CapacityError
from repro.hardware.config import pim_platform
from repro.hardware.controller import PIMController
from repro.mining.knn import StandardKNN, StandardPIMKNN

#: Sweep points: below ~1.5 MiB the scaled MSD does not fit at all;
#: ~1.5 MiB forces s=105 (the paper's compression); ~8 MiB fits full d.
CAPACITIES_KIB = [1024, 1536, 8192, 16384]
K = 10


def test_ablation_capacity(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    n, dims = data.shape
    base = profile_knn(StandardKNN().fit(data), queries, K)

    rows = []
    speedups = []
    for kib in CAPACITIES_KIB:
        platform = pim_platform(pim_capacity_bytes=kib * 1024)
        try:
            s = choose_fnn_segments(n, dims, platform.pim)
        except CapacityError:
            rows.append([kib, "-", "does not fit", "-"])
            continue
        controller = PIMController(platform)
        algo = StandardPIMKNN(
            controller=controller,
            n_segments=s if s < dims else None,
        ).fit(data)
        pim = profile_knn(algo, queries, K)
        speedup = base.total_time_ns / pim.total_time_ns
        speedups.append(speedup)
        rows.append([kib, s, pim.total_time_ms, f"{speedup:.1f}x"])

    text = format_table(
        ["PIM capacity (KiB)", "Theorem-4 s", "time (ms)", "speedup"],
        rows,
        title=(
            "Ablation: PIM array capacity vs compression vs kNN speedup "
            f"(MSD, k={K}; baseline {base.total_time_ms:.3f} ms)"
        ),
    )
    save_results("ablation_capacity", text)

    # graceful degradation: more capacity never hurts
    assert speedups == sorted(speedups)
    assert speedups[-1] > 5.0

    platform = pim_platform(pim_capacity_bytes=CAPACITIES_KIB[-1] * 1024)
    benchmark.pedantic(
        lambda: choose_fnn_segments(n, dims, platform.pim),
        rounds=5,
        iterations=1,
    )
