"""Fig. 17 — pre-processing (offline-stage) time, FNN vs FNN-PIM-optimize.

Paper series: per kNN dataset, the time to prepare each algorithm's
auxiliary data. FNN computes and stores *three* summary matrices (the
d/64, d/16, d/4 ladder) in DRAM; FNN-PIM-optimize prepares only the one
matrix the optimized plan needs, but pays ReRAM's slower writes for the
crossbar programming and the Phi side data.

Expected shape: FNN-PIM-optimize is slower (the paper reports 1.9x on
average — ReRAM writes cost more) but writes less data (~33% fewer
writes on MSD, one matrix instead of three).
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.hardware.config import MemoryConfig
from repro.hardware.controller import PIMController
from repro.hardware.memory import MemoryArray
from repro.mining.knn.base import OPERAND_BYTES
from repro.similarity.segments import fnn_segment_ladder, summarize
from repro.bounds.pim import PIMFNNBound


def _fnn_preprocessing_ns(data: np.ndarray) -> tuple[float, float]:
    """(time, bytes) to build the baseline FNN ladder in DRAM."""
    dram = MemoryArray(MemoryConfig(), device="dram")
    total_bytes = 0.0
    for segments in fnn_segment_ladder(data.shape[1]):
        summary = summarize(data, segments)
        total_bytes += (
            summary.means.size + summary.stds.size
        ) * OPERAND_BYTES
    return dram.write_time_ns(total_bytes), total_bytes


def _pim_preprocessing_ns(
    data: np.ndarray, segments: int
) -> tuple[float, float]:
    """(time, bytes) to program the optimized single-bound PIM plan."""
    controller = PIMController()
    bound = PIMFNNBound(segments, controller)
    bound.prepare(data)
    receipt = controller.receipt(bound._matrix_name)
    layout = controller.pim.layouts()[bound._matrix_name]
    payload_bytes = layout.storage_bits / 8 + data.shape[0] * 8
    return receipt.total_ns, payload_bytes


def test_fig17_preprocessing(benchmark, knn_workloads, save_results):
    rows = []
    ratios = {}
    for dataset, (data, _) in knn_workloads.items():
        ladder = fnn_segment_ladder(data.shape[1])
        fnn_ns, fnn_bytes = _fnn_preprocessing_ns(data)
        pim_ns, pim_bytes = _pim_preprocessing_ns(data, ladder[-1])
        ratios[dataset] = pim_ns / fnn_ns
        rows.append(
            [
                dataset,
                fnn_ns / 1e6,
                pim_ns / 1e6,
                f"{ratios[dataset]:.1f}x",
                fnn_bytes / 1024,
                pim_bytes / 1024,
            ]
        )
    text = format_table(
        [
            "dataset",
            "FNN (ms)",
            "FNN-PIM-optimize (ms)",
            "slowdown",
            "FNN writes (KiB)",
            "PIM writes (KiB)",
        ],
        rows,
        title="Fig 17: pre-processing time for kNN classification",
    )
    save_results("fig17_preprocessing", text)

    # paper shapes: PIM pre-processing is slower (ReRAM writes) even
    # though it writes less data (one matrix vs the three-level ladder)
    for dataset, ratio in ratios.items():
        assert ratio > 1.0, dataset
    for row in rows:
        assert row[5] < row[4], row[0]  # fewer bytes written

    data, _ = knn_workloads["MSD"]
    benchmark.pedantic(
        lambda: _pim_preprocessing_ns(data, 105), rounds=3, iterations=1
    )
