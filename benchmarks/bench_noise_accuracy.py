"""Ablation — analog noise: approximate values vs bound-and-refine.

The paper's Section II-A design argument: GraphR-style approximate
analog computation "may compromise the accuracy of results in data
mining tasks (e.g., kNN classification)"; computing *bounds* on PIM and
refining survivors exactly preserves accuracy. This bench quantifies
both sides under growing cell noise:

* *naive analog*: trust the noisy PIM reading as the distance and rank
  by it — recall@k degrades quickly;
* *bound-and-refine* (the paper's design): compensate the reading into
  a guaranteed bound, filter, refine exactly — recall stays 1.0; noise
  only costs extra refinements (tightness, not correctness).
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.hardware.controller import PIMController
from repro.hardware.noise import NoiseModel
from repro.mining.knn import StandardKNN, StandardPIMKNN
from repro.similarity.quantization import Quantizer

SIGMAS = [0.0, 0.005, 0.02, 0.05]
K = 10


def _naive_analog_recall(data, query, noise, true_top) -> float:
    """recall@k of ranking by the raw noisy analog 'distance'."""
    controller = PIMController(noise=noise)
    quantizer = Quantizer(assume_normalized=True)
    quantizer.fit(data)
    qv = quantizer.quantize(data)
    qq = quantizer.quantize(query)
    controller.program("naive", qv.integers)
    noisy_dots = controller.dot_products("naive", qq.integers).values
    phi_p = (qv.scaled**2).sum(axis=1)
    phi_q = float((qq.scaled**2).sum())
    approx = (phi_p + phi_q - 2.0 * noisy_dots) / quantizer.alpha**2
    naive_top = set(np.argsort(approx)[:K].tolist())
    return len(naive_top & true_top) / K


def test_noise_accuracy(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    query = queries[0]
    ref = StandardKNN().fit(data).query(query, K)
    true_top = set(ref.indices.tolist())

    rows = []
    naive_recalls = {}
    refinements = {}
    for sigma in SIGMAS:
        noise = NoiseModel(cell_sigma=sigma, seed=11)
        naive_recalls[sigma] = _naive_analog_recall(
            data, query, noise, true_top
        )
        algo = StandardPIMKNN(controller=PIMController(noise=noise))
        result = algo.fit(data).query(query, K)
        bounded_recall = len(set(result.indices.tolist()) & true_top) / K
        refinements[sigma] = result.exact_computations
        rows.append(
            [
                f"{sigma:.3f}",
                f"{naive_recalls[sigma]:.2f}",
                f"{bounded_recall:.2f}",
                result.exact_computations,
            ]
        )
    text = format_table(
        [
            "cell sigma",
            "naive analog recall@10",
            "bound+refine recall@10",
            "exact refinements",
        ],
        rows,
        title=(
            "Ablation: accuracy under analog noise (MSD, k=10) — "
            "the Section II-A argument for bound-based PIM"
        ),
    )
    save_results("ablation_noise_accuracy", text)

    # shapes: naive degrades with noise, bound+refine never does, and
    # the price of noise is only extra refinements
    assert naive_recalls[SIGMAS[0]] == 1.0
    assert naive_recalls[SIGMAS[-1]] < 0.8
    assert all(row[2] == "1.00" for row in rows)
    assert refinements[SIGMAS[-1]] >= refinements[SIGMAS[0]]

    noise = NoiseModel(cell_sigma=0.02, seed=11)
    algo = StandardPIMKNN(controller=PIMController(noise=noise)).fit(data)
    benchmark(lambda: algo.query(query, K))
