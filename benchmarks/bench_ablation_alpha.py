"""Ablation — quantization scaling factor alpha (Theorem 3).

The paper picks alpha=1e6 and proves the LB_PIM-ED gap is at most
``4d/alpha + 2d/alpha^2``. This bench sweeps alpha and reports the
measured mean gap, the Theorem 3 cap, the pruning ratio at the true
k-th-NN threshold, and the operand bits the quantized values need —
the tightness/width trade-off behind the paper's choice.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.pim import PIMEuclideanBound
from repro.core.report import format_table
from repro.hardware.controller import PIMController
from repro.similarity.measures import euclidean_batch
from repro.similarity.quantization import Quantizer

ALPHAS = [1e2, 1e3, 1e4, 1e6]
K = 10


def test_ablation_alpha(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    dims = data.shape[1]
    q = queries[0]
    ed = euclidean_batch(data, q)
    kth = float(np.sort(ed)[K - 1])

    rows = []
    ratios = {}
    for alpha in ALPHAS:
        quantizer = Quantizer(alpha=alpha, assume_normalized=True)
        bound = PIMEuclideanBound(PIMController(), quantizer)
        bound.prepare(data)
        lb = bound.evaluate(q)
        gap = float(np.mean(ed - lb))
        ratios[alpha] = float((lb > kth).mean())
        rows.append(
            [
                f"{alpha:.0e}",
                gap,
                quantizer.error_bound(dims),
                f"{ratios[alpha] * 100:.1f}%",
                quantizer.operand_bits,
            ]
        )
    text = format_table(
        [
            "alpha",
            "mean gap ED-LB",
            "Theorem 3 cap",
            "prune ratio",
            "operand bits",
        ],
        rows,
        title="Ablation: LB_PIM-ED tightness vs alpha (MSD, k=10)",
    )
    save_results("ablation_alpha", text)

    # Theorem 3 behaviour: monotone tightening, never above the cap
    gaps = [row[1] for row in rows]
    assert all(g1 >= g2 - 1e-12 for g1, g2 in zip(gaps, gaps[1:]))
    for row in rows:
        assert row[1] <= row[2] + 1e-9
    assert ratios[ALPHAS[-1]] >= ratios[ALPHAS[0]]

    bound = PIMEuclideanBound(PIMController())
    bound.prepare(data)
    benchmark(lambda: bound.evaluate(q))
