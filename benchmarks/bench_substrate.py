"""Substrate subsystem gates: exactness, timing goldens, cost routing.

The substrate claim has three legs, and this bench drives all of them
against live devices rather than recorded snapshots:

* **Bit-exactness** — the same kNN/assign answers come back from the
  ReRAM crossbar backend, the HBM-PIM bank-MAC backend, and a mixed
  fleet with replication + cost routing. Substrates may disagree on
  nanoseconds, never on values.
* **Timing goldens** — the per-command DRAM model (tRP/tRCD row
  activates, tCCD-paced MACs, MOV/FILL drains) is checked against
  hand-derived cycle arithmetic, and the capability predictions the
  router plans with are checked against what a live device actually
  charges for the same wave.
* **Router efficacy** — on a mixed workload (interactive low-dim waves
  + analytical high-dim batches) the cost router picks different
  winners per shape and its total predicted cost beats the worst
  single-backend placement; live mixed serving confirms the same
  winners in its routing report.

Dual mode: a pytest bench (``pytest benchmarks/bench_substrate.py``)
and a standalone CLI (``python benchmarks/bench_substrate.py --smoke``)
used by the CI ``substrate`` job, which uploads the routing-decision
JSON written to ``--out``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.hardware.banked_memory import (
    bank_batch_timing,
    plan_bank_layout,
)
from repro.hardware.config import HBMPIMConfig, hbm_pim_platform
from repro.serving import ShardManager
from repro.substrate import (
    CostRouter,
    available_substrates,
    create_substrate,
    substrate_capabilities,
)

RESULTS_DIR = Path(__file__).parent / "results"

K = 10
N_SHARDS = 4
REPLICATION = 2
#: The two serving workloads the router must split between backends:
#: many small low-dim waves (bank MACs win: a handful of bursts, no
#: pipeline fill) vs wide high-dim batches (crossbars win: one wave
#: deep while the GRF streams hundreds of bursts per vector).
WORKLOADS = {
    "interactive": {"n_rows": 1024, "dims": 24, "batch": 4},
    "analytical": {"n_rows": 4096, "dims": 420, "batch": 16},
}
SMOKE_WORKLOADS = {
    "interactive": {"n_rows": 512, "dims": 24, "batch": 4},
    "analytical": {"n_rows": 2048, "dims": 420, "batch": 8},
}

#: Hand-derived cycle goldens for the 128 x 16 @ 32-bit layout (one
#: row, one GRF segment, 2 bursts/vector, 2 vectors/bank):
#:   activate  = 1 row * 1 segment * (tRP 14 + tRCD 14) = 28
#:   broadcast = 2 bursts * MOV 2                        =  4
#:   MAC       = 2 vectors * 2 bursts * tCCD 2           =  8
#:   drain     = 2 vectors * (FILL 1 + MOV 2)            =  6
GOLDEN_SETUP_CYCLES = 28
GOLDEN_PER_QUERY_CYCLES = 4 + 8 + 6


def _dataset(n_rows: int, dims: int, seed: int = 42) -> np.ndarray:
    return np.random.default_rng(seed).random((n_rows, dims))


def _queries(dims: int, batch: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).random((batch, dims))


# ----------------------------------------------------------------------
# gate 1: bit-exactness across substrates and placements
# ----------------------------------------------------------------------
def check_exactness(smoke: bool = False) -> dict:
    """Same answers from every backend and every placement of one."""
    shapes = SMOKE_WORKLOADS if smoke else WORKLOADS
    cfg = shapes["interactive"]
    data = _dataset(cfg["n_rows"], cfg["dims"])
    queries = _queries(cfg["dims"], cfg["batch"])
    centers = _dataset(12, cfg["dims"], seed=9)
    baseline = ShardManager(data, n_shards=1)
    base_knn, _ = baseline.knn_batch(queries, K)
    base_assign, _ = baseline.assign(centers)

    fleets = {
        "crossbar": ShardManager(
            data, n_shards=N_SHARDS, substrates="crossbar"
        ),
        "hbm_pim": ShardManager(
            data, n_shards=N_SHARDS, substrates="hbm_pim"
        ),
        "mixed": ShardManager(
            data,
            n_shards=N_SHARDS,
            replication=REPLICATION,
            substrates=["crossbar", "hbm_pim"] * (N_SHARDS // 2),
        ),
    }
    comparisons = {}
    for name, manager in fleets.items():
        got_knn, _ = manager.knn_batch(queries, K)
        got_assign, _ = manager.assign(centers)
        comparisons[name] = bool(
            all(
                np.array_equal(a.indices, b.indices)
                and np.array_equal(a.scores, b.scores)
                for a, b in zip(base_knn, got_knn)
            )
            and np.array_equal(
                base_assign.assignments, got_assign.assignments
            )
            and np.array_equal(
                base_assign.distances, got_assign.distances
            )
        )
    return {
        "workload": cfg,
        "fleets": comparisons,
        "identical": all(comparisons.values()),
    }


# ----------------------------------------------------------------------
# gate 2: timing goldens + prediction/device agreement
# ----------------------------------------------------------------------
def check_timing(smoke: bool = False) -> dict:
    """Independent cycle arithmetic + capability/device agreement."""
    cfg = HBMPIMConfig()
    hw = hbm_pim_platform()
    layout = plan_bank_layout(128, 16, cfg)
    batch = bank_batch_timing(layout, cfg, hw, n_queries=4)
    golden_total = GOLDEN_SETUP_CYCLES + 4 * GOLDEN_PER_QUERY_CYCLES
    golden_ok = (
        batch.setup_cycles == GOLDEN_SETUP_CYCLES
        and batch.per_query_cycles == GOLDEN_PER_QUERY_CYCLES
        and batch.total_cycles == golden_total
    )

    n, dims, waves = (300, 24, 4) if smoke else (1200, 48, 8)
    rng = np.random.default_rng(3)
    matrix = rng.integers(0, 127, size=(n, dims)).astype(np.int64)
    queries = rng.integers(0, 127, size=(waves, dims)).astype(np.int64)
    agreement = {}
    for name in available_substrates():
        device = create_substrate(name)
        caps = substrate_capabilities(name)
        device.program_matrix("m", matrix)
        before = device.stats.pim_time_ns
        device.query_batch("m", queries)
        charged = device.stats.pim_time_ns - before
        predicted = caps.predict_query_ns(n, dims, waves)
        agreement[name] = {
            "charged_ns": charged,
            "predicted_ns": predicted,
            "relative_error": abs(charged - predicted)
            / max(charged, 1e-12),
        }
    return {
        "golden": {
            "setup_cycles": batch.setup_cycles,
            "per_query_cycles": batch.per_query_cycles,
            "total_cycles": batch.total_cycles,
            "expected_total_cycles": golden_total,
            "ok": bool(golden_ok),
        },
        "prediction_vs_device": agreement,
        "ok": bool(
            golden_ok
            and all(
                entry["relative_error"] < 1e-9
                for entry in agreement.values()
            )
        ),
    }


# ----------------------------------------------------------------------
# gate 3: the cost router earns its keep on a mixed workload
# ----------------------------------------------------------------------
def check_routing(smoke: bool = False) -> dict:
    """Winner flips per shape; routed cost beats the worst placement.

    Predicted costs come from the same capability models the router
    uses at serve time; the live section below confirms the report a
    real mixed fleet emits agrees with them.
    """
    shapes = SMOKE_WORKLOADS if smoke else WORKLOADS
    router = CostRouter()
    substrates = available_substrates()
    per_shape = {}
    totals = {name: 0.0 for name in substrates}
    routed_total = 0.0
    for shape_name, cfg in shapes.items():
        n_local = cfg["n_rows"] // N_SHARDS
        costs = {
            name: router.predict(
                name, n_local, cfg["dims"], cfg["batch"]
            )
            for name in substrates
        }
        winner = min(costs, key=lambda name: costs[name])
        per_shape[shape_name] = {
            "per_shard_rows": n_local,
            "dims": cfg["dims"],
            "batch": cfg["batch"],
            "predicted_ns": costs,
            "winner": winner,
        }
        for name, cost in costs.items():
            totals[name] += cost
        routed_total += costs[winner]
    winners = {entry["winner"] for entry in per_shape.values()}
    worst = max(totals.values())
    best = min(totals.values())
    return {
        "objective": "latency",
        "shapes": per_shape,
        "single_backend_total_ns": totals,
        "routed_total_ns": routed_total,
        "speedup_vs_worst_single": worst / routed_total,
        "speedup_vs_best_single": best / routed_total,
        "winner_flips": len(winners) > 1,
        "beats_worst_single": routed_total < worst,
    }


def run_mixed_serving(smoke: bool = False) -> dict:
    """Live mixed fleets: routed answers identical, decisions logged."""
    shapes = SMOKE_WORKLOADS if smoke else WORKLOADS
    runs = {}
    for shape_name, cfg in shapes.items():
        data = _dataset(cfg["n_rows"], cfg["dims"])
        queries = _queries(cfg["dims"], cfg["batch"])
        baseline, _ = ShardManager(data, n_shards=1).knn_batch(
            queries, K
        )
        mixed = ShardManager(
            data,
            n_shards=N_SHARDS,
            replication=REPLICATION,
            substrates=["crossbar", "hbm_pim"] * (N_SHARDS // 2),
        )
        routed, timing = mixed.knn_batch(queries, K)
        identical = all(
            np.array_equal(a.indices, b.indices)
            and np.array_equal(a.scores, b.scores)
            for a, b in zip(baseline, routed)
        )
        report = mixed.routing_report()
        winner_counts: dict[str, int] = {}
        for decision in report["decisions"]:
            name = decision["winner_substrate"]
            winner_counts[name] = winner_counts.get(name, 0) + 1
        runs[shape_name] = {
            "workload": cfg,
            "identical": bool(identical),
            "service_ns": float(timing.service_ns),
            "winner_counts": winner_counts,
            "routing": report,
        }
    return runs


def run_gates(smoke: bool = False) -> dict:
    exactness = check_exactness(smoke=smoke)
    timing = check_timing(smoke=smoke)
    routing = check_routing(smoke=smoke)
    serving = run_mixed_serving(smoke=smoke)
    live_winners = {
        shape: max(
            run["winner_counts"], key=run["winner_counts"].get
        )
        for shape, run in serving.items()
    }
    violations = []
    if not exactness["identical"]:
        bad = [k for k, v in exactness["fleets"].items() if not v]
        violations.append(f"answers drifted on fleets: {bad}")
    if not timing["ok"]:
        violations.append("timing goldens or predictions diverged")
    if not routing["winner_flips"]:
        violations.append("router picked one backend for every shape")
    if not routing["beats_worst_single"]:
        violations.append(
            "routed cost does not beat the worst single backend"
        )
    for shape, run in serving.items():
        if not run["identical"]:
            violations.append(f"live mixed serving drifted on {shape}")
        predicted = routing["shapes"][shape]["winner"]
        if live_winners[shape] != predicted:
            violations.append(
                f"live winner {live_winners[shape]} != predicted "
                f"{predicted} on {shape}"
            )
    return {
        "bench": "substrate",
        "smoke": smoke,
        "registered_substrates": available_substrates(),
        "exactness": exactness,
        "timing": timing,
        "routing": routing,
        "serving": serving,
        "live_winners": live_winners,
        "violations": violations,
    }


def format_report(result: dict) -> str:
    routing = result["routing"]
    rows = []
    for shape, entry in routing["shapes"].items():
        costs = entry["predicted_ns"]
        live = result["serving"][shape]
        rows.append(
            [
                shape,
                f"{entry['per_shard_rows']}x{entry['dims']}",
                entry["batch"],
                f"{costs['crossbar']:,.0f}",
                f"{costs['hbm_pim']:,.0f}",
                entry["winner"],
                result["live_winners"][shape],
                "yes" if live["identical"] else "NO",
            ]
        )
    return format_table(
        [
            "workload",
            "shard shape",
            "batch",
            "crossbar ns",
            "hbm_pim ns",
            "predicted",
            "live",
            "bits equal",
        ],
        rows,
        title=(
            "Substrate routing: per-shape winners "
            f"(routed {routing['speedup_vs_worst_single']:.1f}x vs "
            "worst single backend)"
        ),
    )


def save_routing_artifact(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_substrate_gates(benchmark, save_results):
    """Exactness + timing goldens + router efficacy in one record."""
    result = run_gates(smoke=True)
    save_routing_artifact(
        result, RESULTS_DIR / "substrate_routing.json"
    )
    save_results("substrate_gates", format_report(result))
    assert result["violations"] == []
    assert result["routing"]["winner_flips"]
    assert result["routing"]["speedup_vs_worst_single"] > 1.0

    cfg = SMOKE_WORKLOADS["interactive"]
    data = _dataset(cfg["n_rows"], cfg["dims"])
    queries = _queries(cfg["dims"], cfg["batch"])
    manager = ShardManager(
        data,
        n_shards=N_SHARDS,
        substrates=["crossbar", "hbm_pim"] * (N_SHARDS // 2),
    )
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


# ----------------------------------------------------------------------
# CLI mode (used by the CI substrate job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="substrate exactness/timing/routing gates"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced shapes (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "substrate_routing.json"),
        metavar="FILE", help="routing-decision JSON artifact path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_gates(smoke=args.smoke)
    print(format_report(result))
    save_routing_artifact(result, Path(args.out))
    print(f"routing record : {args.out}")
    timing = result["timing"]
    print(
        "timing goldens : "
        f"{timing['golden']['total_cycles']} cycles (expected "
        f"{timing['golden']['expected_total_cycles']}); prediction vs "
        "device max rel err "
        + format(
            max(
                entry["relative_error"]
                for entry in timing["prediction_vs_device"].values()
            ),
            ".2g",
        )
    )
    routing = result["routing"]
    print(
        f"router         : {routing['speedup_vs_worst_single']:.1f}x vs "
        f"worst single backend, {routing['speedup_vs_best_single']:.2f}x "
        "vs best; winners "
        + ", ".join(
            f"{shape}={entry['winner']}"
            for shape, entry in routing["shapes"].items()
        )
    )
    if result["violations"]:
        for violation in result["violations"]:
            print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
