"""Shared fixtures for the bench harness.

Every bench regenerates one table or figure of the paper's evaluation:
it runs the experiment sweep once, prints the same rows/series the paper
reports (also persisted under ``benchmarks/results/``), and times a
representative kernel with pytest-benchmark so regressions in the
simulator itself are visible.

Scale note: datasets are the synthetic Table 6 stand-ins at laptop
cardinality, so the *shape* of each result (who wins, how the gap moves
with d/k/alpha) is the reproduction target, not absolute milliseconds.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.data.catalog import make_dataset, make_queries

RESULTS_DIR = Path(__file__).parent / "results"

#: Set this env var to a directory to record bench-session telemetry:
#: a Perfetto trace + JSONL metrics snapshot land there after the run.
TELEMETRY_ENV = "REPRO_TELEMETRY_DIR"


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Session-wide telemetry capture, gated on ``REPRO_TELEMETRY_DIR``.

    Disabled (the zero-overhead null recorder) unless the env var names
    a directory; bench timings are unaffected by default.
    """
    target = os.environ.get(TELEMETRY_ENV)
    if not target:
        yield None
        return
    from repro.telemetry import telemetry_session
    from repro.telemetry.export import write_chrome_trace, write_metrics_jsonl

    out_dir = Path(target)
    out_dir.mkdir(parents=True, exist_ok=True)
    with telemetry_session() as tele:
        yield tele
    write_chrome_trace(tele, out_dir / "bench.trace.json")
    write_metrics_jsonl(tele, out_dir / "bench.metrics.jsonl")

#: Scaled cardinalities per dataset used across the kNN benches.
KNN_SIZES = {"ImageNet": 2000, "MSD": 1500, "GIST": 1200, "Trevi": 1500}
#: Scaled cardinalities per dataset used in the k-means benches.
KMEANS_SIZES = {"Year": 1200, "Notre": 1200, "NUS-WIDE": 800, "Enron": 600}
#: Queries per kNN configuration.
N_QUERIES = 5


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def save_results():
    """Persist a bench's text output and echo it to the terminal."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save


@pytest.fixture(scope="session")
def knn_workloads():
    """dataset name -> (data, queries) for the kNN benches."""
    workloads = {}
    for name, n in KNN_SIZES.items():
        data = make_dataset(name, n=n, seed=0)
        workloads[name] = (data, make_queries(name, data, N_QUERIES))
    return workloads


@pytest.fixture(scope="session")
def msd_workload(knn_workloads):
    """The default kNN workload (the paper's default dataset)."""
    return knn_workloads["MSD"]


@pytest.fixture(scope="session")
def kmeans_datasets():
    """dataset name -> data for the k-means benches."""
    return {
        name: make_dataset(name, n=n, seed=0)
        for name, n in KMEANS_SIZES.items()
    }
