"""Ablation — query selectivity vs PIM gain.

Every speedup in the paper is mediated by bound pruning, and pruning
depends on where the query sits relative to the data. This bench sweeps
query difficulty classes (dataset members -> near-manifold -> uniform ->
adversarial centroids -> far corners) and reports the pruning behaviour
and speedup of Standard-PIM — mapping the regime in which the paper's
design pays off.
"""

from __future__ import annotations

import numpy as np

from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.data.workloads import KINDS, make_workload
from repro.mining.knn import StandardKNN, StandardPIMKNN

K = 10
#: Compressed bound resolution (the paper's Theorem 4 value for MSD) —
#: with the near-exact full-dimensional bound, selectivity would not
#: matter; the compressed regime is where query geometry shows.
SEGMENTS = 105


def test_ablation_selectivity(benchmark, msd_workload, save_results):
    data, _ = msd_workload
    n = data.shape[0]
    rows = []
    survivors = {}
    speedups = {}
    for kind in KINDS:
        queries = make_workload(data, kind, n_queries=3, seed=5)
        base = profile_knn(StandardKNN().fit(data), queries, K)
        pim_algo = StandardPIMKNN(n_segments=SEGMENTS).fit(data)
        pim = profile_knn(pim_algo, queries, K)
        exact = pim.extras["exact_computations"] / (3 * n)
        survivors[kind] = exact
        speedups[kind] = base.total_time_ns / pim.total_time_ns
        rows.append(
            [
                kind,
                f"{exact * 100:.1f}%",
                base.total_time_ms,
                pim.total_time_ms,
                f"{speedups[kind]:.1f}x",
            ]
        )
    text = format_table(
        [
            "query class",
            "refined fraction",
            "Standard (ms)",
            "Standard-PIM (ms)",
            "speedup",
        ],
        rows,
        title=(
            "Ablation: query selectivity vs PIM gain "
            f"(MSD, k={K}, LB_PIM-FNN^{SEGMENTS})"
        ),
    )
    save_results("ablation_selectivity", text)

    # member/near queries must prune better than adversarial centroids,
    # and PIM must win everywhere (LB_PIM-ED at alpha=1e6 is near-exact)
    assert survivors["member"] <= survivors["adversarial"]
    assert survivors["near"] <= survivors["adversarial"]
    algo = StandardPIMKNN(n_segments=SEGMENTS).fit(data)
    queries = make_workload(data, "adversarial", n_queries=1, seed=5)
    benchmark(lambda: algo.query(queries[0], K))
