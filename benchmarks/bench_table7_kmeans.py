"""Table 7 — k-means clustering time per iteration, full grid.

Paper grid: {Year, Notre, NUS-WIDE, Enron} x k in {4, 64, 256, 1024} x
{Standard, Elkan, Drake, Yinyang} x {baseline, -PIM}, reporting
ms/iteration. We run the same grid with k scaled to the dataset sizes
(k=1024 needs N >> k, so the largest k is 256 here).

Expected shapes (paper Section VI-D):
* every -PIM variant is at least as fast as its baseline;
* Standard-PIM shows the largest, consistent speedup, growing with k
  and d (the paper reports up to 33.4x);
* Elkan gains the least from PIM (bound maintenance dominates it);
* at large k Elkan's own overhead can exceed Standard's.
"""

from __future__ import annotations

import pytest

from repro.core.profiler import profile_kmeans
from repro.core.report import format_table
from repro.mining.kmeans import initial_centers, make_kmeans

DATASETS = ["Year", "Notre", "NUS-WIDE", "Enron"]
KS = [4, 64, 256]
ALGORITHMS = ["Standard", "Elkan", "Drake", "Yinyang"]
MAX_ITERS = 3

_collected_rows: list[list] = []
_speedups: dict = {}


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("k", KS)
def test_table7_cell(benchmark, kmeans_datasets, save_results, dataset, k):
    data = kmeans_datasets[dataset]
    centers = initial_centers(data, k, seed=1)
    _run_cell(benchmark, save_results, dataset, k, data, centers)


def test_table7_paper_k1024(benchmark, save_results):
    """The paper's largest k, on an enlarged Year so N >> k."""
    from repro.data.catalog import make_dataset

    k = 1024
    data = make_dataset("Year", n=2048, seed=0)
    centers = initial_centers(data, k, seed=1)
    _run_cell(benchmark, save_results, "Year(n=2048)", k, data, centers)


def _run_cell(benchmark, save_results, dataset, k, data, centers):
    row = [dataset, k]
    cell_speedups = {}
    for name in ALGORITHMS:
        base = profile_kmeans(
            make_kmeans(name, k, max_iters=MAX_ITERS), data,
            centers=centers.copy(),
        )
        pim = profile_kmeans(
            make_kmeans(f"{name}-PIM", k, max_iters=MAX_ITERS), data,
            centers=centers.copy(),
        )
        assert pim.extras["inertia"] == pytest.approx(
            base.extras["inertia"], rel=1e-9
        ), f"{name} on {dataset} k={k} diverged from its baseline"
        base_ms = base.extras["time_per_iteration_ms"]
        pim_ms = pim.extras["time_per_iteration_ms"]
        cell_speedups[name] = base_ms / pim_ms
        row.extend([base_ms, pim_ms])
    _collected_rows.append(row)
    _speedups[(dataset, k)] = cell_speedups

    headers = ["dataset", "k"]
    for name in ALGORITHMS:
        headers.extend([name, f"{name}-PIM"])
    text = format_table(
        headers,
        sorted(_collected_rows, key=lambda r: (r[0], r[1])),
        title="Table 7: k-means execution time per iteration (ms)",
    )
    save_results("table7_kmeans", text)

    # paper shape: PIM never loses, Standard gains the most
    assert all(s >= 0.95 for s in cell_speedups.values()), cell_speedups
    if k >= 64:
        assert cell_speedups["Standard"] >= cell_speedups["Elkan"] - 0.2

    algo = make_kmeans("Standard-PIM", k, max_iters=1)
    benchmark.pedantic(
        lambda: algo.fit(data, centers.copy()), rounds=1, iterations=1
    )
