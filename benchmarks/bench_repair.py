"""Self-healing bench: scrub, remap, re-replicate — without losing a byte.

The claim behind :mod:`repro.repair`: a serving node under *silent*
sustained faults (stuck cells flipped between queries, a shard killed
mid-run) heals itself in background idle time — and heals usefully.
This bench drives one deterministic request trace three ways — clean,
faulted with PR-4 failover only, and faulted with the full repair loop —
and checks:

* **detection** — the background scrubber flags 100% of the injected
  silent corruptions within one scrub period of the defect appearing
  (the per-query path would only find them on an unlucky dispatch);
* **usefulness** — the repair run's degraded-recompute rate is
  *strictly lower* than the failover-only baseline's: remapping the
  stuck crossbars onto spares returns shards to PIM service instead of
  recomputing their chunks on the host forever;
* **redundancy** — every chunk is back at its target replica count by
  the end of the run (the killed shard's chunks were re-replicated
  under the repair-bandwidth budget);
* **exactness** — zero violations: every completed response of the
  repair run is bit-identical to the fault-free run;
* **telemetry** — the emitted trace and metrics validate, and a
  repair-timeline JSON artifact records every detect/remap/
  re-replicate/quarantine event plus final health and wear.

Dual mode: a pytest bench (``pytest benchmarks/bench_repair.py``) and a
standalone CLI (``python benchmarks/bench_repair.py --smoke``) used by
the CI repair job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.faults import FaultPlan
from repro.repair import RepairController, RepairPolicy
from repro.serving import (
    QueryService,
    RecoveryPolicy,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)
from repro.telemetry import telemetry_session
from repro.telemetry.export import write_chrome_trace, write_metrics_jsonl
from repro.telemetry.validate import validate_metrics, validate_trace

RESULTS_DIR = Path(__file__).parent / "results"

N_ROWS = 960
DIMS = 32
K = 10
N_SHARDS = 4
REPLICATION = 2
#: Spares per shard; each stuck shard needs its whole data allocation
#: remappable in the worst case (a 5% stuck fraction touches nearly
#: every vector group).
SPARE_CROSSBARS = 64
MAX_BATCH = 4
N_REQUESTS = 64
SMOKE_REQUESTS = 40
FAULT_SEED = 3
QUARANTINE_PROBES = 2
#: Offered load: deliberately light (simulated qps) so idle windows
#: exist for the scrubber — repair is background work; a saturated node
#: never scrubs. Simulated time is free, so a long horizon costs no
#: wall-clock.
RATE_QPS = 50.0
#: Scrub sweeps per run horizon.
SWEEPS_PER_HORIZON = 16

TENANTS = [
    TenantSpec("batch", workload="near", k=K, weight=1.0),
    TenantSpec("interactive", workload="uniform", k=K, weight=1.0),
]


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def _trace(data: np.ndarray, rate_qps: float, n_requests: int) -> list:
    """The deterministic request trace (regenerated fresh per run —
    the service mutates requests in place)."""
    driver = WorkloadDriver(data, TENANTS, seed=1234)
    return driver.open_loop(rate_qps, n_requests, arrival="poisson")


def _serve_trace(
    data: np.ndarray,
    requests: list,
    fault_plan: FaultPlan | None,
    scrub_period_ns: float | None,
) -> tuple[dict, dict, ShardManager, RepairController | None]:
    """One serving run; ``scrub_period_ns=None`` means failover only."""
    manager = ShardManager(
        data,
        n_shards=N_SHARDS,
        replication=REPLICATION,
        fault_plan=fault_plan,
        spare_crossbars=SPARE_CROSSBARS,
        recovery=RecoveryPolicy(quarantine_probes=QUARANTINE_PROBES),
    )
    repair = None
    if scrub_period_ns is not None:
        repair = RepairController(
            manager, RepairPolicy(scrub_period_ns=scrub_period_ns)
        )
    service = QueryService(
        manager,
        TENANTS,
        max_batch=MAX_BATCH,
        queue_capacity=64,
        policy="reject",
        tracker=SLOTracker(),
        repair=repair,
    )
    service.run(requests)
    by_id = {r.request_id: r for r in service.responses}
    return by_id, service.summary(), manager, service


def _detection_latencies(
    plan: FaultPlan, events: list[dict], scrub_period_ns: float
) -> list[dict]:
    """Per injected silent defect: when (and whether) a scrub detected it.

    A detection counts only when the controller's ``detect`` event for
    the victim shard names a live fault (transient detects carry an
    empty fault list).
    """
    out = []
    for fault in plan.events:
        if fault.kind != "stuck_cells":
            continue
        shard = int(fault.target.removeprefix("shard"))
        detect_ns = None
        for event in events:
            if (
                event["kind"] == "detect"
                and event.get("shard") == shard
                and event.get("faults")
                and event["t_ns"] >= fault.t_ns
            ):
                detect_ns = event["t_ns"]
                break
        out.append(
            {
                "shard": shard,
                "injected_ns": fault.t_ns,
                "detected_ns": detect_ns,
                "latency_ns": (
                    detect_ns - fault.t_ns if detect_ns is not None else None
                ),
                "deadline_ns": fault.t_ns + scrub_period_ns,
                "within_period": (
                    detect_ns is not None
                    and detect_ns <= fault.t_ns + scrub_period_ns
                ),
            }
        )
    return out


def run_bench(smoke: bool = False) -> dict:
    """Clean vs failover-only vs self-healing over one sustained plan."""
    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    data = _dataset()
    rate = RATE_QPS

    clean, clean_summary, _, _ = _serve_trace(
        data, _trace(data, rate, n_requests), None, None
    )

    requests = _trace(data, rate, n_requests)
    horizon_ns = 1.05 * max(r.arrival_ns for r in requests)
    scrub_period_ns = horizon_ns / SWEEPS_PER_HORIZON
    plan = FaultPlan.sustained(
        N_SHARDS,
        horizon_ns,
        seed=FAULT_SEED,
        stuck_shards=REPLICATION,  # cover every replica of >=1 chunk
        kill_shards=1,
    )

    # failover-only baseline: same plan, no repair loop
    _, baseline_summary, baseline_manager, _ = _serve_trace(
        data, _trace(data, rate, n_requests), plan, None
    )

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = RESULTS_DIR / "repair_loop.trace.json"
    metrics_path = RESULTS_DIR / "repair_loop.metrics.jsonl"
    with telemetry_session() as tele:
        healed, healed_summary, manager, service = _serve_trace(
            data, _trace(data, rate, n_requests), plan, scrub_period_ns
        )
    write_chrome_trace(tele, str(trace_path))
    write_metrics_jsonl(tele, str(metrics_path))
    span_events = validate_trace(str(trace_path))
    metric_lines = validate_metrics(str(metrics_path))

    violations = []
    for rid, response in sorted(healed.items()):
        if not response.ok:
            continue
        reference = clean.get(rid)
        if reference is None or not reference.ok:
            violations.append({"request": rid, "kind": "no_reference"})
            continue
        if not (
            np.array_equal(response.indices, reference.indices)
            and np.array_equal(response.scores, reference.scores)
        ):
            violations.append({"request": rid, "kind": "mismatch"})

    timeline = service.tracker.repair_events
    detections = _detection_latencies(plan, timeline, scrub_period_ns)
    repair_report = healed_summary["repair"]
    result = {
        "meta": {
            "n_rows": N_ROWS,
            "dims": DIMS,
            "k": K,
            "n_shards": N_SHARDS,
            "replication": REPLICATION,
            "spare_crossbars": SPARE_CROSSBARS,
            "n_requests": n_requests,
            "rate_qps": float(rate),
            "fault_seed": FAULT_SEED,
            "horizon_ns": float(horizon_ns),
            "scrub_period_ns": float(scrub_period_ns),
            "smoke": smoke,
        },
        "fault_plan": plan.describe(),
        "clean": {
            "completed": clean_summary["completed"],
            "p99_ns": clean_summary["p99_ns"],
        },
        "baseline": {
            "completed": baseline_summary["completed"],
            "availability": baseline_summary["availability"],
            "degraded_chunks": baseline_summary["recovery"][
                "degraded_chunks"
            ],
            "replica_counts": baseline_manager.replica_counts(),
            "p99_ns": baseline_summary["p99_ns"],
        },
        "healed": {
            "completed": healed_summary["completed"],
            "availability": healed_summary["availability"],
            "degraded_chunks": healed_summary["recovery"][
                "degraded_chunks"
            ],
            "mttr_ns": healed_summary["mttr_ns"],
            "p99_ns": healed_summary["p99_ns"],
            "repair": repair_report,
            "repair_activity": healed_summary["repair_activity"],
            "health": healed_summary["health"],
            "wear": manager.wear_reports(top=2),
        },
        "detections": detections,
        "exactness_violations": violations,
        "timeline": timeline,
        "telemetry": {
            "trace_file": str(trace_path),
            "metrics_file": str(metrics_path),
            "span_events": span_events,
            "metric_lines": metric_lines,
        },
    }
    return result


def check(result: dict) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    failures = []
    if result["exactness_violations"]:
        failures.append(
            f"{len(result['exactness_violations'])} completed responses "
            "differ from the fault-free run"
        )
    detections = result["detections"]
    if not detections:
        failures.append("the plan injected no silent defect (mis-sized)")
    missed = [d for d in detections if not d["within_period"]]
    if missed:
        failures.append(
            f"{len(missed)}/{len(detections)} silent corruptions not "
            "detected within one scrub period"
        )
    healed = result["healed"]
    baseline = result["baseline"]
    if healed["degraded_chunks"] >= baseline["degraded_chunks"]:
        failures.append(
            f"repair did not reduce degraded recompute: "
            f"{healed['degraded_chunks']} (healed) >= "
            f"{baseline['degraded_chunks']} (failover-only)"
        )
    replica_counts = healed["repair"]["replica_counts"]
    if any(count < REPLICATION for count in replica_counts):
        failures.append(
            f"replicas not restored to k={REPLICATION}: {replica_counts}"
        )
    if healed["repair"]["rereplications"] < 1:
        failures.append("no re-replication happened (kill not absorbed)")
    if healed["repair"]["remaps"] < 1:
        failures.append("no spare-crossbar remap happened")
    if healed["mttr_ns"] <= 0:
        failures.append("no MTTR sample recorded for the repaired shards")
    return failures


def format_report(result: dict) -> str:
    baseline = result["baseline"]
    healed = result["healed"]
    repair = healed["repair"]
    detections = result["detections"]
    detected = sum(1 for d in detections if d["within_period"])
    worst_ms = max(
        (d["latency_ns"] for d in detections if d["latency_ns"] is not None),
        default=0.0,
    ) / 1e6
    rows = [
        ["completed", result["clean"]["completed"],
         baseline["completed"], healed["completed"]],
        ["availability", "100%",
         f"{baseline['availability']:.2%}",
         f"{healed['availability']:.2%}"],
        ["degraded chunks", 0,
         baseline["degraded_chunks"], healed["degraded_chunks"]],
        ["replicas", f"[{REPLICATION}]*", str(baseline["replica_counts"]),
         str(repair["replica_counts"])],
        ["remaps", "-", "-", repair["remaps"]],
        ["re-replications", "-", "-", repair["rereplications"]],
        ["mttr (ms)", "-", "-", f"{healed['mttr_ns'] / 1e6:.1f}"],
        ["exactness violations", 0, "-",
         len(result["exactness_violations"])],
    ]
    return format_table(
        ["metric", "clean", "failover-only", "self-healing"],
        rows,
        title=(
            f"Self-healing: {N_SHARDS} shards x{REPLICATION} replicas, "
            f"seed {FAULT_SEED} — {detected}/{len(detections)} silent "
            f"defects scrubbed (worst latency {worst_ms:.0f} ms, period "
            f"{result['meta']['scrub_period_ns'] / 1e6:.0f} ms)"
        ),
    )


def save_timeline(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_repair_loop(benchmark, save_results):
    result = run_bench(smoke=True)
    save_results("repair_loop", format_report(result))
    save_timeline(result, RESULTS_DIR / "repair_timeline.json")
    failures = check(result)
    assert not failures, "; ".join(failures)

    data = _dataset()
    plan = FaultPlan.sustained(
        N_SHARDS, 1e8, seed=FAULT_SEED, stuck_shards=REPLICATION
    )
    manager = ShardManager(
        data,
        n_shards=N_SHARDS,
        replication=REPLICATION,
        fault_plan=plan,
        spare_crossbars=SPARE_CROSSBARS,
    )
    ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
    benchmark.pedantic(
        lambda: ctrl.advance(ctrl.now_ns, ctrl.now_ns + 1e6),
        rounds=3,
        iterations=1,
    )


# ----------------------------------------------------------------------
# CLI mode (used by the CI repair job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="self-healing bench: scrub + remap + re-replicate"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced trace (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "repair_timeline.json"),
        metavar="FILE", help="repair-timeline JSON artifact path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_bench(smoke=args.smoke)
    print(format_report(result))
    save_timeline(result, Path(args.out))
    print(f"repair timeline: {args.out}")
    print(
        f"telemetry      : {result['telemetry']['span_events']} spans, "
        f"{result['telemetry']['metric_lines']} metric lines validated"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
