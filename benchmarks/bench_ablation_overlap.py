"""Ablation — CPU/PIM overlap through the buffer array.

The paper (Section III-A): "With help of the buffer, PIM array can work
with CPU in parallel. CPU can collect PIM results in buffer array
without waiting for PIM array." Our default accounting is conservative
(fully serialized, overlap = 0). This bench sweeps the overlap fraction
and also contrasts the bound-and-refine pipeline with the approximate
never-refine mode, showing where each cost component sits.
"""

from __future__ import annotations

from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.cost.model import combined_time_ns
from repro.mining.knn import StandardKNN, StandardPIMKNN
from repro.mining.knn.approximate import ApproximatePIMKNN, recall_at_k

OVERLAPS = [0.0, 0.5, 1.0]
K = 10


def test_ablation_overlap(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    base = profile_knn(StandardKNN().fit(data), queries, K)
    pim = profile_knn(StandardPIMKNN().fit(data), queries, K)

    rows = []
    speedups = []
    for overlap in OVERLAPS:
        total = combined_time_ns(
            pim.cpu_time_ns, pim.pim_time_ns, overlap=overlap
        )
        speedups.append(base.total_time_ns / total)
        rows.append(
            [f"{overlap:.1f}", total / 1e6, f"{speedups[-1]:.1f}x"]
        )

    # the approximate mode for contrast: one wave, no refinement at all
    approx_algo = ApproximatePIMKNN().fit(data)
    approx = profile_knn(approx_algo, queries, K)
    exact_ref = StandardKNN().fit(data)
    recalls = [
        recall_at_k(
            approx_algo.query(q, K).indices,
            exact_ref.query(q, K).indices,
        )
        for q in queries
    ]
    rows.append(
        [
            "approx (no refine)",
            approx.total_time_ns / 1e6,
            f"{base.total_time_ns / approx.total_time_ns:.1f}x "
            f"(recall {sum(recalls) / len(recalls):.2f})",
        ]
    )

    text = format_table(
        ["overlap", "PIM total (ms)", "speedup vs Standard"],
        rows,
        title=(
            "Ablation: CPU/PIM overlap via the buffer array "
            "(MSD, k=10, 5 queries)"
        ),
    )
    save_results("ablation_overlap", text)

    # overlap helps monotonically but modestly: wave time is already a
    # small share of the PIM pipeline's total
    assert speedups == sorted(speedups)
    assert speedups[-1] / speedups[0] < 3.0

    benchmark(
        lambda: combined_time_ns(pim.cpu_time_ns, pim.pim_time_ns, 0.5)
    )
