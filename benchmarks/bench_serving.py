"""Serving-layer throughput and latency curves across shard counts.

The north-star claim behind ``repro.serving``: partitioning one dataset
over N independent PIM arrays multiplies serving capacity, because the
row-proportional parts of a query (bound combine, candidate sort, exact
refinement, buffer drain) split across shards while only the constant
wave setup and the tiny k-list merge stay serial. This bench drives the
same offered load at 1/2/4 shards and reports:

* aggregate simulated throughput under saturation (the capacity curve);
* p50/p95/p99 latency and shed rate across an offered-load sweep (the
  latency curve, persisted as JSON for the CI artifact).

Dual mode: a pytest bench (``pytest benchmarks/bench_serving.py``) and a
standalone CLI (``python benchmarks/bench_serving.py --smoke``) whose
telemetry flags reuse the shared :mod:`repro.cli` wiring.

Perf trajectory: the bench also measures the fused scatter/gather
kernels (block-scored refinement, center-major assist sweep) against
the per-candidate ``reference=True`` loops — identical answers, counts
and simulated timings, much less wall-clock — persisted as
``BENCH_serving.json`` for the CI perf gate (``--smoke`` floor: 3x).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset geometry: large enough that row-proportional work dominates
#: the constant per-wave setup (the regime the scaling claim targets).
N_ROWS = 4096
DIMS = 64
K = 10
MAX_BATCH = 8
SHARD_COUNTS = (1, 2, 4)
#: Offered load points, as multiples of the measured 1-shard capacity.
LOAD_FRACTIONS = (0.5, 1.0, 2.0, 5.0)
SMOKE_LOAD_FRACTIONS = (1.0, 5.0)
N_REQUESTS = 160
SMOKE_REQUESTS = 64
#: Acceptance floor: 1 -> 4 shard aggregate simulated throughput.
MIN_SCALING = 2.5
#: CI acceptance floor for the fused-vs-loop serving wall-clock speedup
#: on the smoke workload (the full run documents the 10x+ margin).
MIN_FUSED_SPEEDUP = 3.0

TENANTS = [
    TenantSpec("batch", workload="near", k=K, weight=1.0),
    TenantSpec("interactive", workload="uniform", k=K, weight=1.0),
]


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def _capacity_qps(manager: ShardManager) -> float:
    """Saturated per-node service rate, probed with one full batch."""
    probe = np.random.default_rng(7).random((MAX_BATCH, DIMS))
    _, timing = manager.knn_batch(probe, K)
    manager.reset_busy()
    return MAX_BATCH * 1e9 / timing.service_ns


def _run_point(
    manager: ShardManager, rate_qps: float, n_requests: int
) -> dict:
    """Serve one offered-load point; returns the reduced SLO numbers."""
    manager.reset_busy()
    driver = WorkloadDriver(_dataset(), TENANTS, seed=1234)
    requests = driver.open_loop(rate_qps, n_requests, arrival="poisson")
    service = QueryService(
        manager,
        TENANTS,
        max_batch=MAX_BATCH,
        queue_capacity=32,
        policy="reject",
        tracker=SLOTracker(),
    )
    service.run(requests)
    summary = service.summary()
    return {
        "rate_qps": rate_qps,
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed_rate": summary["shed_rate"],
        "throughput_qps": summary["throughput_qps"],
        "p50_ns": summary["p50_ns"],
        "p95_ns": summary["p95_ns"],
        "p99_ns": summary["p99_ns"],
        "max_shard_utilization": max(
            summary.get("shard_utilization", [0.0])
        ),
    }


def run_sweep(smoke: bool = False) -> dict:
    """The full experiment: load sweep per shard count + scaling check."""
    fractions = SMOKE_LOAD_FRACTIONS if smoke else LOAD_FRACTIONS
    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    data = _dataset()
    managers = {
        shards: ShardManager(data, n_shards=shards)
        for shards in SHARD_COUNTS
    }
    base_capacity = _capacity_qps(managers[1])
    series = []
    saturated = {}
    for shards, manager in managers.items():
        points = [
            _run_point(manager, fraction * base_capacity, n_requests)
            for fraction in fractions
        ]
        series.append({"shards": shards, "points": points})
        saturated[shards] = points[-1]["throughput_qps"]
    return {
        "meta": {
            "n_rows": N_ROWS,
            "dims": DIMS,
            "k": K,
            "max_batch": MAX_BATCH,
            "n_requests": n_requests,
            "base_capacity_qps": base_capacity,
            "load_fractions": list(fractions),
            "smoke": smoke,
        },
        "series": series,
        "scaling": {
            "throughput_1_shard_qps": saturated[1],
            "throughput_4_shards_qps": saturated[4],
            "ratio_4_over_1": saturated[4] / saturated[1],
            "min_required": MIN_SCALING,
        },
    }


def format_report(result: dict) -> str:
    rows = []
    for entry in result["series"]:
        for point in entry["points"]:
            rows.append(
                [
                    entry["shards"],
                    f"{point['rate_qps']:,.0f}",
                    f"{point['throughput_qps']:,.0f}",
                    f"{point['shed_rate']:.1%}",
                    f"{point['p50_ns'] / 1e3:.1f}",
                    f"{point['p99_ns'] / 1e3:.1f}",
                    f"{point['max_shard_utilization']:.0%}",
                ]
            )
    scaling = result["scaling"]
    return format_table(
        [
            "shards",
            "offered qps",
            "throughput qps",
            "shed",
            "p50 (us)",
            "p99 (us)",
            "util",
        ],
        rows,
        title=(
            "Serving scaling: "
            f"{result['meta']['n_rows']}x{result['meta']['dims']} over "
            "1/2/4 shards — saturated throughput ratio "
            f"{scaling['ratio_4_over_1']:.2f}x "
            f"(floor {scaling['min_required']}x)"
        ),
    )


def save_curve(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# perf trajectory: fused scatter/gather vs per-candidate loops
# ----------------------------------------------------------------------
def measure_fused_trajectory(smoke: bool = False, repeats: int = 3) -> dict:
    """Fused vs reference serving: wall-clock + exactness in one record.

    Drives one kNN batch and one k-means assist through a fused and a
    ``reference=True`` manager over the same dataset. Answers, refined
    counts and simulated service times must be identical; the wall
    clock is the only thing fusion is allowed to change.
    """
    rng = np.random.default_rng(777)
    n, dims = (1500, 32) if smoke else (4096, 64)
    n_centers = 12 if smoke else 48
    data = rng.random((n, dims))
    queries = rng.random((MAX_BATCH, dims))
    centers = rng.random((n_centers, dims))
    fused = ShardManager(data, n_shards=4)
    loop = ShardManager(data, n_shards=4, reference=True)

    af, tf = fused.knn_batch(queries, K)
    ar, tr = loop.knn_batch(queries, K)
    bf, btf = fused.assign(centers)
    br, btr = loop.assign(centers)
    bit_identical = (
        all(
            np.array_equal(x.indices, y.indices)
            and np.array_equal(x.scores, y.scores)
            and x.refined == y.refined
            for x, y in zip(af, ar)
        )
        and np.array_equal(bf.assignments, br.assignments)
        and np.array_equal(bf.distances, br.distances)
        and bf.refined == br.refined
    )
    simulated_identical = bool(
        tf.service_ns == tr.service_ns and btf.service_ns == btr.service_ns
    )

    t0 = time.perf_counter()
    for _ in range(repeats):
        fused.knn_batch(queries, K)
    t1 = time.perf_counter()
    for _ in range(repeats):
        fused.assign(centers)
    t2 = time.perf_counter()
    fused_knn_s = (t1 - t0) / repeats
    fused_assign_s = (t2 - t1) / repeats
    fused_s = fused_knn_s + fused_assign_s
    t0 = time.perf_counter()
    loop.knn_batch(queries, K)
    t1 = time.perf_counter()
    loop.assign(centers)
    t2 = time.perf_counter()
    loop_knn_s = t1 - t0
    loop_assign_s = t2 - t1
    loop_s = loop_knn_s + loop_assign_s
    return {
        "bench": "serving",
        "kernel": "sharded_knn_batch_plus_assign",
        "smoke": smoke,
        "workload": {
            "n_rows": n,
            "dims": dims,
            "batch": MAX_BATCH,
            "k": K,
            "n_centers": n_centers,
            "n_shards": 4,
        },
        "wall_clock": {
            "fused_s": fused_s,
            "reference_s": loop_s,
            "speedup": loop_s / fused_s,
            "per_kernel": {
                "knn_speedup": loop_knn_s / fused_knn_s,
                "assign_speedup": loop_assign_s / fused_assign_s,
            },
        },
        "simulated": {
            "knn_service_ns": float(tf.service_ns),
            "assign_service_ns": float(btf.service_ns),
            "identical": simulated_identical,
        },
        "bit_identical": bool(bit_identical),
        "min_speedup": MIN_FUSED_SPEEDUP,
    }


def save_bench_json(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


def test_serving_fused_perf_trajectory(benchmark, save_results):
    """Fused serving kernels: big wall-clock win, zero observable drift."""
    result = measure_fused_trajectory(smoke=True)
    save_bench_json(result, RESULTS_DIR / "BENCH_serving.json")
    wall = result["wall_clock"]
    save_results(
        "serving_fused_trajectory",
        format_table(
            ["kernel", "fused (ms)", "loop (ms)", "speedup", "bits equal"],
            [[
                result["kernel"],
                f"{wall['fused_s'] * 1e3:.2f}",
                f"{wall['reference_s'] * 1e3:.2f}",
                f"{wall['speedup']:.1f}x",
                result["bit_identical"],
            ]],
            title="Perf trajectory: fused serving kernels vs loop reference",
        ),
    )
    assert result["bit_identical"]
    assert result["simulated"]["identical"]
    assert wall["speedup"] >= MIN_FUSED_SPEEDUP

    manager = ShardManager(_dataset(), n_shards=4)
    queries = np.random.default_rng(3).random((MAX_BATCH, DIMS))
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


@pytest.mark.slow
def test_serving_fused_perf_trajectory_full():
    """Tier 2: full-scale serving workload behind the recorded JSON.

    The per-kernel record matters here: the assign sweep is the
    loop-bound path (~8x fused), while kNN wall-clock is dominated by
    the shared wave + bound machinery on both sides, so the combined
    ratio understates the kernel win.
    """
    result = measure_fused_trajectory(smoke=False)
    save_bench_json(result, RESULTS_DIR / "BENCH_serving.json")
    assert result["bit_identical"]
    assert result["simulated"]["identical"]
    assert result["wall_clock"]["speedup"] >= MIN_FUSED_SPEEDUP


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_serving_throughput_scaling(benchmark, save_results):
    result = run_sweep(smoke=True)
    save_results("serving_scaling", format_report(result))
    save_curve(result, RESULTS_DIR / "serving_latency_curve.json")
    scaling = result["scaling"]
    assert scaling["ratio_4_over_1"] >= MIN_SCALING
    # saturation really saturates: the overloaded point sheds traffic
    overloaded = result["series"][0]["points"][-1]
    assert overloaded["shed_rate"] > 0.0

    manager = ShardManager(_dataset(), n_shards=4)
    queries = np.random.default_rng(3).random((MAX_BATCH, DIMS))
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


# ----------------------------------------------------------------------
# CLI mode (used by the CI serving job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer throughput/latency-curve bench"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced sweep (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "serving_latency_curve.json"),
        metavar="FILE", help="latency-curve JSON artifact path",
    )
    parser.add_argument(
        "--perf-out", default=str(RESULTS_DIR / "BENCH_serving.json"),
        metavar="FILE", help="fused-kernel perf-trajectory JSON path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_sweep(smoke=args.smoke)
    print(format_report(result))
    save_curve(result, Path(args.out))
    print(f"latency curve  : {args.out}")
    perf = measure_fused_trajectory(smoke=args.smoke)
    save_bench_json(perf, Path(args.perf_out))
    wall = perf["wall_clock"]
    print(
        f"fused serving  : {wall['speedup']:.1f}x vs loop reference "
        f"(bit_identical={perf['bit_identical']}, "
        f"simulated_identical={perf['simulated']['identical']}) "
        f"-> {args.perf_out}"
    )
    ratio = result["scaling"]["ratio_4_over_1"]
    if ratio < MIN_SCALING:
        print(
            f"FAIL: 1->4 shard scaling {ratio:.2f}x < {MIN_SCALING}x",
            file=sys.stderr,
        )
        return 1
    if not (perf["bit_identical"] and perf["simulated"]["identical"]):
        print(
            "FAIL: fused serving kernels moved bits or nanoseconds",
            file=sys.stderr,
        )
        return 1
    if wall["speedup"] < MIN_FUSED_SPEEDUP:
        print(
            f"FAIL: fused serving speedup {wall['speedup']:.2f}x < "
            f"{MIN_FUSED_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
