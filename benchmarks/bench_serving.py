"""Serving-layer throughput and latency curves across shard counts.

The north-star claim behind ``repro.serving``: partitioning one dataset
over N independent PIM arrays multiplies serving capacity, because the
row-proportional parts of a query (bound combine, candidate sort, exact
refinement, buffer drain) split across shards while only the constant
wave setup and the tiny k-list merge stay serial. This bench drives the
same offered load at 1/2/4 shards and reports:

* aggregate simulated throughput under saturation (the capacity curve);
* p50/p95/p99 latency and shed rate across an offered-load sweep (the
  latency curve, persisted as JSON for the CI artifact).

Dual mode: a pytest bench (``pytest benchmarks/bench_serving.py``) and a
standalone CLI (``python benchmarks/bench_serving.py --smoke``) whose
telemetry flags reuse the shared :mod:`repro.cli` wiring.

Perf trajectory: the bench also measures the fused scatter/gather
kernels (block-scored refinement, center-major assist sweep) against
the per-candidate ``reference=True`` loops — identical answers, counts
and simulated timings, much less wall-clock — persisted as
``BENCH_serving.json`` for the CI perf gate (``--smoke`` floor: 3x).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset geometry: large enough that row-proportional work dominates
#: the constant per-wave setup (the regime the scaling claim targets).
N_ROWS = 4096
DIMS = 64
K = 10
MAX_BATCH = 8
SHARD_COUNTS = (1, 2, 4)
#: Offered load points, as multiples of the measured 1-shard capacity.
LOAD_FRACTIONS = (0.5, 1.0, 2.0, 5.0)
SMOKE_LOAD_FRACTIONS = (1.0, 5.0)
N_REQUESTS = 160
SMOKE_REQUESTS = 64
#: Acceptance floor: 1 -> 4 shard aggregate simulated throughput.
MIN_SCALING = 2.5
#: CI acceptance floor for the fused-vs-loop serving wall-clock speedup
#: on the smoke workload (the full run documents the 10x+ margin).
MIN_FUSED_SPEEDUP = 3.0

TENANTS = [
    TenantSpec("batch", workload="near", k=K, weight=1.0),
    TenantSpec("interactive", workload="uniform", k=K, weight=1.0),
]


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def _capacity_qps(manager: ShardManager) -> float:
    """Saturated per-node service rate, probed with one full batch."""
    probe = np.random.default_rng(7).random((MAX_BATCH, DIMS))
    _, timing = manager.knn_batch(probe, K)
    manager.reset_busy()
    return MAX_BATCH * 1e9 / timing.service_ns


def _run_point(
    manager: ShardManager, rate_qps: float, n_requests: int
) -> dict:
    """Serve one offered-load point; returns the reduced SLO numbers."""
    manager.reset_busy()
    driver = WorkloadDriver(_dataset(), TENANTS, seed=1234)
    requests = driver.open_loop(rate_qps, n_requests, arrival="poisson")
    service = QueryService(
        manager,
        TENANTS,
        max_batch=MAX_BATCH,
        queue_capacity=32,
        policy="reject",
        tracker=SLOTracker(),
    )
    service.run(requests)
    summary = service.summary()
    return {
        "rate_qps": rate_qps,
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed_rate": summary["shed_rate"],
        "throughput_qps": summary["throughput_qps"],
        "p50_ns": summary["p50_ns"],
        "p95_ns": summary["p95_ns"],
        "p99_ns": summary["p99_ns"],
        "max_shard_utilization": max(
            summary.get("shard_utilization", [0.0])
        ),
    }


def run_sweep(smoke: bool = False) -> dict:
    """The full experiment: load sweep per shard count + scaling check."""
    fractions = SMOKE_LOAD_FRACTIONS if smoke else LOAD_FRACTIONS
    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    data = _dataset()
    managers = {
        shards: ShardManager(data, n_shards=shards)
        for shards in SHARD_COUNTS
    }
    base_capacity = _capacity_qps(managers[1])
    series = []
    saturated = {}
    for shards, manager in managers.items():
        points = [
            _run_point(manager, fraction * base_capacity, n_requests)
            for fraction in fractions
        ]
        series.append({"shards": shards, "points": points})
        saturated[shards] = points[-1]["throughput_qps"]
    return {
        "meta": {
            "n_rows": N_ROWS,
            "dims": DIMS,
            "k": K,
            "max_batch": MAX_BATCH,
            "n_requests": n_requests,
            "base_capacity_qps": base_capacity,
            "load_fractions": list(fractions),
            "smoke": smoke,
        },
        "series": series,
        "scaling": {
            "throughput_1_shard_qps": saturated[1],
            "throughput_4_shards_qps": saturated[4],
            "ratio_4_over_1": saturated[4] / saturated[1],
            "min_required": MIN_SCALING,
        },
    }


def format_report(result: dict) -> str:
    rows = []
    for entry in result["series"]:
        for point in entry["points"]:
            rows.append(
                [
                    entry["shards"],
                    f"{point['rate_qps']:,.0f}",
                    f"{point['throughput_qps']:,.0f}",
                    f"{point['shed_rate']:.1%}",
                    f"{point['p50_ns'] / 1e3:.1f}",
                    f"{point['p99_ns'] / 1e3:.1f}",
                    f"{point['max_shard_utilization']:.0%}",
                ]
            )
    scaling = result["scaling"]
    return format_table(
        [
            "shards",
            "offered qps",
            "throughput qps",
            "shed",
            "p50 (us)",
            "p99 (us)",
            "util",
        ],
        rows,
        title=(
            "Serving scaling: "
            f"{result['meta']['n_rows']}x{result['meta']['dims']} over "
            "1/2/4 shards — saturated throughput ratio "
            f"{scaling['ratio_4_over_1']:.2f}x "
            f"(floor {scaling['min_required']}x)"
        ),
    )


def save_curve(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# perf trajectory: fused scatter/gather vs per-candidate loops
# ----------------------------------------------------------------------
def measure_fused_trajectory(smoke: bool = False, repeats: int = 3) -> dict:
    """Fused vs reference serving: wall-clock + exactness in one record.

    Drives one kNN batch and one k-means assist through a fused and a
    ``reference=True`` manager over the same dataset. Answers, refined
    counts and simulated service times must be identical; the wall
    clock is the only thing fusion is allowed to change.
    """
    rng = np.random.default_rng(777)
    n, dims = (1500, 32) if smoke else (4096, 64)
    n_centers = 12 if smoke else 48
    data = rng.random((n, dims))
    queries = rng.random((MAX_BATCH, dims))
    centers = rng.random((n_centers, dims))
    fused = ShardManager(data, n_shards=4)
    loop = ShardManager(data, n_shards=4, reference=True)

    af, tf = fused.knn_batch(queries, K)
    ar, tr = loop.knn_batch(queries, K)
    bf, btf = fused.assign(centers)
    br, btr = loop.assign(centers)
    bit_identical = (
        all(
            np.array_equal(x.indices, y.indices)
            and np.array_equal(x.scores, y.scores)
            and x.refined == y.refined
            for x, y in zip(af, ar)
        )
        and np.array_equal(bf.assignments, br.assignments)
        and np.array_equal(bf.distances, br.distances)
        and bf.refined == br.refined
    )
    simulated_identical = bool(
        tf.service_ns == tr.service_ns and btf.service_ns == btr.service_ns
    )

    t0 = time.perf_counter()
    for _ in range(repeats):
        fused.knn_batch(queries, K)
    t1 = time.perf_counter()
    for _ in range(repeats):
        fused.assign(centers)
    t2 = time.perf_counter()
    fused_knn_s = (t1 - t0) / repeats
    fused_assign_s = (t2 - t1) / repeats
    fused_s = fused_knn_s + fused_assign_s
    t0 = time.perf_counter()
    loop.knn_batch(queries, K)
    t1 = time.perf_counter()
    loop.assign(centers)
    t2 = time.perf_counter()
    loop_knn_s = t1 - t0
    loop_assign_s = t2 - t1
    loop_s = loop_knn_s + loop_assign_s
    return {
        "bench": "serving",
        "kernel": "sharded_knn_batch_plus_assign",
        "smoke": smoke,
        "workload": {
            "n_rows": n,
            "dims": dims,
            "batch": MAX_BATCH,
            "k": K,
            "n_centers": n_centers,
            "n_shards": 4,
        },
        "wall_clock": {
            "fused_s": fused_s,
            "reference_s": loop_s,
            "speedup": loop_s / fused_s,
            "per_kernel": {
                "knn_speedup": loop_knn_s / fused_knn_s,
                "assign_speedup": loop_assign_s / fused_assign_s,
            },
        },
        "simulated": {
            "knn_service_ns": float(tf.service_ns),
            "assign_service_ns": float(btf.service_ns),
            "identical": simulated_identical,
        },
        "bit_identical": bool(bit_identical),
        "min_speedup": MIN_FUSED_SPEEDUP,
    }


def measure_bound_pipeline(smoke: bool = False, repeats: int = 5) -> dict:
    """Batched bound pipeline vs the per-query loop it replaced.

    The shared serving path now builds every query's pruning bound with
    one broadcast and ranks all rows with one stable axis argsort over
    gidx-permuted columns, instead of looping a two-key lexsort per
    query (the gidx tiebreak is sorted once and amortized over the
    batch). This microbench re-runs both shapes on the same inputs:
    the outputs must match element-for-element, the wall clock is the
    recorded delta.
    """
    rng = np.random.default_rng(99)
    batch, n_local = (8, 20_000) if smoke else (16, 120_000)
    alpha2 = 2.0 * 16.0
    phi = rng.random(n_local)
    phi_q = rng.random(batch)
    dots = rng.random((batch, n_local))
    gidx = rng.permutation(n_local).astype(np.int64)

    def scalar():
        lbs = np.empty((batch, n_local))
        orders = np.empty((batch, n_local), dtype=np.int64)
        for b in range(batch):
            lb = (phi + phi_q[b] - 2.0 * dots[b] - 2.0 * DIMS) / alpha2
            np.maximum(lb, 0.0, out=lb)
            lbs[b] = lb
            orders[b] = np.lexsort((gidx, lb))
        return lbs, orders

    def vector():
        lb_all = (
            phi[None, :] + phi_q[:, None] - 2.0 * dots - 2.0 * DIMS
        ) / alpha2
        np.maximum(lb_all, 0.0, out=lb_all)
        perm = np.argsort(gidx, kind="stable")
        orders = perm[
            np.argsort(lb_all[:, perm], axis=1, kind="stable")
        ]
        return lb_all, orders

    s_lb, s_orders = scalar()
    v_lb, v_orders = vector()
    identical = bool(
        np.array_equal(s_lb, v_lb) and np.array_equal(s_orders, v_orders)
    )
    scalar_s = []
    vector_s = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar()
        scalar_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        vector()
        vector_s.append(time.perf_counter() - t0)
    loop = min(scalar_s)
    fused = min(vector_s)
    return {
        "bench": "serving_bound_pipeline",
        "smoke": smoke,
        "batch": batch,
        "n_local": n_local,
        "per_query_loop_s": loop,
        "vectorized_s": fused,
        "speedup": loop / fused,
        "identical": identical,
    }


def save_bench_json(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# observability: trace integrity, burn-rate sanity, tracing overhead
# ----------------------------------------------------------------------
#: Smoke-mode ceiling on the end-to-end tracing wall-clock overhead.
MAX_TRACING_OVERHEAD = 0.10
#: Acceptance ceiling on |latency - sum(segments)| per request.
MAX_RESIDUAL_NS = 1.0


def _chaos_setup(
    n_requests: int,
    *,
    monitor=None,
    faults: bool = True,
    load: float = 1.2,
):
    """A chaos+repair serving run, built but not yet run.

    Returns ``(service, requests)`` so callers can time ``service.run``
    in isolation (the build cost — crossbar programming — is identical
    with and without telemetry). ``load`` is the offered-rate multiple
    of the single-node capacity: >1 exercises queueing and shedding,
    <1 is the healthy regime where no SLO alert may fire.
    """
    from repro.faults import FaultPlan
    from repro.repair import RepairController, RepairPolicy

    data = _dataset()
    clean = ShardManager(data, n_shards=4)
    rate = load * _capacity_qps(clean)
    plan = None
    repair = None
    if faults:
        plan = FaultPlan.chaos(
            4, horizon_ns=n_requests / rate * 1e9, seed=5
        )
    manager = ShardManager(
        data, n_shards=4, replication=2, fault_plan=plan
    )
    if faults:
        repair = RepairController(manager, RepairPolicy())
    driver = WorkloadDriver(data, TENANTS, seed=1)
    requests = driver.open_loop(rate, n_requests, arrival="bursty")
    service = QueryService(
        manager,
        TENANTS,
        max_batch=MAX_BATCH,
        queue_capacity=32,
        policy="reject",
        repair=repair,
        monitor=monitor,
    )
    return service, requests


def measure_observability(smoke: bool = False) -> dict:
    """End-to-end trace integrity + burn-rate sanity in one record.

    Runs the chaos+repair workload under tracing and checks the ISSUE
    acceptance gates directly on the export: every admitted request has
    exactly one parented span tree (roots == terminal responses, zero
    orphans), the critical-path segments sum to the end-to-end latency
    within :data:`MAX_RESIDUAL_NS`, the trace/metrics files pass schema
    validation and the Prometheus snapshot parses. A separate clean
    run confirms the default burn-rate rules stay silent on a healthy
    baseline. Violations are returned, not raised — ``main`` turns
    them into the CI exit code.
    """
    from repro.observability import (
        BurnRateMonitor,
        orphan_spans,
        request_breakdowns,
        request_roots,
    )
    from repro.telemetry import telemetry_session
    from repro.telemetry.export import (
        chrome_trace_events,
        parse_prometheus,
        prometheus_snapshot,
        write_chrome_trace,
        write_metrics_jsonl,
        write_prometheus,
    )
    from repro.telemetry.validate import validate_metrics, validate_trace

    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    violations: list[str] = []

    chaos_monitor = BurnRateMonitor()
    with telemetry_session() as tele:
        service, requests = _chaos_setup(
            n_requests, monitor=chaos_monitor
        )
        service.run(requests)
        summary = service.summary()
    events = chrome_trace_events(tele)
    roots = request_roots(events)
    orphans = orphan_spans(events)
    breakdowns = request_breakdowns(events)
    terminal = summary["completed"] + summary["shed"]
    max_residual = max(
        (abs(b["residual_ns"]) for b in breakdowns), default=0.0
    )
    if len(roots) != terminal:
        violations.append(
            f"span roots {len(roots)} != terminal responses {terminal}"
        )
    if orphans:
        violations.append(f"{len(orphans)} orphan spans in export")
    if max_residual > MAX_RESIDUAL_NS:
        violations.append(
            f"segment-sum residual {max_residual:.3g} ns > "
            f"{MAX_RESIDUAL_NS} ns"
        )

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = RESULTS_DIR / "serving_observability.trace.json"
    metrics_path = RESULTS_DIR / "serving_observability.metrics.jsonl"
    prom_path = RESULTS_DIR / "serving_observability.prom"
    write_chrome_trace(tele, trace_path)
    write_metrics_jsonl(tele, metrics_path)
    write_prometheus(tele, prom_path)
    try:
        validated_spans = validate_trace(str(trace_path))
        validated_lines = validate_metrics(str(metrics_path))
    except ValueError as exc:
        validated_spans = validated_lines = 0
        violations.append(f"schema validation failed: {exc}")
    try:
        prom_series = len(parse_prometheus(prometheus_snapshot(tele)))
    except ValueError as exc:
        prom_series = 0
        violations.append(f"prometheus snapshot unparseable: {exc}")
    exemplars = sum(
        1
        for line in prom_path.read_text().splitlines()
        if "# {" in line
    )
    if exemplars == 0:
        violations.append("no exemplar trace_ids on latency histograms")

    healthy_monitor = BurnRateMonitor()
    service, requests = _chaos_setup(
        n_requests, monitor=healthy_monitor, faults=False, load=0.6
    )
    service.run(requests)
    if healthy_monitor.alerts:
        violations.append(
            f"{len(healthy_monitor.alerts)} burn-rate alerts fired on "
            "the healthy baseline"
        )

    return {
        "bench": "serving_observability",
        "smoke": smoke,
        "requests": {
            "offered": summary["offered"],
            "completed": summary["completed"],
            "shed": summary["shed"],
        },
        "trace": {
            "events": len(events),
            "roots": len(roots),
            "orphans": len(orphans),
            "max_residual_ns": max_residual,
            "validated_spans": validated_spans,
            "validated_metric_lines": validated_lines,
            "prom_series": prom_series,
            "prom_exemplars": exemplars,
        },
        "alerts": {
            "chaos": len(chaos_monitor.alerts),
            "healthy": len(healthy_monitor.alerts),
        },
        "artifacts": {
            "trace": str(trace_path),
            "metrics": str(metrics_path),
            "prometheus": str(prom_path),
        },
        "violations": violations,
    }


def measure_tracing_overhead(smoke: bool = False, repeats: int = 3) -> dict:
    """Wall-clock cost of full tracing vs the NullRecorder fast path.

    Interleaved back-to-back pairs of ``service.run`` on identical
    chaos+repair workloads; the overhead is the *median* of the
    per-pair ratios, which is robust to one noisy host sample in a way
    min-of-N is not. Smoke mode gates the ratio at
    :data:`MAX_TRACING_OVERHEAD`; the full run records it.
    """
    import gc
    import statistics

    from repro.telemetry import telemetry_session

    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    plain_s = []
    traced_s = []

    def _timed(run):
        # collect garbage left by earlier bench phases, then keep the
        # collector out of the timed window — cyclic-gc pauses land
        # disproportionately on the allocation-heavier traced runs
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            run()
            return time.perf_counter() - t0
        finally:
            gc.enable()

    for _ in range(repeats):
        service, requests = _chaos_setup(n_requests)
        plain_s.append(_timed(lambda: service.run(requests)))
        with telemetry_session():
            service, requests = _chaos_setup(n_requests)
            traced_s.append(_timed(lambda: service.run(requests)))
    plain = min(plain_s)
    traced = min(traced_s)
    overhead = statistics.median(
        t / p for p, t in zip(plain_s, traced_s)
    ) - 1.0
    return {
        "bench": "tracing_overhead",
        "smoke": smoke,
        "repeats": repeats,
        "plain_s": plain,
        "traced_s": traced,
        "overhead": overhead,
        "max_overhead": MAX_TRACING_OVERHEAD,
    }


def test_serving_fused_perf_trajectory(benchmark, save_results):
    """Fused serving kernels: big wall-clock win, zero observable drift."""
    result = measure_fused_trajectory(smoke=True)
    result["bound_pipeline"] = measure_bound_pipeline(smoke=True)
    save_bench_json(result, RESULTS_DIR / "BENCH_serving.json")
    assert result["bound_pipeline"]["identical"]
    wall = result["wall_clock"]
    save_results(
        "serving_fused_trajectory",
        format_table(
            ["kernel", "fused (ms)", "loop (ms)", "speedup", "bits equal"],
            [[
                result["kernel"],
                f"{wall['fused_s'] * 1e3:.2f}",
                f"{wall['reference_s'] * 1e3:.2f}",
                f"{wall['speedup']:.1f}x",
                result["bit_identical"],
            ]],
            title="Perf trajectory: fused serving kernels vs loop reference",
        ),
    )
    assert result["bit_identical"]
    assert result["simulated"]["identical"]
    assert wall["speedup"] >= MIN_FUSED_SPEEDUP

    manager = ShardManager(_dataset(), n_shards=4)
    queries = np.random.default_rng(3).random((MAX_BATCH, DIMS))
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


@pytest.mark.slow
def test_serving_fused_perf_trajectory_full():
    """Tier 2: full-scale serving workload behind the recorded JSON.

    The per-kernel record matters here: the assign sweep is the
    loop-bound path (~8x fused), while kNN wall-clock is dominated by
    the shared wave + bound machinery on both sides, so the combined
    ratio understates the kernel win.
    """
    result = measure_fused_trajectory(smoke=False)
    result["bound_pipeline"] = measure_bound_pipeline(smoke=False)
    save_bench_json(result, RESULTS_DIR / "BENCH_serving.json")
    assert result["bound_pipeline"]["identical"]
    assert result["bit_identical"]
    assert result["simulated"]["identical"]
    assert result["wall_clock"]["speedup"] >= MIN_FUSED_SPEEDUP


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_serving_observability_integrity(save_results):
    """Traced chaos run: full span trees, exact attribution, no alarms."""
    result = measure_observability(smoke=True)
    trace = result["trace"]
    save_results(
        "serving_observability",
        format_table(
            ["roots", "orphans", "max residual (ns)", "alerts (healthy)"],
            [[
                trace["roots"],
                trace["orphans"],
                f"{trace['max_residual_ns']:.3g}",
                result["alerts"]["healthy"],
            ]],
            title="Observability: traced chaos+repair serving run",
        ),
    )
    assert result["violations"] == []


def test_serving_throughput_scaling(benchmark, save_results):
    result = run_sweep(smoke=True)
    save_results("serving_scaling", format_report(result))
    save_curve(result, RESULTS_DIR / "serving_latency_curve.json")
    scaling = result["scaling"]
    assert scaling["ratio_4_over_1"] >= MIN_SCALING
    # saturation really saturates: the overloaded point sheds traffic
    overloaded = result["series"][0]["points"][-1]
    assert overloaded["shed_rate"] > 0.0

    manager = ShardManager(_dataset(), n_shards=4)
    queries = np.random.default_rng(3).random((MAX_BATCH, DIMS))
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


# ----------------------------------------------------------------------
# CLI mode (used by the CI serving job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer throughput/latency-curve bench"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced sweep (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "serving_latency_curve.json"),
        metavar="FILE", help="latency-curve JSON artifact path",
    )
    parser.add_argument(
        "--perf-out", default=str(RESULTS_DIR / "BENCH_serving.json"),
        metavar="FILE", help="fused-kernel perf-trajectory JSON path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_sweep(smoke=args.smoke)
    print(format_report(result))
    save_curve(result, Path(args.out))
    print(f"latency curve  : {args.out}")
    perf = measure_fused_trajectory(smoke=args.smoke)
    perf["bound_pipeline"] = measure_bound_pipeline(smoke=args.smoke)
    obs = measure_observability(smoke=args.smoke)
    overhead = measure_tracing_overhead(smoke=args.smoke)
    perf["observability"] = obs
    perf["tracing_overhead"] = overhead
    save_bench_json(perf, Path(args.perf_out))
    wall = perf["wall_clock"]
    print(
        f"fused serving  : {wall['speedup']:.1f}x vs loop reference "
        f"(bit_identical={perf['bit_identical']}, "
        f"simulated_identical={perf['simulated']['identical']}) "
        f"-> {args.perf_out}"
    )
    bound = perf["bound_pipeline"]
    print(
        f"bound pipeline : {bound['speedup']:.1f}x batched bound+lexsort "
        f"vs per-query loop (identical={bound['identical']}, "
        f"batch {bound['batch']} x {bound['n_local']:,} rows)"
    )
    trace = obs["trace"]
    print(
        f"observability  : {trace['roots']} span trees / "
        f"{obs['requests']['offered']} requests, "
        f"{trace['orphans']} orphans, "
        f"residual {trace['max_residual_ns']:.2g} ns, "
        f"{trace['prom_series']} prom series "
        f"({trace['prom_exemplars']} exemplars), "
        f"alerts healthy={obs['alerts']['healthy']} "
        f"chaos={obs['alerts']['chaos']}"
    )
    print(
        f"tracing cost   : {overhead['overhead']:+.1%} wall clock "
        f"(traced {overhead['traced_s'] * 1e3:.1f} ms vs "
        f"plain {overhead['plain_s'] * 1e3:.1f} ms; "
        f"smoke ceiling {MAX_TRACING_OVERHEAD:.0%})"
    )
    ratio = result["scaling"]["ratio_4_over_1"]
    if ratio < MIN_SCALING:
        print(
            f"FAIL: 1->4 shard scaling {ratio:.2f}x < {MIN_SCALING}x",
            file=sys.stderr,
        )
        return 1
    if not (perf["bit_identical"] and perf["simulated"]["identical"]):
        print(
            "FAIL: fused serving kernels moved bits or nanoseconds",
            file=sys.stderr,
        )
        return 1
    if not bound["identical"]:
        print(
            "FAIL: batched bound pipeline reordered candidates",
            file=sys.stderr,
        )
        return 1
    if wall["speedup"] < MIN_FUSED_SPEEDUP:
        print(
            f"FAIL: fused serving speedup {wall['speedup']:.2f}x < "
            f"{MIN_FUSED_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    if obs["violations"]:
        for violation in obs["violations"]:
            print(f"FAIL: observability: {violation}", file=sys.stderr)
        return 1
    if args.smoke and overhead["overhead"] > MAX_TRACING_OVERHEAD:
        print(
            f"FAIL: tracing overhead {overhead['overhead']:.1%} > "
            f"{MAX_TRACING_OVERHEAD:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
