"""Serving-layer throughput and latency curves across shard counts.

The north-star claim behind ``repro.serving``: partitioning one dataset
over N independent PIM arrays multiplies serving capacity, because the
row-proportional parts of a query (bound combine, candidate sort, exact
refinement, buffer drain) split across shards while only the constant
wave setup and the tiny k-list merge stay serial. This bench drives the
same offered load at 1/2/4 shards and reports:

* aggregate simulated throughput under saturation (the capacity curve);
* p50/p95/p99 latency and shed rate across an offered-load sweep (the
  latency curve, persisted as JSON for the CI artifact).

Dual mode: a pytest bench (``pytest benchmarks/bench_serving.py``) and a
standalone CLI (``python benchmarks/bench_serving.py --smoke``) whose
telemetry flags reuse the shared :mod:`repro.cli` wiring.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset geometry: large enough that row-proportional work dominates
#: the constant per-wave setup (the regime the scaling claim targets).
N_ROWS = 4096
DIMS = 64
K = 10
MAX_BATCH = 8
SHARD_COUNTS = (1, 2, 4)
#: Offered load points, as multiples of the measured 1-shard capacity.
LOAD_FRACTIONS = (0.5, 1.0, 2.0, 5.0)
SMOKE_LOAD_FRACTIONS = (1.0, 5.0)
N_REQUESTS = 160
SMOKE_REQUESTS = 64
#: Acceptance floor: 1 -> 4 shard aggregate simulated throughput.
MIN_SCALING = 2.5

TENANTS = [
    TenantSpec("batch", workload="near", k=K, weight=1.0),
    TenantSpec("interactive", workload="uniform", k=K, weight=1.0),
]


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def _capacity_qps(manager: ShardManager) -> float:
    """Saturated per-node service rate, probed with one full batch."""
    probe = np.random.default_rng(7).random((MAX_BATCH, DIMS))
    _, timing = manager.knn_batch(probe, K)
    manager.reset_busy()
    return MAX_BATCH * 1e9 / timing.service_ns


def _run_point(
    manager: ShardManager, rate_qps: float, n_requests: int
) -> dict:
    """Serve one offered-load point; returns the reduced SLO numbers."""
    manager.reset_busy()
    driver = WorkloadDriver(_dataset(), TENANTS, seed=1234)
    requests = driver.open_loop(rate_qps, n_requests, arrival="poisson")
    service = QueryService(
        manager,
        TENANTS,
        max_batch=MAX_BATCH,
        queue_capacity=32,
        policy="reject",
        tracker=SLOTracker(),
    )
    service.run(requests)
    summary = service.summary()
    return {
        "rate_qps": rate_qps,
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed_rate": summary["shed_rate"],
        "throughput_qps": summary["throughput_qps"],
        "p50_ns": summary["p50_ns"],
        "p95_ns": summary["p95_ns"],
        "p99_ns": summary["p99_ns"],
        "max_shard_utilization": max(
            summary.get("shard_utilization", [0.0])
        ),
    }


def run_sweep(smoke: bool = False) -> dict:
    """The full experiment: load sweep per shard count + scaling check."""
    fractions = SMOKE_LOAD_FRACTIONS if smoke else LOAD_FRACTIONS
    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    data = _dataset()
    managers = {
        shards: ShardManager(data, n_shards=shards)
        for shards in SHARD_COUNTS
    }
    base_capacity = _capacity_qps(managers[1])
    series = []
    saturated = {}
    for shards, manager in managers.items():
        points = [
            _run_point(manager, fraction * base_capacity, n_requests)
            for fraction in fractions
        ]
        series.append({"shards": shards, "points": points})
        saturated[shards] = points[-1]["throughput_qps"]
    return {
        "meta": {
            "n_rows": N_ROWS,
            "dims": DIMS,
            "k": K,
            "max_batch": MAX_BATCH,
            "n_requests": n_requests,
            "base_capacity_qps": base_capacity,
            "load_fractions": list(fractions),
            "smoke": smoke,
        },
        "series": series,
        "scaling": {
            "throughput_1_shard_qps": saturated[1],
            "throughput_4_shards_qps": saturated[4],
            "ratio_4_over_1": saturated[4] / saturated[1],
            "min_required": MIN_SCALING,
        },
    }


def format_report(result: dict) -> str:
    rows = []
    for entry in result["series"]:
        for point in entry["points"]:
            rows.append(
                [
                    entry["shards"],
                    f"{point['rate_qps']:,.0f}",
                    f"{point['throughput_qps']:,.0f}",
                    f"{point['shed_rate']:.1%}",
                    f"{point['p50_ns'] / 1e3:.1f}",
                    f"{point['p99_ns'] / 1e3:.1f}",
                    f"{point['max_shard_utilization']:.0%}",
                ]
            )
    scaling = result["scaling"]
    return format_table(
        [
            "shards",
            "offered qps",
            "throughput qps",
            "shed",
            "p50 (us)",
            "p99 (us)",
            "util",
        ],
        rows,
        title=(
            "Serving scaling: "
            f"{result['meta']['n_rows']}x{result['meta']['dims']} over "
            "1/2/4 shards — saturated throughput ratio "
            f"{scaling['ratio_4_over_1']:.2f}x "
            f"(floor {scaling['min_required']}x)"
        ),
    )


def save_curve(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_serving_throughput_scaling(benchmark, save_results):
    result = run_sweep(smoke=True)
    save_results("serving_scaling", format_report(result))
    save_curve(result, RESULTS_DIR / "serving_latency_curve.json")
    scaling = result["scaling"]
    assert scaling["ratio_4_over_1"] >= MIN_SCALING
    # saturation really saturates: the overloaded point sheds traffic
    overloaded = result["series"][0]["points"][-1]
    assert overloaded["shed_rate"] > 0.0

    manager = ShardManager(_dataset(), n_shards=4)
    queries = np.random.default_rng(3).random((MAX_BATCH, DIMS))
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


# ----------------------------------------------------------------------
# CLI mode (used by the CI serving job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer throughput/latency-curve bench"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced sweep (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "serving_latency_curve.json"),
        metavar="FILE", help="latency-curve JSON artifact path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_sweep(smoke=args.smoke)
    print(format_report(result))
    save_curve(result, Path(args.out))
    print(f"latency curve  : {args.out}")
    ratio = result["scaling"]["ratio_4_over_1"]
    if ratio < MIN_SCALING:
        print(
            f"FAIL: 1->4 shard scaling {ratio:.2f}x < {MIN_SCALING}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
