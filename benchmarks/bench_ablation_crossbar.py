"""Ablation — crossbar geometry and operand width vs wave latency.

The simulated per-wave latency is driven by the DAC input slicing
(``ceil(b/g)`` cycles), the gather-tree depth and the buffer drain.
This bench sweeps crossbar size and operand width and prints the wave
latency model's outputs, plus pytest-benchmark timings of the simulator
itself (the functional dot-product path) for regression tracking.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.mapper import plan_layout
from repro.hardware.pim_array import PIMArray
from repro.hardware.timing import wave_timing

GEOMETRIES = [64, 128, 256, 512]
OPERAND_BITS = [8, 16, 32]
N, DIMS = 5000, 512


def test_ablation_wave_latency(benchmark, save_results):
    rows = []
    latencies = {}
    for rows_cols in GEOMETRIES:
        for bits in OPERAND_BITS:
            config = PIMArrayConfig(
                crossbar=CrossbarConfig(rows=rows_cols, cols=rows_cols),
                capacity_bytes=2 * 1024**3,
                operand_bits=bits,
            )
            hardware = HardwareConfig(pim=config)
            layout = plan_layout(N, DIMS, config)
            timing = wave_timing(layout, config, hardware)
            latencies[(rows_cols, bits)] = timing.total_ns
            rows.append(
                [
                    f"{rows_cols}x{rows_cols}",
                    bits,
                    timing.input_cycles,
                    timing.gather_cycles,
                    timing.total_ns,
                    layout.n_crossbars,
                ]
            )
    text = format_table(
        [
            "crossbar",
            "operand bits",
            "input cycles",
            "gather cycles",
            "wave (ns)",
            "crossbars used",
        ],
        rows,
        title=(
            f"Ablation: wave latency vs geometry and operand width "
            f"({N} x {DIMS} dataset)"
        ),
    )
    save_results("ablation_crossbar", text)

    # wider operands mean more DAC waves; bigger crossbars mean a
    # shallower gather tree
    for geometry in GEOMETRIES:
        assert latencies[(geometry, 32)] > latencies[(geometry, 8)]
    assert latencies[(512, 32)] <= latencies[(64, 32)]

    # regression benchmark of the functional simulator itself
    rng = np.random.default_rng(0)
    array = PIMArray(HardwareConfig(pim=PIMArrayConfig()))
    matrix = rng.integers(0, 2**20, size=(2000, DIMS))
    array.program_matrix("d", matrix)
    query = rng.integers(0, 2**20, size=DIMS)
    benchmark(lambda: array.query("d", query))
