"""Fig. 13 — kNN classification execution time (four sub-figures).

(a) Standard vs Standard-PIM across datasets — speedup grows with
    dimensionality (the paper's 453x peak is on 4096-d Trevi) and is
    weakest on diffuse GIST;
(b) the four algorithms vs their PIM variants (and the oracle) on MSD;
(c) Standard vs Standard-PIM as k grows (1/10/100);
(d) Standard vs Standard-PIM across distance functions (ED/CS/PCC).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.hardware.config import pim_platform
from repro.hardware.controller import PIMController
from repro.mining.knn import make_baseline, make_pim_variant

KNN_DATASETS = ["ImageNet", "MSD", "Trevi", "GIST"]
ALGORITHMS = ["Standard", "OST", "SM", "FNN"]

#: Compressed dimensionality per dataset, following the paper's Theorem 4
#: outcomes at its scale ("s is 50 for ImageNet and 105 for MSD"); GIST
#: and Trevi use the same capacity-to-N ratio applied to their paper Ns.
PAPER_SEGMENTS = {"ImageNet": 50, "MSD": 105, "GIST": 240, "Trevi": 2048}


def _pair(name, data, queries, k, measure="euclidean", n_segments=None):
    """(baseline profile, PIM profile) for one algorithm family."""
    n, dims = data.shape
    base = profile_knn(
        make_baseline(name, dims, measure=measure).fit(data), queries, k
    )
    if n_segments is not None and name == "Standard":
        from repro.mining.knn import StandardPIMKNN

        pim_algo = StandardPIMKNN(
            measure=measure, n_segments=n_segments
        ).fit(data)
    else:
        pim_algo = make_pim_variant(
            f"{name}-PIM", dims, n, measure=measure
        ).fit(data)
    pim = profile_knn(pim_algo, queries, k)
    return base, pim


def test_fig13a_vary_dataset(benchmark, knn_workloads, save_results):
    rows = []
    speedups = {}
    for dataset in KNN_DATASETS:
        data, queries = knn_workloads[dataset]
        base, pim = _pair(
            "Standard", data, queries, k=10,
            n_segments=PAPER_SEGMENTS[dataset],
        )
        speedups[dataset] = base.total_time_ns / pim.total_time_ns
        rows.append(
            [
                dataset,
                data.shape[1],
                base.total_time_ms,
                pim.total_time_ms,
                f"{speedups[dataset]:.1f}x",
            ]
        )
    text = format_table(
        ["dataset", "d", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        rows,
        title=(
            "Fig 13(a): kNN time by dataset (k=10, ED, 5 queries, "
            "Theorem 4 compression at the paper's per-dataset s)"
        ),
    )
    save_results("fig13a_knn_datasets", text)

    # paper shapes: Trevi (4096-d) gains the most; GIST gains the least
    # among the high-dimensional datasets because its bounds prune poorly
    assert speedups["Trevi"] == max(speedups.values())
    assert speedups["GIST"] < speedups["MSD"]

    data, queries = knn_workloads["MSD"]
    algo = make_pim_variant(
        "Standard-PIM", data.shape[1], data.shape[0]
    ).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))


def test_fig13b_vary_algorithm(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    rows = []
    speedups = {}
    for name in ALGORITHMS:
        base, pim = _pair(name, data, queries, k=10)
        speedups[name] = base.total_time_ns / pim.total_time_ns
        rows.append(
            [
                name,
                base.total_time_ms,
                pim.total_time_ms,
                base.pim_oracle_ns / 1e6,
                f"{speedups[name]:.1f}x",
            ]
        )
    text = format_table(
        ["algorithm", "No-PIM (ms)", "PIM (ms)", "PIM-oracle (ms)", "speedup"],
        rows,
        title="Fig 13(b): kNN time by algorithm (MSD, k=10, 5 queries)",
    )
    save_results("fig13b_knn_algorithms", text)

    # every PIM variant must win
    assert all(s > 1.0 for s in speedups.values())

    algo = make_baseline("OST", data.shape[1]).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))


@pytest.mark.parametrize("k", [1, 10, 100])
def test_fig13c_vary_k(benchmark, msd_workload, save_results, k):
    data, queries = msd_workload
    base, pim = _pair("Standard", data, queries, k=k)
    speedup = base.total_time_ns / pim.total_time_ns
    text = format_table(
        ["k", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        [[k, base.total_time_ms, pim.total_time_ms, f"{speedup:.1f}x"]],
        title=f"Fig 13(c) row: kNN time at k={k} (MSD, ED)",
    )
    save_results(f"fig13c_knn_k{k}", text)
    assert speedup > 1.0

    algo = make_baseline("Standard", data.shape[1]).fit(data)
    benchmark(lambda: algo.query(queries[0], k))


@pytest.mark.parametrize("batch", [8, 16])
def test_fig13_batched_waves(benchmark, msd_workload, save_results, batch):
    """Batched dispatch beats B sequential waves (beyond-paper check).

    B >= 8 queries shipped as one multi-query wave must cost strictly
    less simulated PIM time than B single-query dispatches, while
    returning bit-identical neighbours.
    """
    from repro.data.catalog import make_queries
    from repro.mining.knn import StandardPIMKNN

    data, _ = msd_workload
    queries = make_queries("MSD", data, batch)

    sequential = StandardPIMKNN(controller=PIMController()).fit(data)
    seq_results = [sequential.query(q, 10) for q in queries]
    seq_ns = sequential.controller.pim.stats.pim_time_ns

    batched = StandardPIMKNN(controller=PIMController()).fit(data)
    bat_results = batched.query_batch(queries, 10)
    bat_ns = batched.controller.pim.stats.pim_time_ns
    stats = batched.controller.pim.stats

    text = format_table(
        ["B", "sequential (ms)", "batched (ms)", "saved (ms)", "waves/batch"],
        [[
            batch,
            seq_ns / 1e6,
            bat_ns / 1e6,
            (seq_ns - bat_ns) / 1e6,
            stats.waves_per_batch,
        ]],
        title=f"Batched wave dispatch at B={batch} (MSD, k=10, ED)",
    )
    save_results(f"fig13_batched_b{batch}", text)

    # strictly below B x single-query latency, with identical answers
    assert bat_ns < seq_ns
    assert stats.waves == sequential.controller.pim.stats.waves
    for rs, rb in zip(seq_results, bat_results):
        assert np.array_equal(rs.indices, rb.indices)
        assert np.array_equal(rs.scores, rb.scores)

    benchmark(lambda: batched.query_batch(queries, 10))


@pytest.mark.parametrize("measure", ["euclidean", "cosine", "pearson"])
def test_fig13d_vary_distance(benchmark, msd_workload, save_results, measure):
    data, queries = msd_workload
    base, pim = _pair("Standard", data, queries, k=10, measure=measure)
    speedup = base.total_time_ns / pim.total_time_ns
    text = format_table(
        ["distance", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        [[measure, base.total_time_ms, pim.total_time_ms, f"{speedup:.1f}x"]],
        title=f"Fig 13(d) row: kNN time under {measure} (MSD, k=10)",
    )
    save_results(f"fig13d_knn_{measure}", text)
    assert speedup > 1.0

    algo = make_pim_variant(
        "Standard-PIM", data.shape[1], data.shape[0], measure=measure
    ).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))
