"""Fig. 13 — kNN classification execution time (four sub-figures).

(a) Standard vs Standard-PIM across datasets — speedup grows with
    dimensionality (the paper's 453x peak is on 4096-d Trevi) and is
    weakest on diffuse GIST;
(b) the four algorithms vs their PIM variants (and the oracle) on MSD;
(c) Standard vs Standard-PIM as k grows (1/10/100);
(d) Standard vs Standard-PIM across distance functions (ED/CS/PCC).

Perf trajectory: this bench also measures the fused cell-level wave
kernel against the per-crossbar loop reference — same bits, same
simulated nanoseconds, orders of magnitude less wall-clock — and
persists the numbers as ``BENCH_fig13_knn.json`` so CI can gate on the
speedup never regressing (``--smoke`` floor: 3x; the full run records
the 10x+ trajectory point under ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.hardware.config import pim_platform
from repro.hardware.controller import PIMController
from repro.hardware.pim_array import PIMArray
from repro.mining.knn import make_baseline, make_pim_variant

RESULTS_DIR = Path(__file__).parent / "results"

#: CI acceptance floor for the fused-vs-loop wall-clock speedup on the
#: smoke workload; the full workload documents a much larger margin.
MIN_FUSED_SPEEDUP = 3.0

KNN_DATASETS = ["ImageNet", "MSD", "Trevi", "GIST"]
ALGORITHMS = ["Standard", "OST", "SM", "FNN"]

#: Compressed dimensionality per dataset, following the paper's Theorem 4
#: outcomes at its scale ("s is 50 for ImageNet and 105 for MSD"); GIST
#: and Trevi use the same capacity-to-N ratio applied to their paper Ns.
PAPER_SEGMENTS = {"ImageNet": 50, "MSD": 105, "GIST": 240, "Trevi": 2048}


def _pair(name, data, queries, k, measure="euclidean", n_segments=None):
    """(baseline profile, PIM profile) for one algorithm family."""
    n, dims = data.shape
    base = profile_knn(
        make_baseline(name, dims, measure=measure).fit(data), queries, k
    )
    if n_segments is not None and name == "Standard":
        from repro.mining.knn import StandardPIMKNN

        pim_algo = StandardPIMKNN(
            measure=measure, n_segments=n_segments
        ).fit(data)
    else:
        pim_algo = make_pim_variant(
            f"{name}-PIM", dims, n, measure=measure
        ).fit(data)
    pim = profile_knn(pim_algo, queries, k)
    return base, pim


def test_fig13a_vary_dataset(benchmark, knn_workloads, save_results):
    rows = []
    speedups = {}
    for dataset in KNN_DATASETS:
        data, queries = knn_workloads[dataset]
        base, pim = _pair(
            "Standard", data, queries, k=10,
            n_segments=PAPER_SEGMENTS[dataset],
        )
        speedups[dataset] = base.total_time_ns / pim.total_time_ns
        rows.append(
            [
                dataset,
                data.shape[1],
                base.total_time_ms,
                pim.total_time_ms,
                f"{speedups[dataset]:.1f}x",
            ]
        )
    text = format_table(
        ["dataset", "d", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        rows,
        title=(
            "Fig 13(a): kNN time by dataset (k=10, ED, 5 queries, "
            "Theorem 4 compression at the paper's per-dataset s)"
        ),
    )
    save_results("fig13a_knn_datasets", text)

    # paper shapes: Trevi (4096-d) gains the most; GIST gains the least
    # among the high-dimensional datasets because its bounds prune poorly
    assert speedups["Trevi"] == max(speedups.values())
    assert speedups["GIST"] < speedups["MSD"]

    data, queries = knn_workloads["MSD"]
    algo = make_pim_variant(
        "Standard-PIM", data.shape[1], data.shape[0]
    ).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))


def test_fig13b_vary_algorithm(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    rows = []
    speedups = {}
    for name in ALGORITHMS:
        base, pim = _pair(name, data, queries, k=10)
        speedups[name] = base.total_time_ns / pim.total_time_ns
        rows.append(
            [
                name,
                base.total_time_ms,
                pim.total_time_ms,
                base.pim_oracle_ns / 1e6,
                f"{speedups[name]:.1f}x",
            ]
        )
    text = format_table(
        ["algorithm", "No-PIM (ms)", "PIM (ms)", "PIM-oracle (ms)", "speedup"],
        rows,
        title="Fig 13(b): kNN time by algorithm (MSD, k=10, 5 queries)",
    )
    save_results("fig13b_knn_algorithms", text)

    # every PIM variant must win
    assert all(s > 1.0 for s in speedups.values())

    algo = make_baseline("OST", data.shape[1]).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))


@pytest.mark.parametrize("k", [1, 10, 100])
def test_fig13c_vary_k(benchmark, msd_workload, save_results, k):
    data, queries = msd_workload
    base, pim = _pair("Standard", data, queries, k=k)
    speedup = base.total_time_ns / pim.total_time_ns
    text = format_table(
        ["k", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        [[k, base.total_time_ms, pim.total_time_ms, f"{speedup:.1f}x"]],
        title=f"Fig 13(c) row: kNN time at k={k} (MSD, ED)",
    )
    save_results(f"fig13c_knn_k{k}", text)
    assert speedup > 1.0

    algo = make_baseline("Standard", data.shape[1]).fit(data)
    benchmark(lambda: algo.query(queries[0], k))


@pytest.mark.parametrize("batch", [8, 16])
def test_fig13_batched_waves(benchmark, msd_workload, save_results, batch):
    """Batched dispatch beats B sequential waves (beyond-paper check).

    B >= 8 queries shipped as one multi-query wave must cost strictly
    less simulated PIM time than B single-query dispatches, while
    returning bit-identical neighbours.
    """
    from repro.data.catalog import make_queries
    from repro.mining.knn import StandardPIMKNN

    data, _ = msd_workload
    queries = make_queries("MSD", data, batch)

    sequential = StandardPIMKNN(controller=PIMController()).fit(data)
    seq_results = [sequential.query(q, 10) for q in queries]
    seq_ns = sequential.controller.pim.stats.pim_time_ns

    batched = StandardPIMKNN(controller=PIMController()).fit(data)
    bat_results = batched.query_batch(queries, 10)
    bat_ns = batched.controller.pim.stats.pim_time_ns
    stats = batched.controller.pim.stats

    text = format_table(
        ["B", "sequential (ms)", "batched (ms)", "saved (ms)", "waves/batch"],
        [[
            batch,
            seq_ns / 1e6,
            bat_ns / 1e6,
            (seq_ns - bat_ns) / 1e6,
            stats.waves_per_batch,
        ]],
        title=f"Batched wave dispatch at B={batch} (MSD, k=10, ED)",
    )
    save_results(f"fig13_batched_b{batch}", text)

    # strictly below B x single-query latency, with identical answers
    assert bat_ns < seq_ns
    assert stats.waves == sequential.controller.pim.stats.waves
    for rs, rb in zip(seq_results, bat_results):
        assert np.array_equal(rs.indices, rb.indices)
        assert np.array_equal(rs.scores, rb.scores)

    benchmark(lambda: batched.query_batch(queries, 10))


@pytest.mark.parametrize("measure", ["euclidean", "cosine", "pearson"])
def test_fig13d_vary_distance(benchmark, msd_workload, save_results, measure):
    data, queries = msd_workload
    base, pim = _pair("Standard", data, queries, k=10, measure=measure)
    speedup = base.total_time_ns / pim.total_time_ns
    text = format_table(
        ["distance", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        [[measure, base.total_time_ms, pim.total_time_ms, f"{speedup:.1f}x"]],
        title=f"Fig 13(d) row: kNN time under {measure} (MSD, k=10)",
    )
    save_results(f"fig13d_knn_{measure}", text)
    assert speedup > 1.0

    algo = make_pim_variant(
        "Standard-PIM", data.shape[1], data.shape[0], measure=measure
    ).fit(data)
    benchmark(lambda: algo.query(queries[0], 10))


# ----------------------------------------------------------------------
# perf trajectory: fused wave kernel vs per-crossbar loop reference
# ----------------------------------------------------------------------
def _trajectory_workload(smoke: bool):
    """Integer wave workload on the Table 5 platform (MSD-like shape)."""
    rng = np.random.default_rng(1313)
    n, dims, batch = (1024, 50, 4) if smoke else (3000, 96, 8)
    matrix = rng.integers(0, 1 << 16, size=(n, dims), dtype=np.int64)
    queries = rng.integers(0, 1 << 16, size=(batch, dims), dtype=np.int64)
    return matrix, queries


def measure_fused_trajectory(smoke: bool = False, repeats: int = 5) -> dict:
    """Fused vs loop-reference cell-level waves: wall-clock + fidelity.

    Both paths must return bit-identical values and *identical*
    simulated nanoseconds (the fusion contract); only the host
    wall-clock differs. The loop runs once (it is the slow side); the
    fused kernel is averaged over ``repeats`` runs.
    """
    matrix, queries = _trajectory_workload(smoke)
    platform = pim_platform()
    fused = PIMArray(platform, simulate_cells=True)
    loop = PIMArray(platform, simulate_cells=True, reference=True)
    fused.program_matrix("bench", matrix)
    loop.program_matrix("bench", matrix)

    fused_result = fused.query_batch("bench", queries)  # warm-up + check
    loop_result = loop.query_batch("bench", queries)
    bit_identical = bool(
        np.array_equal(fused_result.values, loop_result.values)
    )
    t0 = time.perf_counter()
    for _ in range(repeats):
        fused.query_batch("bench", queries)
    fused_s = (time.perf_counter() - t0) / repeats
    t0 = time.perf_counter()
    loop.query_batch("bench", queries)
    loop_s = time.perf_counter() - t0
    return {
        "bench": "fig13_knn",
        "kernel": "cell_level_batched_wave",
        "smoke": smoke,
        "workload": {
            "n_vectors": int(matrix.shape[0]),
            "dims": int(matrix.shape[1]),
            "batch": int(queries.shape[0]),
            "operand_bits": platform.pim.operand_bits,
        },
        "wall_clock": {
            "fused_s": fused_s,
            "reference_s": loop_s,
            "speedup": loop_s / fused_s,
        },
        "simulated": {
            "fused_ns": fused_result.timing.total_ns,
            "reference_ns": loop_result.timing.total_ns,
            "identical": fused_result.timing.total_ns
            == loop_result.timing.total_ns,
        },
        "bit_identical": bit_identical,
        "min_speedup": MIN_FUSED_SPEEDUP,
    }


def save_bench_json(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


def test_fig13_fused_perf_trajectory(benchmark, save_results):
    """The fused kernel is fast *and* moves zero bits or nanoseconds."""
    result = measure_fused_trajectory(smoke=True)
    save_bench_json(result, RESULTS_DIR / "BENCH_fig13_knn.json")
    wall = result["wall_clock"]
    save_results(
        "fig13_fused_trajectory",
        format_table(
            ["kernel", "fused (ms)", "loop (ms)", "speedup", "bits equal"],
            [[
                result["kernel"],
                f"{wall['fused_s'] * 1e3:.2f}",
                f"{wall['reference_s'] * 1e3:.2f}",
                f"{wall['speedup']:.1f}x",
                result["bit_identical"],
            ]],
            title="Perf trajectory: fused wave kernel vs loop reference",
        ),
    )
    assert result["bit_identical"]
    assert result["simulated"]["identical"]
    assert wall["speedup"] >= MIN_FUSED_SPEEDUP

    matrix, queries = _trajectory_workload(smoke=True)
    fused = PIMArray(pim_platform(), simulate_cells=True)
    fused.program_matrix("bench", matrix)
    benchmark(lambda: fused.query_batch("bench", queries))


@pytest.mark.slow
def test_fig13_fused_perf_trajectory_full():
    """Tier 2: the full-scale workload behind the recorded JSON.

    The smoke test above gates every CI run at ``MIN_FUSED_SPEEDUP``;
    this one reproduces the full record committed under
    ``benchmarks/results/`` (>= 10x observed there) without blocking
    the default suite on a multi-second loop-reference run.
    """
    result = measure_fused_trajectory(smoke=False)
    save_bench_json(result, RESULTS_DIR / "BENCH_fig13_knn.json")
    assert result["bit_identical"]
    assert result["simulated"]["identical"]
    assert result["wall_clock"]["speedup"] >= MIN_FUSED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fused-wave perf-trajectory bench (Fig. 13 rider)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workload; same bit/timing assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "BENCH_fig13_knn.json"),
        metavar="FILE", help="perf-trajectory JSON artifact path",
    )
    args = parser.parse_args(argv)
    result = measure_fused_trajectory(smoke=args.smoke)
    save_bench_json(result, Path(args.out))
    wall = result["wall_clock"]
    print(
        f"fused {wall['fused_s'] * 1e3:.2f} ms  "
        f"loop {wall['reference_s'] * 1e3:.2f} ms  "
        f"speedup {wall['speedup']:.1f}x  "
        f"bit_identical={result['bit_identical']}  "
        f"simulated_identical={result['simulated']['identical']}"
    )
    print(f"perf trajectory: {args.out}")
    if not (result["bit_identical"] and result["simulated"]["identical"]):
        print("FAIL: fused kernel moved bits or nanoseconds", file=sys.stderr)
        return 1
    if wall["speedup"] < MIN_FUSED_SPEEDUP:
        print(
            f"FAIL: fused speedup {wall['speedup']:.2f}x < "
            f"{MIN_FUSED_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
