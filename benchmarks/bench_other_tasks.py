"""Extension — the framework on the paper's other Section II-C tasks.

The paper's conclusion ("we will examine how to extend our techniques
beyond..." — but Section II-C already names them): distance-based
outlier detection, time-series motif discovery, and the maximum
inner-product search behind CS/PCC retrieval. Each gets the same
treatment as kNN/k-means: baseline vs PIM variant, identical results,
simulated-time speedup.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.cost.model import CostModel
from repro.hardware.config import baseline_platform, pim_platform
from repro.mining.motif import PIMMotifDiscovery, StandardMotifDiscovery
from repro.mining.outlier import PIMOutlierDetector, StandardOutlierDetector
from repro.mining.knn.maxip import PIMMIPS, StandardMIPS


def _times(base_counters, base_pim_ns, pim_counters, pim_pim_ns):
    base_ms = CostModel(baseline_platform()).total_time_ns(base_counters) / 1e6
    pim_ms = (
        CostModel(pim_platform()).total_time_ns(pim_counters) + pim_pim_ns
    ) / 1e6
    return base_ms, pim_ms


def test_other_mining_tasks(benchmark, save_results, rng):
    rows = []
    speedups = {}

    # --- distance-based outlier detection -----------------------------
    centers = rng.random((8, 64))
    data = np.clip(
        centers[rng.integers(0, 8, 600)]
        + 0.05 * rng.standard_normal((600, 64)),
        0,
        1,
    )
    data[:8] = rng.random((8, 64))
    std_out = (
        StandardOutlierDetector(n_neighbors=5, n_outliers=8)
        .fit(data)
        .detect()
    )
    pim_out = (
        PIMOutlierDetector(n_neighbors=5, n_outliers=8).fit(data).detect()
    )
    assert np.allclose(np.sort(std_out.scores), np.sort(pim_out.scores))
    base_ms, pim_ms = _times(
        std_out.counters, 0.0, pim_out.counters, pim_out.pim_time_ns
    )
    speedups["outliers"] = base_ms / pim_ms
    rows.append(
        ["outlier detection (top-8, k=5)", base_ms, pim_ms,
         f"{speedups['outliers']:.1f}x", "identical"]
    )

    # --- time-series motif discovery ----------------------------------
    series = np.sin(np.linspace(0, 30 * np.pi, 1200))
    series += 0.1 * rng.standard_normal(1200)
    series[100:164] = series[900:964]
    std_motif = StandardMotifDiscovery(window=64).fit(series).discover()
    pim_motif = PIMMotifDiscovery(window=64).fit(series).discover()
    assert pim_motif.distance == std_motif.distance
    base_ms, pim_ms = _times(
        std_motif.counters, 0.0, pim_motif.counters, pim_motif.pim_time_ns
    )
    speedups["motif"] = base_ms / pim_ms
    rows.append(
        ["motif discovery (w=64)", base_ms, pim_ms,
         f"{speedups['motif']:.1f}x", "identical"]
    )

    # --- maximum inner-product search ----------------------------------
    mips_data = rng.random((2000, 128))
    q = rng.random(128)
    std_mips = StandardMIPS(top=10).fit(mips_data).query(q)
    pim_mips = PIMMIPS(top=10).fit(mips_data).query(q)
    assert np.allclose(
        np.sort(std_mips.products), np.sort(pim_mips.products)
    )
    base_ms, pim_ms = _times(
        std_mips.counters, 0.0, pim_mips.counters, pim_mips.pim_time_ns
    )
    speedups["mips"] = base_ms / pim_ms
    rows.append(
        ["max inner product (top-10)", base_ms, pim_ms,
         f"{speedups['mips']:.1f}x", "identical"]
    )

    # --- kNN join (all-kNN, the batch workload) ------------------------
    from repro.mining.knn.join import PIMKNNJoin, StandardKNNJoin

    join_data = np.clip(
        centers[rng.integers(0, 8, 500)]
        + 0.05 * rng.standard_normal((500, 64)),
        0,
        1,
    )
    std_join = StandardKNNJoin(k=5).fit(join_data).join()
    pim_join = PIMKNNJoin(k=5).fit(join_data).join()
    assert np.allclose(std_join.distances, pim_join.distances)
    base_ms, pim_ms = _times(
        std_join.counters, 0.0, pim_join.counters, pim_join.pim_time_ns
    )
    speedups["join"] = base_ms / pim_ms
    rows.append(
        ["kNN self-join (k=5)", base_ms, pim_ms,
         f"{speedups['join']:.1f}x", "identical"]
    )

    text = format_table(
        ["task", "baseline (ms)", "PIM (ms)", "speedup", "results"],
        rows,
        title=(
            "Extension: the framework on further similarity-based "
            "mining tasks (Section II-C)"
        ),
    )
    save_results("extension_other_tasks", text)

    assert all(s > 1.0 for s in speedups.values())

    detector = PIMOutlierDetector(n_neighbors=5, n_outliers=8).fit(data)
    benchmark.pedantic(detector.detect, rounds=2, iterations=1)
