"""Fig. 18 — Standard and Drake k-means vs their PIM and oracle curves.

Paper series (NUS-WIDE): time per iteration as k grows, for the
baseline, the -PIM variant and the PIM-oracle (Eq. 2).

Expected shapes: for Standard the gap to the oracle is wide and
Standard-PIM lands close to the oracle; for Drake the baseline-oracle
gap is obvious and Drake-PIM "bridges the gap effectively".
"""

from __future__ import annotations

import pytest

from repro.core.profiler import profile_kmeans
from repro.core.report import format_table
from repro.mining.kmeans import initial_centers, make_kmeans

KS = [4, 16, 64, 256]
MAX_ITERS = 3


@pytest.mark.parametrize("algorithm", ["Standard", "Drake"])
def test_fig18_kmeans_oracle(
    benchmark, kmeans_datasets, save_results, algorithm
):
    data = kmeans_datasets["NUS-WIDE"]
    rows = []
    closeness = []
    for k in KS:
        centers = initial_centers(data, k, seed=1)
        base = profile_kmeans(
            make_kmeans(algorithm, k, max_iters=MAX_ITERS), data,
            centers=centers.copy(),
        )
        pim = profile_kmeans(
            make_kmeans(f"{algorithm}-PIM", k, max_iters=MAX_ITERS), data,
            centers=centers.copy(),
        )
        iters = base.extras["n_iterations"]
        oracle_ms = base.pim_oracle_ns / 1e6 / iters
        base_ms = base.extras["time_per_iteration_ms"]
        pim_ms = pim.extras["time_per_iteration_ms"]
        rows.append([k, base_ms, pim_ms, oracle_ms])
        closeness.append((base_ms, pim_ms, oracle_ms))
    text = format_table(
        ["k", algorithm, f"{algorithm}-PIM", f"{algorithm}-PIM-oracle"],
        rows,
        title=(
            f"Fig 18: {algorithm} k-means on NUS-WIDE — "
            "ms/iteration vs k"
        ),
    )
    save_results(f"fig18_kmeans_{algorithm.lower()}", text)

    # paper shape: PIM sits between the baseline and the oracle, and at
    # large k it bridges most of the gap
    for base_ms, pim_ms, oracle_ms in closeness:
        assert oracle_ms <= pim_ms <= base_ms * 1.05
    base_ms, pim_ms, oracle_ms = closeness[-1]
    assert (base_ms - pim_ms) > 0.5 * (base_ms - oracle_ms)

    k = KS[1]
    centers = initial_centers(data, k, seed=1)
    algo = make_kmeans(f"{algorithm}-PIM", k, max_iters=1)
    benchmark.pedantic(
        lambda: algo.fit(data, centers.copy()), rounds=1, iterations=1
    )
