"""Gray-failure chaos campaign: detector on vs off at equal hardware.

The gray-failure claim behind :class:`repro.faults.ChaosCampaign`: a
fleet whose shards go *slow* (sustained stragglers, intermittent
slowdowns, flaky links, correlated bank-group stragglers) — rather
than dead — must keep serving bit-exact answers, and the latency
outlier detector + adaptive hedging must buy back tail latency without
extra hardware. The campaign drives one seeded query trace through a
clean single-array oracle and through the same sharded fleet twice
(legacy recovery policy vs gray defenses on), per scenario, and this
bench gates:

* **exactness** — zero violations across every scenario and arm: any
  gray plan's answers are bit-identical to the clean single-array run
  (and the gray+crash scenario's too — recovery never invents values);
* **tail latency** — under the ``straggler`` scenario the detector-on
  arm's p99 is *strictly below* the detector-off arm's, at equal
  shards/replication;
* **hedge budget** — every detector-on arm's hedged-wave rate stays at
  or under the configured budget (the token bucket holds);
* **availability** — both faulted arms complete at least
  ``MIN_AVAILABILITY`` of requests at full fidelity.

Dual mode: a pytest bench (``pytest benchmarks/bench_chaos.py``) and a
standalone CLI (``python benchmarks/bench_chaos.py --smoke``) used by
the CI ``chaos-campaign`` job, which uploads the campaign timeline
JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.faults import ChaosCampaign

RESULTS_DIR = Path(__file__).parent / "results"

N_ROWS = 1024
DIMS = 48
K = 10
N_SHARDS = 4
REPLICATION = 2
N_REQUESTS = 200
SMOKE_REQUESTS = 100
HORIZON_NS = 1.5e7
HEDGE_BUDGET = 0.3
CAMPAIGN_SEED = 7
#: Acceptance floors (also enforced by the CI chaos-campaign job).
MIN_AVAILABILITY = 0.99


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def run_bench(smoke: bool = False) -> dict:
    """Run the standard campaign; returns the timeline artifact dict."""
    campaign = ChaosCampaign(
        _dataset(),
        n_shards=N_SHARDS,
        replication=REPLICATION,
        n_requests=SMOKE_REQUESTS if smoke else N_REQUESTS,
        k=K,
        horizon_ns=HORIZON_NS,
        hedge_budget=HEDGE_BUDGET,
        seed=CAMPAIGN_SEED,
    )
    result = campaign.run()
    result["meta"] = {"smoke": smoke}
    result["thresholds"] = {
        "min_availability": MIN_AVAILABILITY,
        "hedge_budget": HEDGE_BUDGET,
    }
    return result


def check(result: dict) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    failures = []
    for scenario in result["scenarios"]:
        name = scenario["name"]
        for arm_name, arm in scenario["arms"].items():
            if arm["exactness_violations"]:
                failures.append(
                    f"{name}/{arm_name}: {arm['exactness_violations']} "
                    "answers differ from the clean single-array oracle"
                )
            if arm["availability"] < MIN_AVAILABILITY:
                failures.append(
                    f"{name}/{arm_name}: availability "
                    f"{arm['availability']:.2%} < {MIN_AVAILABILITY:.0%}"
                )
        on = scenario["arms"]["detector_on"]
        if on["hedge_rate"] > HEDGE_BUDGET:
            failures.append(
                f"{name}: hedge rate {on['hedge_rate']:.3f} exceeds "
                f"budget {HEDGE_BUDGET}"
            )
        if name == "straggler":
            off = scenario["arms"]["detector_off"]
            if not on["latency_p99_ns"] < off["latency_p99_ns"]:
                failures.append(
                    "straggler: detector-on p99 "
                    f"{on['latency_p99_ns']:.0f}ns is not strictly below "
                    f"detector-off {off['latency_p99_ns']:.0f}ns"
                )
    return failures


def format_report(result: dict) -> str:
    rows = []
    for scenario in result["scenarios"]:
        off = scenario["arms"]["detector_off"]
        on = scenario["arms"]["detector_on"]
        better = 1.0 - (
            on["latency_p99_ns"] / off["latency_p99_ns"]
            if off["latency_p99_ns"]
            else 1.0
        )
        rows.append(
            [
                scenario["name"],
                f"{off['latency_p99_ns'] / 1e3:.1f}",
                f"{on['latency_p99_ns'] / 1e3:.1f}",
                f"{better:+.1%}",
                f"{on['hedge_rate']:.3f}",
                off["exactness_violations"] + on["exactness_violations"],
                sum(
                    r["ejections"]
                    for r in on["health"]
                ),
            ]
        )
    campaign = result["campaign"]
    return format_table(
        [
            "scenario", "p99 off (us)", "p99 on (us)", "p99 gain",
            "hedge rate", "violations", "ejections",
        ],
        rows,
        title=(
            f"Gray-failure campaign: {campaign['n_shards']} shards "
            f"x{campaign['replication']} replicas, "
            f"{campaign['n_requests']} requests/arm, seed "
            f"{campaign['seed']} — hedge budget "
            f"{campaign['hedge_budget']:.0%}"
        ),
    )


def save_timeline(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_chaos_campaign(benchmark, save_results):
    result = run_bench(smoke=True)
    save_results("chaos_campaign", format_report(result))
    save_timeline(result, RESULTS_DIR / "chaos_campaign_timeline.json")
    failures = check(result)
    assert not failures, "; ".join(failures)

    campaign = ChaosCampaign(
        _dataset(),
        scenarios=None,
        n_shards=N_SHARDS,
        replication=REPLICATION,
        n_requests=16,
        k=K,
        horizon_ns=HORIZON_NS,
        seed=CAMPAIGN_SEED,
    )
    benchmark.pedantic(campaign.run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# CLI mode (used by the CI chaos-campaign job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "gray-failure chaos campaign: detector on vs off at equal "
            "hardware"
        )
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced trace (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out",
        default=str(RESULTS_DIR / "chaos_campaign_timeline.json"),
        metavar="FILE", help="campaign timeline JSON artifact path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_bench(smoke=args.smoke)
    print(format_report(result))
    save_timeline(result, Path(args.out))
    print(f"campaign timeline : {args.out}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
