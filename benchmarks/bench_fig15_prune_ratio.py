"""Fig. 15 — pruning ratio and per-dataset transfer cost of the bounds.

Paper series (MSD, alpha=1e6): the pruning ratios of the original FNN
ladder (LB_FNN^7, LB_FNN^28, LB_FNN^105) and the PIM-aware
LB_PIM-FNN^105, plus the total data-transfer cost of computing each
bound for the whole dataset.

Expected shape: LB_PIM-FNN^105 prunes (nearly) as strongly as
LB_FNN^105 — far stronger than the coarse levels — while its dataset
transfer cost (3*b bits/object) is the smallest of all.
"""

from __future__ import annotations

from repro.bounds.ed import FNNBound
from repro.bounds.pim import PIMFNNBound
from repro.core.planner import standalone_pruning_ratios
from repro.core.report import format_table
from repro.hardware.controller import PIMController
from repro.mining.knn import StandardKNN

#: MSD's FNN ladder at the paper's resolutions (d=420).
LADDER = [7, 28, 105]
PIM_SEGMENTS = 105
K = 10


def test_fig15_prune_ratio(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    n = data.shape[0]
    reference = StandardKNN().fit(data)

    originals = [FNNBound(s) for s in LADDER]
    pim_bound = PIMFNNBound(PIM_SEGMENTS, PIMController())
    bounds = originals + [pim_bound]
    for bound in bounds:
        bound.prepare(data)

    ratios = standalone_pruning_ratios(bounds, reference, queries, K)
    rows = [
        [
            bound.name,
            f"{ratios[bound.name] * 100:.1f}%",
            bound.per_object_transfer_bits * n / 8 / 1024,  # KiB
        ]
        for bound in bounds
    ]
    text = format_table(
        ["bound", "prune ratio", "dataset transfer (KiB)"],
        rows,
        title=(
            "Fig 15: pruning ratio and transfer cost of computing each "
            "bound over the dataset (MSD, alpha=1e6, k=10)"
        ),
    )
    save_results("fig15_prune_ratio", text)

    # paper shapes
    r = ratios
    assert r["LB_PIM-FNN_105"] >= r["LB_FNN_105"] - 0.02
    assert r["LB_PIM-FNN_105"] > r["LB_FNN_7"]
    assert r["LB_PIM-FNN_105"] > r["LB_FNN_28"]
    transfer = {b.name: b.per_object_transfer_bits for b in bounds}
    assert transfer["LB_PIM-FNN_105"] == min(transfer.values())

    benchmark(lambda: pim_bound.evaluate(queries[0]))
