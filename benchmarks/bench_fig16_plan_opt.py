"""Fig. 16 — execution-plan optimization for FNN-PIM.

Paper series (MSD, k=10): FNN vs FNN-PIM (default plan: LB_PIM-FNN^105
replaces the bottleneck LB_FNN^7, the rest of the ladder stays) vs
FNN-PIM-optimize (the Eq. 13-chosen plan) vs the FNN-PIM-oracle.

Expected shape: FNN-PIM already beats FNN; the optimizer drops the
now-redundant original bounds and moves closer to the oracle.
"""

from __future__ import annotations

from repro.bounds.ed import FNNBound
from repro.core.planner import optimize_fnn_plan
from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.hardware.controller import PIMController
from repro.mining.knn import FNNKNN, FNNPIMKNN, FNNPIMOptimizeKNN, StandardKNN

K = 10
PIM_SEGMENTS = 105  # the paper's Theorem 4 outcome for MSD


def test_fig16_plan_optimization(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    n, dims = data.shape

    baseline = FNNKNN(dims).fit(data)
    base_profile = profile_knn(baseline, queries, K)

    controller = PIMController()
    default_pim = FNNPIMKNN(
        dims, n, controller=controller, n_segments=PIM_SEGMENTS
    ).fit(data)
    default_profile = profile_knn(default_pim, queries, K)

    reference = StandardKNN().fit(data)
    originals = [FNNBound(s) for s in default_pim.segment_ladder]
    for bound in originals:
        bound.prepare(data)
    plan, ratios = optimize_fnn_plan(
        default_pim.bounds[0], originals, reference, queries[:2], K
    )
    optimized = FNNPIMOptimizeKNN(list(plan.bounds), controller).fit(data)
    optimized_profile = profile_knn(optimized, queries, K)

    rows = [
        ["FNN", base_profile.total_time_ms, "-"],
        [
            "FNN-PIM",
            default_profile.total_time_ms,
            " + ".join(b.name for b in default_pim.bounds),
        ],
        [
            "FNN-PIM-optimize",
            optimized_profile.total_time_ms,
            " + ".join(plan.names),
        ],
        ["FNN-PIM-oracle", base_profile.pim_oracle_ns / 1e6, "-"],
    ]
    text = format_table(
        ["variant", "time (ms)", "bound plan"],
        rows,
        title="Fig 16: execution-plan optimization (MSD, k=10, 5 queries)",
    )
    text += "\nmeasured standalone ratios: " + ", ".join(
        f"{name}={ratio:.3f}" for name, ratio in sorted(ratios.items())
    )
    save_results("fig16_plan_opt", text)

    # paper shapes: PIM beats FNN, optimization beats the default plan,
    # and the optimized plan drops every original bound
    assert default_profile.total_time_ns < base_profile.total_time_ns
    assert optimized_profile.total_time_ns <= default_profile.total_time_ns
    assert plan.names == (default_pim.bounds[0].name,)

    benchmark(lambda: optimized.query(queries[0], K))
