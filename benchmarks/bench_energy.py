"""Ablation — energy per kNN query, conventional vs PIM platform.

The paper motivates PIM with the cost of data movement (its citation
[21]: ~200x the energy of computation). This bench prices one kNN query
on both platforms with the NVSim-style energy model: the baseline pays
DRAM traffic for every candidate's full vector; the PIM platform pays
one crossbar wave (ADC-dominated) plus 3*b bits per candidate.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.hardware.config import PIMArrayConfig
from repro.hardware.energy import EnergyModel, movement_to_compute_ratio
from repro.hardware.mapper import plan_layout
from repro.mining.knn import StandardKNN, StandardPIMKNN


def test_energy_per_query(benchmark, knn_workloads, save_results):
    model = EnergyModel()
    config = PIMArrayConfig()
    rows = []
    ratios = {}
    for dataset, (data, queries) in knn_workloads.items():
        n, dims = data.shape
        base_algo = StandardKNN().fit(data)
        base_result = base_algo.query(queries[0], 10)
        base_j = model.cpu_energy_j(base_result.counters)

        pim_algo = StandardPIMKNN().fit(data)
        pim_result = pim_algo.query(queries[0], 10)
        layout = plan_layout(n, dims, config)
        pim_j = model.cpu_energy_j(
            pim_result.counters, reram_memory=True
        ) + model.pim_energy_j(layout, config, n_waves=1)
        ratios[dataset] = base_j / pim_j
        rows.append(
            [
                dataset,
                dims,
                base_j * 1e6,  # microjoules
                pim_j * 1e6,
                f"{ratios[dataset]:.1f}x",
            ]
        )
    text = format_table(
        ["dataset", "d", "Standard (uJ)", "Standard-PIM (uJ)", "saving"],
        rows,
        title=(
            "Ablation: energy per kNN query (k=10); movement/compute "
            f"price ratio = {movement_to_compute_ratio(model):.1f}x"
        ),
    )
    save_results("ablation_energy", text)

    # PIM must save energy on every dataset, more at higher d
    assert all(r > 1.0 for r in ratios.values())
    assert ratios["Trevi"] == max(ratios.values())

    data, queries = knn_workloads["MSD"]
    algo = StandardPIMKNN().fit(data)
    benchmark(lambda: algo.query(queries[0], 10))
