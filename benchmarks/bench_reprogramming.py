"""Ablation — chunked re-programming vs Theorem 4 compression.

The paper's Section V-C rejects "divide the dataset and re-program the
crossbars per part" because of ReRAM's write latency and endurance, and
its future work asks for a space-friendlier scheme. This bench measures
the rejected design: per-query latency and projected device lifetime as
the dataset outgrows the array, against the compression alternative at
the same capacity.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.hardware.config import pim_platform
from repro.hardware.controller import PIMController
from repro.hardware.reprogramming import ChunkedDotProductEngine
from repro.mining.knn import StandardPIMKNN
from repro.core.profiler import profile_knn

#: PIM capacity (KiB) small enough that the scaled MSD needs chunking
#: at full dimensionality.
CAPACITY_KIB = 1536
K = 10


def test_reprogramming_vs_compression(benchmark, msd_workload, save_results):
    data, queries = msd_workload
    n, dims = data.shape
    platform = pim_platform(pim_capacity_bytes=CAPACITY_KIB * 1024)

    # --- rejected design: chunk + re-program at full dimensionality ---
    engine = ChunkedDotProductEngine(platform)
    quantized = np.floor(data * 10**6).astype(np.int64)
    n_chunks = engine.load(quantized)
    query_ints = np.floor(queries[0] * 10**6).astype(np.int64)
    for q in queries:
        engine.dot_products_all(np.floor(q * 10**6).astype(np.int64))
    chunked_ms = engine.amortized_query_time_ns() / 1e6
    lifetime = engine.projected_lifetime_queries()

    # --- the paper's design: compress via Theorem 4, program once ---
    controller = PIMController(platform)
    algo = StandardPIMKNN(controller=controller).fit(data)
    profile = profile_knn(algo, queries, K)
    compressed_ms = profile.total_time_ms / len(queries)

    rows = [
        [
            "chunked re-programming",
            n_chunks,
            chunked_ms,
            f"{engine.writes_per_query():.1f}",
            f"{lifetime:.2e}",
        ],
        [
            f"Theorem 4 compression (s={algo.n_segments})",
            1,
            compressed_ms,
            "0.0",
            "unlimited",
        ],
    ]
    text = format_table(
        [
            "scheme",
            "chunks",
            "ms/query",
            "writes/query",
            "lifetime (queries)",
        ],
        rows,
        title=(
            "Ablation: chunked re-programming vs compression "
            f"(MSD {n}x{dims} on a {CAPACITY_KIB} KiB array)"
        ),
    )
    save_results("ablation_reprogramming", text)

    # the paper's design rule: compression wins on latency AND lifetime
    assert n_chunks > 1
    assert compressed_ms < chunked_ms
    assert lifetime < 1e10  # finite: the device wears out

    benchmark.pedantic(
        lambda: engine.dot_products_all(query_ints), rounds=2, iterations=1
    )
