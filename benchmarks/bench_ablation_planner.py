"""Ablation — exhaustive (2^L) vs greedy execution-plan search.

Section V-D enumerates all ``2^L`` plans; with a handful of bounds that
is instant, but the enumeration grows exponentially. This bench compares
the exhaustive optimum against the O(L^2) greedy planner on growing
candidate sets: plan quality (Eq. 13 transfer) and planning effort.
"""

from __future__ import annotations

import time

from repro.bounds.ed import FNNBound
from repro.core.planner import ExecutionPlanner
from repro.core.report import format_table
from repro.similarity.segments import equal_segment_counts

N_OBJECTS = 100000
DIMS = 420


def _candidates(count: int) -> list[FNNBound]:
    segments = [s for s in equal_segment_counts(DIMS) if s > 1][:count]
    return [FNNBound(s) for s in segments]


def _ratios(bounds) -> dict[str, float]:
    # synthetic, monotone-in-resolution pruning ratios
    return {
        b.name: min(0.995, 0.3 + 0.1 * i)
        for i, b in enumerate(bounds)
    }


def test_ablation_planner(benchmark, save_results):
    rows = []
    for count in [3, 6, 9, 12]:
        bounds = _candidates(count)
        ratios = _ratios(bounds)
        planner = ExecutionPlanner(bounds, N_OBJECTS, DIMS)

        t0 = time.perf_counter()
        exhaustive = planner.best_plan(ratios)
        t_exhaustive = time.perf_counter() - t0

        t0 = time.perf_counter()
        greedy = planner.greedy_plan(ratios)
        t_greedy = time.perf_counter() - t0

        quality = greedy.transfer_bits / exhaustive.transfer_bits
        rows.append(
            [
                count,
                2**count - 1,
                f"{t_exhaustive * 1e3:.2f}",
                f"{t_greedy * 1e3:.2f}",
                f"{quality:.3f}",
            ]
        )
        # greedy must stay within a few percent of the optimum here
        assert quality <= 1.1

    text = format_table(
        [
            "candidate bounds",
            "plans enumerated",
            "exhaustive (ms)",
            "greedy (ms)",
            "greedy/optimal transfer",
        ],
        rows,
        title="Ablation: exhaustive vs greedy plan search (Eq. 13)",
    )
    save_results("ablation_planner", text)

    bounds = _candidates(12)
    ratios = _ratios(bounds)
    planner = ExecutionPlanner(bounds, N_OBJECTS, DIMS)
    benchmark(lambda: planner.greedy_plan(ratios))
