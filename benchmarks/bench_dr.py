"""Disaster-recovery campaign: domain kills + cold restarts, gated.

The durability claim behind :class:`repro.faults.DisasterRecoveryCampaign`:
when a whole failure domain (every shard on one power rail) dies at
once, *where the replicas sit* decides survival — and a checkpointed
cold restart must be indistinguishable from a service that never
crashed. The campaign serves one seeded query trace through a clean
single-array oracle, through two equal-hardware fleets (ring placement
vs domain-spread placement) under the same seeded
:meth:`~repro.faults.FaultPlan.domain_outage` plan, and through a
serve→checkpoint→crash→restore→serve leg. This bench gates:

* **exactness** — zero violations in every arm and in the checkpoint
  leg: a correlated outage may slow or degrade requests, never change
  values;
* **survival** — the spread arm's full-fidelity availability is
  *strictly above* the naive arm's at equal shards/replication, and
  stays at 1.0 (every chunk keeps a live replica outside the dead
  domain);
* **recovery point** — the restored service's recovery point equals
  the checkpoint's snapshot time exactly (no silent replay gap);
* **restore fidelity** — the crashed-and-restored service's answers
  are bit-identical to the uninterrupted twin's, every request;
* **placement accounting** — the pristine spread fleet reports zero
  at-risk chunks while the naive fleet reports at least one (the
  at-risk metric actually discriminates).

Dual mode: a pytest bench (``pytest benchmarks/bench_dr.py``) and a
standalone CLI (``python benchmarks/bench_dr.py --smoke``) used by the
CI ``dr`` job, which uploads the recovery-timeline JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.faults import DisasterRecoveryCampaign

RESULTS_DIR = Path(__file__).parent / "results"

N_ROWS = 1024
DIMS = 48
K = 10
N_SHARDS = 8
REPLICATION = 2
N_REQUESTS = 160
SMOKE_REQUESTS = 60
HORIZON_NS = 1.5e7
CAMPAIGN_SEED = 11
#: The spread arm must keep every request on the full-fidelity path.
SPREAD_AVAILABILITY = 1.0


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def run_bench(smoke: bool = False) -> dict:
    """Run the DR campaign; returns the recovery-timeline artifact."""
    campaign = DisasterRecoveryCampaign(
        _dataset(),
        n_shards=N_SHARDS,
        replication=REPLICATION,
        n_requests=SMOKE_REQUESTS if smoke else N_REQUESTS,
        k=K,
        horizon_ns=HORIZON_NS,
        outage_domains=1,
        level="power",
        checkpoint_dir=str(RESULTS_DIR / "dr_checkpoints"),
        seed=CAMPAIGN_SEED,
    )
    result = campaign.run()
    result["meta"] = {"smoke": smoke}
    result["thresholds"] = {
        "spread_availability": SPREAD_AVAILABILITY,
    }
    return result


def check(result: dict) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    failures = []
    naive = result["arms"]["naive"]
    spread = result["arms"]["spread"]
    for name, arm in result["arms"].items():
        if arm["exactness_violations"]:
            failures.append(
                f"{name}: {arm['exactness_violations']} answers differ "
                "from the clean single-array oracle"
            )
    if result["placement_answer_divergence"]:
        failures.append(
            f"placement arms disagree on "
            f"{result['placement_answer_divergence']} answers "
            "(placement must never change values)"
        )
    if not spread["availability"] > naive["availability"]:
        failures.append(
            f"spread availability {spread['availability']:.2%} is not "
            f"strictly above naive {naive['availability']:.2%} at equal "
            "hardware"
        )
    if spread["availability"] < SPREAD_AVAILABILITY:
        failures.append(
            f"spread availability {spread['availability']:.2%} < "
            f"{SPREAD_AVAILABILITY:.0%} — a chunk lost every replica "
            "to one domain"
        )
    if spread["at_risk_chunks_before_outage"] != 0:
        failures.append(
            f"spread placement left "
            f"{spread['at_risk_chunks_before_outage']} chunks at risk "
            "before the outage"
        )
    if naive["at_risk_chunks_before_outage"] == 0:
        failures.append(
            "naive placement reports zero at-risk chunks — the at-risk "
            "metric does not discriminate on this fleet"
        )
    ck = result["checkpoint"]
    if ck["exactness_violations"]:
        failures.append(
            f"checkpoint leg: {ck['exactness_violations']} answers "
            "differ from the oracle"
        )
    if ck["restore_mismatches"]:
        failures.append(
            f"checkpoint leg: {ck['restore_mismatches']} answers differ "
            "from the uninterrupted twin after restore"
        )
    if ck["recovery_point_ns"] != ck["checkpoint_t_ns"]:
        failures.append(
            f"recovery point {ck['recovery_point_ns']} != last "
            f"checkpoint {ck['checkpoint_t_ns']}"
        )
    return failures


def format_report(result: dict) -> str:
    rows = []
    for name in ("naive", "spread"):
        arm = result["arms"][name]
        rows.append(
            [
                name,
                f"{arm['availability']:.2%}",
                arm["exactness_violations"],
                arm["degraded_responses"],
                arm["at_risk_chunks_before_outage"],
                arm["placement_violations"],
                f"{arm['latency_p99_ns'] / 1e3:.1f}",
            ]
        )
    ck = result["checkpoint"]
    campaign = result["campaign"]
    table = format_table(
        [
            "placement", "availability", "violations", "degraded",
            "at-risk (pre)", "spread warns", "p99 (us)",
        ],
        rows,
        title=(
            f"Disaster recovery: {campaign['n_shards']} shards "
            f"x{campaign['replication']} replicas, "
            f"{campaign['outage_domains']} {campaign['level']} "
            f"domain(s) down, {campaign['n_requests']} requests/arm, "
            f"seed {campaign['seed']}"
        ),
    )
    return (
        f"{table}\n"
        f"checkpoint leg    : {ck['requests_before_crash']} served, "
        f"crash, restore, {ck['requests_after_restore']} served — "
        f"{ck['restore_mismatches']} mismatches, recovery point "
        f"{ck['recovery_point_ns'] / 1e6:.3f}ms "
        f"(= checkpoint: "
        f"{ck['recovery_point_ns'] == ck['checkpoint_t_ns']})"
    )


def save_timeline(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_dr_campaign(benchmark, save_results):
    result = run_bench(smoke=True)
    save_results("dr_campaign", format_report(result))
    save_timeline(result, RESULTS_DIR / "dr_campaign_timeline.json")
    failures = check(result)
    assert not failures, "; ".join(failures)

    campaign = DisasterRecoveryCampaign(
        _dataset(),
        n_shards=N_SHARDS,
        replication=REPLICATION,
        n_requests=16,
        k=K,
        horizon_ns=HORIZON_NS,
        checkpoint_dir=str(RESULTS_DIR / "dr_checkpoints"),
        seed=CAMPAIGN_SEED,
    )
    benchmark.pedantic(campaign.run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# CLI mode (used by the CI dr job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "disaster-recovery campaign: domain outages, spread vs "
            "naive placement, checkpointed cold restart"
        )
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced trace (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out",
        default=str(RESULTS_DIR / "dr_campaign_timeline.json"),
        metavar="FILE", help="recovery timeline JSON artifact path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_bench(smoke=args.smoke)
    print(format_report(result))
    save_timeline(result, Path(args.out))
    print(f"recovery timeline : {args.out}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
