"""Fig. 14 — kNN on binary codes (Hamming distance) vs code length.

Paper series: Standard vs Standard-PIM (vs the oracle) on LSH codes of
128-1024 bits, k=10.

Expected shape: PIM barely helps at 128 bits (its fixed 64-bit result
transfer is half the 128-bit code), and the speedup grows with code
length because the CPU transfer grows while PIM's stays constant.
"""

from __future__ import annotations

from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.data.lsh import make_binary_codes
from repro.mining.knn.hamming import HammingKNN, PIMHammingKNN

CODE_LENGTHS = [128, 256, 512, 1024]
N_CODES = 2000
K = 10


def test_fig14_hamming(benchmark, save_results):
    rows = []
    speedups = {}
    for bits in CODE_LENGTHS:
        codes = make_binary_codes(N_CODES, bits, input_dims=256, seed=0)
        queries = codes[:3]
        cpu = profile_knn(HammingKNN().fit(codes), queries, K)
        pim = profile_knn(PIMHammingKNN().fit(codes), queries, K)
        speedups[bits] = cpu.total_time_ns / pim.total_time_ns
        rows.append(
            [
                bits,
                cpu.total_time_ms,
                pim.total_time_ms,
                cpu.pim_oracle_ns / 1e6,
                f"{speedups[bits]:.2f}x",
            ]
        )
    text = format_table(
        [
            "code bits",
            "Standard (ms)",
            "Standard-PIM (ms)",
            "PIM-oracle (ms)",
            "speedup",
        ],
        rows,
        title="Fig 14: kNN on binary codes (HD, k=10, 3 queries)",
    )
    save_results("fig14_hamming", text)

    # paper shape: monotone gain with code length; little gain at 128
    assert speedups[1024] > speedups[512] > speedups[128]
    assert speedups[128] < 3.0

    codes = make_binary_codes(N_CODES, 256, input_dims=256, seed=0)
    algo = PIMHammingKNN().fit(codes)
    benchmark(lambda: algo.query(codes[0], K))
