"""Chaos bench: exact recovery of the serving layer under injected faults.

The robustness claim behind :mod:`repro.faults` + the recovery machinery
in :mod:`repro.serving`: with k-replica placement, a seeded fault plan
that kills one of four shards mid-run and corrupts a slice of its waves
must not change a single answer. Concretely this bench drives the same
deterministic request trace twice — once fault-free, once under a
:meth:`~repro.faults.FaultPlan.chaos` schedule — and checks:

* **exactness** — every completed response of the chaos run is
  bit-identical (indices and scores) to the fault-free run;
* **availability** — the chaos run completes at least
  ``MIN_AVAILABILITY`` of offered requests (replication absorbs the
  shard death);
* **detection** — corrupted waves are flagged by the residue checksum
  (never silently used), at a rate consistent with the injected
  corruption;
* **overhead** — programming + verifying the checksum row costs at most
  ``MAX_VERIFY_OVERHEAD`` of clean-path service time;
* **telemetry** — the emitted trace and metrics files pass the schema
  validator, and a fault-timeline JSON artifact records the plan, the
  recovery counters and the final per-shard health.

Dual mode: a pytest bench (``pytest benchmarks/bench_faults.py``) and a
standalone CLI (``python benchmarks/bench_faults.py --smoke``) used by
the CI chaos job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cli import add_telemetry_args, telemetry_scope
from repro.core.report import format_table
from repro.faults import FaultPlan
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)
from repro.telemetry import telemetry_session
from repro.telemetry.export import write_chrome_trace, write_metrics_jsonl
from repro.telemetry.validate import validate_metrics, validate_trace

RESULTS_DIR = Path(__file__).parent / "results"

N_ROWS = 2048
DIMS = 64
K = 10
N_SHARDS = 4
REPLICATION = 2
MAX_BATCH = 8
N_REQUESTS = 96
SMOKE_REQUESTS = 48
FAULT_SEED = 7
#: Acceptance floors/ceilings (also enforced by the CI chaos job).
MIN_AVAILABILITY = 0.99
MAX_VERIFY_OVERHEAD = 0.05
#: Corrupted-row flags per wave attempt under the chaos plan must at
#: least reach this — the plan corrupts ~15% of one shard's rows, so a
#: healthy detector sits far above 1%.
MIN_CORRUPT_RATE = 0.01

TENANTS = [
    TenantSpec("batch", workload="near", k=K, weight=1.0),
    TenantSpec("interactive", workload="uniform", k=K, weight=1.0),
]


def _dataset() -> np.ndarray:
    return np.random.default_rng(42).random((N_ROWS, DIMS))


def _probe_rate(data: np.ndarray) -> float:
    """Offered load at ~80% of clean single-node capacity."""
    manager = ShardManager(data, n_shards=N_SHARDS)
    probe = np.random.default_rng(7).random((MAX_BATCH, DIMS))
    _, timing = manager.knn_batch(probe, K)
    return 0.8 * MAX_BATCH * 1e9 / timing.service_ns


def _trace(data: np.ndarray, rate_qps: float, n_requests: int) -> list:
    """The deterministic request trace (regenerated fresh per run —
    the service mutates requests in place)."""
    driver = WorkloadDriver(data, TENANTS, seed=1234)
    return driver.open_loop(rate_qps, n_requests, arrival="poisson")


def _serve_trace(
    data: np.ndarray,
    requests: list,
    fault_plan: FaultPlan | None,
) -> tuple[dict, dict, ShardManager]:
    """One full serving run; returns responses by id, summary, manager."""
    manager = ShardManager(
        data,
        n_shards=N_SHARDS,
        replication=REPLICATION,
        fault_plan=fault_plan,
    )
    service = QueryService(
        manager,
        TENANTS,
        max_batch=MAX_BATCH,
        queue_capacity=64,
        policy="reject",
        tracker=SLOTracker(),
    )
    service.run(requests)
    by_id = {r.request_id: r for r in service.responses}
    return by_id, service.summary(), manager


def _verify_overhead(data: np.ndarray) -> dict:
    """Clean-path cost of the residue checksum (program + verify)."""
    probe = np.random.default_rng(11).random((MAX_BATCH, DIMS))
    plain = ShardManager(data, n_shards=N_SHARDS, verify=False)
    _, t_plain = plain.knn_batch(probe, K)
    checked = ShardManager(data, n_shards=N_SHARDS, verify=True)
    _, t_checked = checked.knn_batch(probe, K)
    overhead = t_checked.service_ns / t_plain.service_ns - 1.0
    return {
        "plain_service_ns": float(t_plain.service_ns),
        "verified_service_ns": float(t_checked.service_ns),
        "overhead": float(overhead),
        "max_allowed": MAX_VERIFY_OVERHEAD,
    }


def run_bench(smoke: bool = False) -> dict:
    """Clean run vs chaos run + overhead probe + telemetry validation."""
    n_requests = SMOKE_REQUESTS if smoke else N_REQUESTS
    data = _dataset()
    rate = _probe_rate(data)

    clean, clean_summary, _ = _serve_trace(
        data, _trace(data, rate, n_requests), None
    )

    requests = _trace(data, rate, n_requests)
    horizon_ns = 1.05 * max(r.arrival_ns for r in requests)
    plan = FaultPlan.chaos(N_SHARDS, horizon_ns, seed=FAULT_SEED)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = RESULTS_DIR / "faults_chaos.trace.json"
    metrics_path = RESULTS_DIR / "faults_chaos.metrics.jsonl"
    with telemetry_session() as tele:
        chaos, chaos_summary, manager = _serve_trace(data, requests, plan)
    write_chrome_trace(tele, str(trace_path))
    write_metrics_jsonl(tele, str(metrics_path))
    span_events = validate_trace(str(trace_path))
    metric_lines = validate_metrics(str(metrics_path))

    violations = []
    for rid, response in sorted(chaos.items()):
        if not response.ok:
            continue
        reference = clean.get(rid)
        if reference is None or not reference.ok:
            violations.append({"request": rid, "kind": "no_reference"})
            continue
        if not (
            np.array_equal(response.indices, reference.indices)
            and np.array_equal(response.scores, reference.scores)
        ):
            violations.append({"request": rid, "kind": "mismatch"})

    recovery = chaos_summary["recovery"]
    corrupt_rate = recovery["corrupt_detected"] / max(
        recovery["attempts"], 1
    )
    overhead = _verify_overhead(data)
    result = {
        "meta": {
            "n_rows": N_ROWS,
            "dims": DIMS,
            "k": K,
            "n_shards": N_SHARDS,
            "replication": REPLICATION,
            "n_requests": n_requests,
            "rate_qps": float(rate),
            "fault_seed": FAULT_SEED,
            "horizon_ns": float(horizon_ns),
            "smoke": smoke,
        },
        "fault_plan": plan.describe(),
        "clean": {
            "completed": clean_summary["completed"],
            "p99_ns": clean_summary["p99_ns"],
        },
        "chaos": {
            "completed": chaos_summary["completed"],
            "availability": chaos_summary["availability"],
            "retry_rate": chaos_summary["retry_rate"],
            "mttr_ns": chaos_summary["mttr_ns"],
            "p99_ns": chaos_summary["p99_ns"],
            "degraded_exact": chaos_summary["degraded_exact"],
            "recovery": recovery,
            "corrupt_rate": float(corrupt_rate),
            "dead_shards": manager.health.dead_shards,
            "health": manager.health.snapshot(
                float(manager._clock_ns)
            ),
        },
        "exactness_violations": violations,
        "verify_overhead": overhead,
        "telemetry": {
            "trace_file": str(trace_path),
            "metrics_file": str(metrics_path),
            "span_events": span_events,
            "metric_lines": metric_lines,
        },
        "thresholds": {
            "min_availability": MIN_AVAILABILITY,
            "max_verify_overhead": MAX_VERIFY_OVERHEAD,
            "min_corrupt_rate": MIN_CORRUPT_RATE,
        },
    }
    return result


def check(result: dict) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    failures = []
    chaos = result["chaos"]
    if result["exactness_violations"]:
        failures.append(
            f"{len(result['exactness_violations'])} completed responses "
            "differ from the fault-free run"
        )
    if chaos["availability"] < MIN_AVAILABILITY:
        failures.append(
            f"availability {chaos['availability']:.2%} < "
            f"{MIN_AVAILABILITY:.0%}"
        )
    if not chaos["dead_shards"]:
        failures.append("the chaos plan killed no shard (bench mis-sized)")
    if chaos["corrupt_rate"] < MIN_CORRUPT_RATE:
        failures.append(
            f"corrupt detection rate {chaos['corrupt_rate']:.2%} < "
            f"{MIN_CORRUPT_RATE:.0%} — injected corruption went unseen"
        )
    overhead = result["verify_overhead"]["overhead"]
    if overhead > MAX_VERIFY_OVERHEAD:
        failures.append(
            f"verify overhead {overhead:.2%} > {MAX_VERIFY_OVERHEAD:.0%}"
        )
    return failures


def format_report(result: dict) -> str:
    chaos = result["chaos"]
    rec = chaos["recovery"]
    rows = [
        ["completed", result["clean"]["completed"], chaos["completed"]],
        [
            "p99 (us)",
            f"{result['clean']['p99_ns'] / 1e3:.1f}",
            f"{chaos['p99_ns'] / 1e3:.1f}",
        ],
        ["availability", "100%", f"{chaos['availability']:.2%}"],
        ["crashes", 0, rec["crashes"]],
        ["corrupt flags", 0, rec["corrupt_detected"]],
        ["failovers", 0, rec["failovers"]],
        ["retries", 0, rec["retries"]],
        ["degraded chunks", 0, rec["degraded_chunks"]],
        ["dead shards", "[]", str(chaos["dead_shards"])],
        [
            "exactness violations",
            0,
            len(result["exactness_violations"]),
        ],
    ]
    overhead = result["verify_overhead"]["overhead"]
    return format_table(
        ["metric", "clean", "chaos"],
        rows,
        title=(
            f"Chaos recovery: {N_SHARDS} shards x{REPLICATION} replicas, "
            f"seed {FAULT_SEED} — verify overhead {overhead:.2%} "
            f"(cap {MAX_VERIFY_OVERHEAD:.0%})"
        ),
    )


def save_timeline(result: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_chaos_recovery(benchmark, save_results):
    result = run_bench(smoke=True)
    save_results("fault_recovery", format_report(result))
    save_timeline(result, RESULTS_DIR / "fault_timeline.json")
    failures = check(result)
    assert not failures, "; ".join(failures)

    data = _dataset()
    plan = FaultPlan.chaos(N_SHARDS, 1e8, seed=FAULT_SEED)
    manager = ShardManager(
        data, n_shards=N_SHARDS, replication=REPLICATION, fault_plan=plan
    )
    queries = np.random.default_rng(3).random((MAX_BATCH, DIMS))
    benchmark.pedantic(
        lambda: manager.knn_batch(queries, K), rounds=3, iterations=1
    )


# ----------------------------------------------------------------------
# CLI mode (used by the CI chaos job)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="chaos bench: fault injection + exact recovery"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced trace (CI-sized); same assertions",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "fault_timeline.json"),
        metavar="FILE", help="fault-timeline JSON artifact path",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)
    with telemetry_scope(args):
        result = run_bench(smoke=args.smoke)
    print(format_report(result))
    save_timeline(result, Path(args.out))
    print(f"fault timeline : {args.out}")
    print(
        f"telemetry      : {result['telemetry']['span_events']} spans, "
        f"{result['telemetry']['metric_lines']} metric lines validated"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
