"""Setuptools shim enabling legacy editable installs (offline machines
without the ``wheel`` package cannot build PEP 660 editable wheels)."""

from setuptools import setup

setup()
