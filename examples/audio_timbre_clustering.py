"""Clustering audio timbre features: the full k-means family on PIM.

The paper's Table 7 scenario: cluster high-dimensional feature vectors
with the four exact k-means algorithms (Lloyd, Elkan, Drake, Yinyang)
and their PIM-assisted variants. All eight produce the *same*
clustering from the same initial centers; they differ only in how many
exact distance computations — and how much memory traffic — they need.

    python examples/audio_timbre_clustering.py
"""

from __future__ import annotations

from repro.core.profiler import profile_kmeans
from repro.data.catalog import make_dataset
from repro.mining.kmeans import initial_centers, make_kmeans

N_SONGS = 1200
K = 32
MAX_ITERS = 6
ALGORITHMS = ["Standard", "Elkan", "Drake", "Yinyang"]


def main() -> None:
    data = make_dataset("MSD", n=N_SONGS, seed=0)
    centers = initial_centers(data, K, seed=7)

    print(f"{N_SONGS} songs x {data.shape[1]} timbre dims, k={K}\n")
    print(f"{'algorithm':<14} {'ms/iter':>9} {'exact EDs':>10} "
          f"{'inertia':>10}  notes")
    reference_inertia = None
    for name in ALGORITHMS:
        for suffix in ("", "-PIM"):
            algo = make_kmeans(name + suffix, K, max_iters=MAX_ITERS)
            profile = profile_kmeans(algo, data, centers=centers.copy())
            inertia = profile.extras["inertia"]
            if reference_inertia is None:
                reference_inertia = inertia
            note = (
                "== Lloyd"
                if abs(inertia - reference_inertia) < 1e-6
                else "DIVERGED!"
            )
            print(
                f"{name + suffix:<14} "
                f"{profile.extras['time_per_iteration_ms']:>9.3f} "
                f"{int(profile.extras['exact_distances']):>10} "
                f"{inertia:>10.2f}  {note}"
            )

    print(
        "\nEvery variant reaches the identical clustering; the PIM "
        "variants replace most exact distances with one LB_PIM-ED wave "
        "per center per iteration (3*b bits of transfer per consulted "
        "pair instead of d*b)."
    )


if __name__ == "__main__":
    main()
