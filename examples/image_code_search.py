"""Image search over LSH binary codes on PIM (paper Fig. 14 scenario).

Image retrieval systems compact descriptors into short binary codes with
locality-sensitive hashing and rank candidates by Hamming distance. PIM
computes HD *exactly* through the two-dot-product decomposition of
Table 4 (code . query + complement . complement), so the per-candidate
transfer is two 32-bit results no matter how long the code is.

This example builds GIST-like descriptors, hashes them at several code
lengths, runs the same queries on the CPU scan and the PIM scan, checks
the rankings agree, and shows the crossover the paper reports: PIM is
pointless at 128 bits and increasingly valuable at 512+.

    python examples/image_code_search.py
"""

from __future__ import annotations

import numpy as np

from repro.core.profiler import profile_knn
from repro.data.lsh import RandomHyperplaneLSH
from repro.data.synthetic import clustered
from repro.mining.knn.hamming import HammingKNN, PIMHammingKNN

N_IMAGES = 3000
DESCRIPTOR_DIMS = 256
CODE_LENGTHS = (128, 256, 512, 1024)
K = 10


def main() -> None:
    descriptors = clustered(
        N_IMAGES, DESCRIPTOR_DIMS, n_clusters=40, spread=0.05, seed=0
    )
    query_descriptor = descriptors[123]

    print(f"{N_IMAGES} images, k={K} nearest codes per query\n")
    print(f"{'bits':>5}  {'CPU (ms)':>9}  {'PIM (ms)':>9}  "
          f"{'speedup':>7}  identical")
    for bits in CODE_LENGTHS:
        lsh = RandomHyperplaneLSH(DESCRIPTOR_DIMS, bits, seed=1)
        codes = lsh.encode(descriptors)
        query = lsh.encode(query_descriptor)[0]

        cpu_algo = HammingKNN().fit(codes)
        pim_algo = PIMHammingKNN().fit(codes)
        cpu = profile_knn(cpu_algo, query[None, :], K)
        pim = profile_knn(pim_algo, query[None, :], K)
        same = np.allclose(
            np.sort(cpu_algo.query(query, K).scores),
            np.sort(pim_algo.query(query, K).scores),
        )
        print(
            f"{bits:>5}  {cpu.total_time_ms:>9.4f}  "
            f"{pim.total_time_ms:>9.4f}  "
            f"{cpu.total_time_ns / pim.total_time_ns:>6.1f}x  {same}"
        )

    print(
        "\nShort codes barely gain (PIM still moves 64 result bits per "
        "candidate); long codes amortise the fixed transfer — the "
        "paper's Fig. 14."
    )


if __name__ == "__main__":
    main()
