"""Batched query execution: one wave setup amortized over many queries.

Walks the batched engine bottom-up on a synthetic workload:

1. raw array level — `query_batch` vs a sequential `query` loop
   (identical values, cheaper simulated time);
2. scheduler level — submit/flush semantics of `BatchScheduler`;
3. mining level — `StandardPIMKNN.query_batch` and the batch counters
   the profiler reports.

    python examples/batched_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.core.planner import BatchScheduler
from repro.core.profiler import profile_knn
from repro.core.report import format_batch_stats
from repro.hardware.controller import PIMController
from repro.mining.knn import StandardPIMKNN


def array_level(data: np.ndarray, queries: np.ndarray) -> None:
    print("=== 1. raw waves: sequential loop vs one batched dispatch ===")
    matrix = np.floor(data * 255).astype(np.int64)
    ints = np.floor(queries * 255).astype(np.int64)

    sequential = PIMController()
    sequential.pim.program_matrix("data", matrix)
    for q in ints:
        sequential.pim.query("data", q)

    batched = PIMController()
    batched.pim.program_matrix("data", matrix)
    result = batched.pim.query_batch("data", ints)

    seq_ns = sequential.pim.stats.pim_time_ns
    bat_ns = batched.pim.stats.pim_time_ns
    print(f"queries          : {len(ints)}")
    print(f"sequential waves : {seq_ns:10.1f} ns")
    print(f"batched wave     : {bat_ns:10.1f} ns "
          f"({result.timing.setup_cycles} setup + "
          f"{len(ints)}x{result.timing.per_query_cycles} query cycles)")
    print(f"saved            : {seq_ns - bat_ns:10.1f} ns "
          f"({batched.pim.stats.batch_saved_ns:.1f} booked)")
    print(f"logical waves    : {batched.pim.stats.waves} "
          f"(same as sequential: {sequential.pim.stats.waves})")


def scheduler_level(data: np.ndarray, queries: np.ndarray) -> None:
    print("\n=== 2. scheduler: group, then flush on size/deadline ===")
    controller = PIMController()
    controller.pim.program_matrix(
        "data", np.floor(data * 255).astype(np.int64)
    )
    scheduler = BatchScheduler(controller, max_batch=4, max_delay_ns=500.0)
    tickets = [
        scheduler.submit("data", np.floor(q * 255).astype(np.int64))
        for q in queries
    ]
    scheduler.advance(1000.0)  # deadline fires for the leftover group
    assert all(t.done for t in tickets)
    stats = scheduler.stats
    print(f"submitted        : {stats.submitted}")
    print(f"batches flushed  : {stats.batches_flushed} "
          f"(mean size {stats.waves_per_batch:.1f})")
    print(f"flush reasons    : {stats.flush_reasons}")


def mining_level(data: np.ndarray, queries: np.ndarray) -> None:
    print("\n=== 3. kNN: query_batch primes the bound in one wave ===")
    algo = StandardPIMKNN(controller=PIMController())
    algo.fit(data)
    profile = profile_knn(algo, queries, k=5, batch_size=len(queries))

    baseline = StandardPIMKNN(controller=PIMController())
    baseline.fit(data)
    base_profile = profile_knn(baseline, queries, k=5)  # per-query loop

    print(f"sequential PIM   : {base_profile.pim_time_ns:10.1f} ns")
    print(f"batched PIM      : {profile.pim_time_ns:10.1f} ns")
    print(f"batch counters   : {format_batch_stats(profile.extras)}")

    for q in queries[:1]:
        a = baseline.query(q, 5)
        b = algo.query(q, 5)
        assert np.array_equal(a.indices, b.indices)
    print("results exact    : True (batching never changes answers)")


def main() -> None:
    rng = np.random.default_rng(7)
    data = rng.random((300, 32))
    queries = rng.random((10, 32))
    array_level(data, queries)
    scheduler_level(data, queries)
    mining_level(data, queries)


if __name__ == "__main__":
    main()
