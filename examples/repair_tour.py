"""Repair tour: heal the hardware in the background, keep every bit.

PR-4's fault tolerance (``faults_tour.py``) keeps answers exact *while*
a fault is live; :mod:`repro.repair` makes the fault go away. This tour
walks the self-healing ladder:

1. **remap** — a :class:`PIMArray` built with a spare-crossbar pool
   moves a flagged crossbar onto its least-worn spare, charging real
   reprogramming latency, without changing a single output value;
2. **scrub** — a :class:`RepairController` probes shards with
   residue-checked verification waves during idle simulated time,
   confirms a silent stuck-cell defect, remaps the damaged crossbars
   and quarantines the shard until clean probes re-admit it;
3. **re-replicate** — a crashed shard's chunks are copied byte-for-byte
   to surviving shards under a repair-bandwidth budget, restoring every
   chunk to its target replica count;
4. **self-heal under load** — a full :class:`QueryService` run with the
   controller interleaved between EDF dispatches: versus a
   failover-only baseline on the same seeded fault plan, the healed run
   recomputes fewer chunks on the host, ends with full redundancy, and
   still answers bit-identically to a fault-free node.

The same experiment is available without code via the CLI::

    python -m repro serve --shards 4 --replication 2 --chaos \
        --repair --spares 64 --scrub-period 200

    python examples/repair_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.faults import FaultEvent, FaultPlan
from repro.hardware.pim_array import PIMArray
from repro.repair import RepairController, RepairPolicy
from repro.serving import (
    QueryService,
    RecoveryPolicy,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)

N_SHARDS = 4
REPLICATION = 2
SPARES = 64  # enough to remap a stuck shard's whole data allocation
K = 10


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.random((960, 32))
    queries = rng.random((3, 32))
    clean = ShardManager(data, n_shards=1)
    reference = [clean.knn(q, k=K) for q in queries]

    # -- 1. spare pool: remap a crossbar, values untouched ------------
    array = PIMArray(spare_crossbars=4)
    array.program_matrix("demo", rng.integers(0, 256, size=(40, 32)))
    probe = rng.integers(0, 256, size=32)
    before = array.query("demo", probe).values
    victim = array.crossbar_ids_of("demo")[0]
    spare, remap_ns = array.remap_crossbar(victim)
    after = array.query("demo", probe).values
    print("=== spare-crossbar remap ===")
    print(f"remapped          : crossbar {victim} -> spare {spare} in "
          f"{remap_ns / 1e3:.1f} us, values identical: "
          f"{bool(np.array_equal(before, after))}")
    wear = array.endurance.wear_report(top=1)
    print(f"wear              : {wear['total_writes']} writes across "
          f"{wear['units_tracked']} crossbars, hottest at "
          f"{wear['max_wear_fraction']:.1e} of endurance, "
          f"{array.spares_remaining} spares left")

    # -- 2. scrub: detect silent stuck cells, remap, quarantine -------
    stuck = FaultPlan(
        [FaultEvent(t_ns=0.0, kind="stuck_cells", target="shard0",
                    params={"fraction": 0.05, "stuck_to": 0})],
        seed=11,
    )
    manager = ShardManager(
        data, N_SHARDS, replication=REPLICATION, fault_plan=stuck,
        spare_crossbars=SPARES,
        recovery=RecoveryPolicy(quarantine_probes=2),
    )
    ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
    ctrl.advance(0.0, 1e7)       # idle windows: the scrubber sweeps
    ctrl.heal(2e7)               # finish any queued repair work
    events = ctrl.drain_events()
    kinds = sorted({e["kind"] for e in events})
    detect = next(e for e in events if e["kind"] == "detect" and e["faults"])
    report = ctrl.report()
    print("\n=== background scrub (5% of shard0 stuck at 0) ===")
    print(f"timeline          : {', '.join(kinds)}")
    print(f"detected          : shard{detect['shard']} at "
          f"{detect['t_ns'] / 1e6:.2f} ms (period 1.00 ms), "
          f"{report['scrub']['probes']} probes fired")
    print(f"repaired          : {report['remaps']} crossbars remapped in "
          f"{report['remap_ns'] / 1e3:.1f} us, shard statuses "
          f"{[s['status'] for s in manager.health.snapshot(2e7)]}")
    healed = [manager.knn(q, k=K) for q in queries]
    exact = all(
        np.array_equal(a.indices, r.indices)
        and np.array_equal(a.scores, r.scores)
        for a, r in zip(healed, reference)
    )
    print(f"answers           : bit-identical after remap: {exact}; "
          f"clean probes re-admitted shard0: statuses now "
          f"{[s['status'] for s in manager.health.snapshot(3e7)]}")

    # -- 3. re-replicate a crashed shard's chunks ---------------------
    crash = FaultPlan(
        [FaultEvent(t_ns=0.0, kind="shard_crash", target="shard1")]
    )
    lossy = ShardManager(
        data, N_SHARDS, replication=REPLICATION, fault_plan=crash,
        spare_crossbars=SPARES,
    )
    ctrl = RepairController(
        lossy, RepairPolicy(scrub_period_ns=1e6,
                            repair_bandwidth_bytes_per_s=1e9),
    )
    lossy.knn(queries[0], k=K)   # touch the dead shard: crash detected
    degraded_counts = lossy.replica_counts()
    ctrl.advance(0.0, 1e7)
    ctrl.heal(2e7)
    report = ctrl.report()
    print("\n=== re-replication (shard1 killed) ===")
    print(f"replicas          : {degraded_counts} -> "
          f"{report['replica_counts']} "
          f"({report['rereplications']} chunks, "
          f"{report['rereplicated_bytes'] / 1024:.0f} KiB copied under "
          "the bandwidth budget)")

    # -- 4. self-healing service vs. failover-only --------------------
    tenants = [
        TenantSpec("batch", workload="near", k=K),
        TenantSpec("interactive", workload="uniform", k=K),
    ]

    def serve(plan, scrub_period_ns):
        mgr = ShardManager(
            data, N_SHARDS, replication=REPLICATION, fault_plan=plan,
            spare_crossbars=SPARES,
            recovery=RecoveryPolicy(quarantine_probes=2),
        )
        repair = None
        if scrub_period_ns is not None:
            repair = RepairController(
                mgr, RepairPolicy(scrub_period_ns=scrub_period_ns)
            )
        service = QueryService(
            mgr, tenants, max_batch=4, queue_capacity=64,
            policy="reject", tracker=SLOTracker(), repair=repair,
        )
        # light load on purpose: repair is background work, it needs
        # idle windows (simulated time is free, so the long horizon
        # costs no wall-clock)
        driver = WorkloadDriver(data, tenants, seed=1234)
        service.run(driver.open_loop(50.0, 40, arrival="poisson"))
        return service.summary()

    horizon = 40 / 50.0 * 1e9
    plan = FaultPlan.sustained(N_SHARDS, horizon, seed=3,
                               stuck_shards=2, kill_shards=1)
    clean_run = serve(None, None)
    baseline = serve(plan, None)             # PR-4 failover only
    healed_run = serve(plan, horizon / 8)    # full repair loop
    print("\n=== service under sustained silent faults ===")
    for event in plan.describe():
        print(f"  t={event['t_ns'] / 1e6:6.1f} ms  {event['kind']:12s} "
              f"on {event['target']}")
    print(f"degraded chunks   : failover-only "
          f"{baseline['recovery']['degraded_chunks']}, self-healing "
          f"{healed_run['recovery']['degraded_chunks']} "
          f"(clean {clean_run['recovery']['degraded_chunks']})")
    repair = healed_run["repair"]
    print(f"repair loop       : {repair['detections']} detections, "
          f"{repair['remaps']} remaps, {repair['rereplications']} "
          f"re-replications, replicas {repair['replica_counts']}")
    statuses = " ".join(
        "shard{shard}={status}".format(**s) for s in healed_run["health"]
    )
    print(f"health            : {statuses}, "
          f"MTTR {healed_run['mttr_ns'] / 1e6:.1f} ms")
    print(f"repair activity   : {healed_run['repair_activity']}")
    print("exactness         : benchmarks/bench_repair.py replays this "
          "trace and asserts every completed response is bit-identical "
          "to the fault-free run")


if __name__ == "__main__":
    main()
