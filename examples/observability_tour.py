"""Observability tour: tracing, burn-rate alerts and critical paths.

Walks the ``repro.observability`` surface over a chaotic serving run:

1. drive bursty multi-tenant traffic through a replicated 4-shard
   :class:`QueryService` while a seeded chaos plan kills a shard and
   corrupts waves, with the repair controller healing behind it — all
   under a telemetry session, so every request exports a full causal
   span tree (admission -> queue -> dispatch -> shard waves -> gather,
   including failover retries and degraded recomputes);
2. watch the :class:`LiveReport` dashboard and the multi-window
   :class:`BurnRateMonitor` as the error budget burns during the
   outage (and stays quiet once the fleet heals);
3. ask the critical-path analyzer *why the slowest request was slow* —
   per-segment latency attribution that sums exactly to the observed
   latency — and export the run as a Chrome trace, a metrics JSONL and
   a Prometheus snapshot with exemplar trace ids.

The same experiment is available without code via the CLI::

    python -m repro serve --chaos --repair --live-report \
        --trace-out serve.trace.json --prom-out serve.prom

    python examples/observability_tour.py
"""

from __future__ import annotations

from repro import make_dataset
from repro.faults import FaultPlan
from repro.observability import (
    BurnRateMonitor,
    LiveReport,
    format_breakdown,
    orphan_spans,
    request_breakdowns,
    request_roots,
    slowest_request,
)
from repro.repair import RepairController, RepairPolicy
from repro.serving import (
    QueryService,
    ShardManager,
    TenantSpec,
    WorkloadDriver,
)
from repro.telemetry import (
    chrome_trace_events,
    prometheus_snapshot,
    telemetry_session,
    write_chrome_trace,
    write_metrics_jsonl,
)


def main() -> None:
    data = make_dataset("MSD", n=1500, seed=0)
    tenants = [
        TenantSpec("analytics", workload="near", k=10),
        TenantSpec("interactive", workload="uniform", k=5),
    ]
    n_requests = 150
    rate_qps = 120_000.0
    horizon_ns = n_requests / rate_qps * 1e9
    plan = FaultPlan.chaos(4, horizon_ns=horizon_ns, seed=7)
    requests = WorkloadDriver(data, tenants, seed=42).open_loop(
        rate_qps, n_requests, arrival="bursty"
    )

    monitor = BurnRateMonitor(base_window_ns=200_000.0)
    live = LiveReport(period_ns=250_000.0)
    with telemetry_session() as tele:
        manager = ShardManager(
            data, n_shards=4, replication=2, fault_plan=plan
        )
        service = QueryService(
            manager,
            tenants,
            max_batch=8,
            queue_capacity=32,
            policy="reject",
            repair=RepairController(manager, RepairPolicy()),
            monitor=monitor,
            live_report=live,
        )
        responses = service.run(requests)
        events = chrome_trace_events(tele)

        summary = service.summary()
        print(f"\ncompleted      : {summary['completed']} "
              f"({summary['degraded']} degraded), shed {summary['shed']}")

        # -- every terminal response has a whole, parented span tree --
        roots = request_roots(events)
        assert len(roots) == len(responses)
        assert orphan_spans(events) == []
        worst_residual = max(
            abs(b["residual_ns"]) for b in request_breakdowns(events)
        )
        print(f"span trees     : {len(roots)} roots, 0 orphans, "
              f"max segment-sum residual {worst_residual:.2e} ns")

        # -- the error budget burned during the outage ----------------
        print("\nalerts:")
        for alert in monitor.alerts:
            print(f"  [{alert['severity']}] {alert['objective']}/"
                  f"{alert['rule']} burn={alert['burn_rate']:.1f}x "
                  f"at t={alert['t_ns'] / 1e6:.2f} ms")
        if not monitor.alerts:
            print("  none")

        # -- why was the slowest request slow? ------------------------
        print("\nslowest request (critical path):")
        print(format_breakdown(slowest_request(events)))

        # -- export everything ----------------------------------------
        write_chrome_trace(tele, "observability_tour.trace.json")
        write_metrics_jsonl(tele, "observability_tour.metrics.jsonl")
        snapshot = prometheus_snapshot(tele)
        exemplars = sum(1 for line in snapshot.splitlines() if "# {" in line)
        with open("observability_tour.prom", "w", encoding="utf-8") as fh:
            fh.write(snapshot)
        print(f"\nexported trace/metrics/prom "
              f"({len(snapshot.splitlines())} prom lines, "
              f"{exemplars} exemplar-linked)")


if __name__ == "__main__":
    main()
