"""DR tour: correlated outages — the rail dies, the answers don't.

Walks the disaster-recovery ladder of ``repro.hardware`` +
``repro.serving`` + ``repro.checkpoint`` (DESIGN.md section 15):

1. **the tree** — map an 8-shard fleet onto its physical containment
   tree (shards -> boards -> channels -> power domains) and read each
   domain's blast radius;
2. **placement** — compare ring replica placement with
   failure-domain-aware spread placement: same hardware, same
   replication, very different at-risk accounting;
3. **outage** — kill one whole power rail at the same instant
   (:meth:`FaultPlan.domain_outage`) under both placements and watch
   spread keep every request on the full-fidelity path while ring
   degrades — with every completed answer still bit-identical to a
   clean single-array oracle either way;
4. **checkpoint** — serve, snapshot (atomic write-then-rename,
   SHA-256 everywhere), crash, restore, and finish the trace with
   answers bit-identical to a twin that never crashed.

The same experiment is available without code via the CLI::

    python -m repro serve --shards 8 --replication 2 \
        --topology 2x2x1 --domain-outage --checkpoint ck.npz
    python -m repro serve --restore ck.npz

    python examples/dr_tour.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.checkpoint import (
    restore_manager,
    verify_checkpoint,
    write_checkpoint,
)
from repro.faults import FaultPlan
from repro.hardware import DOMAIN_LEVELS, FailureDomainTopology
from repro.serving import ShardManager

HORIZON_NS = 1.5e7


def main() -> None:
    rng = np.random.default_rng(0)
    data = rng.random((1024, 48))
    queries = rng.normal(size=(60, 48))
    clean = ShardManager(data, n_shards=1)
    reference = [clean.knn(q, k=10) for q in queries]

    # -- 1. the containment tree -------------------------------------
    topology = FailureDomainTopology(
        n_shards=8,
        shards_per_board=2,
        boards_per_channel=2,
        channels_per_power_domain=1,
    )
    print("failure-domain tree (8 shards, 2 per board, 2 boards per")
    print("channel, 1 channel per power rail):")
    for level in DOMAIN_LEVELS:
        radii = [
            f"{level}{d}={list(topology.shards_in(level, d))}"
            for d in range(topology.n_domains(level))
        ]
        print(f"  {level:<8} {' '.join(radii)}")

    # -- 2. placement: ring vs spread ---------------------------------
    ring = ShardManager(
        data, 8, replication=2, topology=topology, spread=False
    )
    spread = ShardManager(data, 8, replication=2, topology=topology)
    print("\nreplica placement at equal hardware (x2 replication):")
    for name, manager in (("ring", ring), ("spread", spread)):
        report = manager.spread_report()
        print(
            f"  {name:<7} replicas={manager.replicas}  "
            f"at-risk={report['n_at_risk']}/{manager.n_chunks} "
            f"min_spread={report['min_spread']}"
        )
    print(
        "  ring puts chunk 0 on shards (0, 1) — one board, one rail; "
        "spread\n  pairs each board with the opposite rail, so no "
        "single domain\n  holds every copy of anything"
    )

    # -- 3. one power rail dies, both placements serve ----------------
    plan = FaultPlan.domain_outage(
        topology, HORIZON_NS, seed=11, outage_domains=1, level="power"
    )
    victims = sorted(
        e.target for e in plan.events if e.kind == "shard_crash"
    )
    print(f"\ndomain outage (seed 11): {', '.join(victims)} all die at "
          f"{plan.events[0].t_ns / 1e6:.1f}ms")

    def serve(manager, start=0, stop=None, t=0.0):
        served, full, exact = [], 0, True
        for i, q in enumerate(queries[start:stop], start=start):
            answers, timing = manager.knn_batch(
                np.atleast_2d(q), 10, now_ns=t
            )
            a, ref = answers[0], reference[i]
            served.append(a)
            full += 0 if a.degraded else 1
            exact = exact and (
                a.indices.tolist() == ref.indices.tolist()
                and a.scores.tolist() == ref.scores.tolist()
            )
            t += timing.service_ns + HORIZON_NS / (len(queries) + 1)
        return served, full, exact, t

    for name, spread_flag in (("ring", False), ("spread", True)):
        manager = ShardManager(
            data, 8, replication=2, topology=topology,
            spread=spread_flag, fault_plan=plan,
        )
        served, full, exact, _ = serve(manager)
        print(
            f"  {name:<7} full-fidelity {full}/{len(served)}  "
            f"bit-exact={exact}"
        )

    # -- 4. checkpoint, crash, restore --------------------------------
    twin = ShardManager(data, 8, replication=2, topology=topology)
    manager = ShardManager(data, 8, replication=2, topology=topology)
    half = len(queries) // 2
    _, _, _, t_crash = serve(manager, stop=half)
    serve(twin, stop=half)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "service.ck.npz")
        write_checkpoint(manager, path, t_ns=t_crash)
        report = verify_checkpoint(path)
        print(
            f"\ncheckpoint after {half} requests: "
            f"{report['hashes_verified']} arrays verified, "
            f"recovery point {report['t_ns'] / 1e6:.3f}ms"
        )
        del manager  # the crash: the process is gone
        restored = restore_manager(path)
    after, _, _, _ = serve(restored, start=half, t=t_crash)
    expected, _, _, _ = serve(twin, start=half, t=t_crash)
    mismatches = sum(
        1
        for a, b in zip(after, expected)
        if a.indices.tolist() != b.indices.tolist()
        or a.scores.tolist() != b.scores.tolist()
    )
    print(
        f"restored service finished the trace: {len(after)} answers, "
        f"{mismatches} mismatches vs the uninterrupted twin "
        f"(recovery point {restored.last_checkpoint_ns / 1e6:.3f}ms)"
    )


if __name__ == "__main__":
    main()
