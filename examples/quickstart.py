"""Quickstart: accelerate kNN and k-means with simulated ReRAM PIM.

Runs the paper's full pipeline on a synthetic MSD-like dataset:
profile the baseline, build the PIM-optimized variant, verify the
results are identical, and report the simulated speedup.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PIMAccelerator, make_dataset, make_queries


def main() -> None:
    # a scaled stand-in for the Million Song Dataset (420-d features)
    data = make_dataset("MSD", n=1500, seed=0)
    queries = make_queries("MSD", data, n_queries=5)
    accelerator = PIMAccelerator()

    print("=== kNN classification (Standard -> Standard-PIM) ===")
    report = accelerator.accelerate_knn("Standard", data, queries, k=10)
    print(f"baseline time  : {report.baseline.total_time_ms:.3f} ms")
    print(f"PIM time       : {report.optimized.total_time_ms:.3f} ms")
    print(f"speedup        : {report.speedup:.1f}x "
          f"(oracle limit {report.oracle_speedup:.1f}x)")
    print(f"results exact  : {report.results_match}")
    print(f"bound plan     : {' + '.join(report.plan)}")

    print("\n=== k-means clustering (Standard -> Standard-PIM) ===")
    report = accelerator.accelerate_kmeans(
        "Standard", data, k=16, max_iters=8
    )
    print(f"baseline time  : {report.baseline.total_time_ms:.3f} ms")
    print(f"PIM time       : {report.optimized.total_time_ms:.3f} ms")
    print(f"speedup        : {report.speedup:.1f}x "
          f"(oracle limit {report.oracle_speedup:.1f}x)")
    print(f"same clustering: {report.results_match}")

    print("\n=== where does the baseline's time go? (paper Fig. 5/6) ===")
    fractions = report.baseline.component_fractions()
    print("  hardware components:",
          ", ".join(f"{k}={v * 100:.0f}%" for k, v in fractions.items()))
    functions = report.baseline.function_fractions()
    print("  functions          :",
          ", ".join(f"{k}={v * 100:.0f}%" for k, v in functions.items()))


if __name__ == "__main__":
    main()
