"""Execution-plan tuning walkthrough (paper Sections IV + V-C + V-D).

Follows the framework end to end on the FNN kNN algorithm:

1. profile the baseline to find the bottleneck function (Section IV);
2. size the compressed dimensionality with Theorem 4 (Section V-C);
3. measure standalone pruning ratios and enumerate all 2^L execution
   plans with the Eq. 13 transfer model (Section V-D);
4. run the default plan and the optimized plan and compare.

    python examples/plan_tuning.py
"""

from __future__ import annotations

from repro.bounds.ed import FNNBound
from repro.core.memory_manager import choose_fnn_segments
from repro.core.planner import ExecutionPlanner, standalone_pruning_ratios
from repro.core.profiler import profile_knn
from repro.data.catalog import make_dataset, make_queries
from repro.hardware.config import pim_platform
from repro.hardware.controller import PIMController
from repro.mining.knn import FNNKNN, FNNPIMKNN, FNNPIMOptimizeKNN, StandardKNN

K = 10
#: A PIM array sized so Theorem 4 must compress (as at paper scale).
PIM_BYTES = 1536 * 1024


def main() -> None:
    data = make_dataset("MSD", n=1500, seed=0)
    queries = make_queries("MSD", data, n_queries=5)
    n, dims = data.shape

    print("step 1 — profile the baseline (Section IV)")
    baseline = FNNKNN(dims).fit(data)
    profile = profile_knn(baseline, queries, K)
    for fn, share in sorted(
        profile.function_fractions().items(), key=lambda kv: -kv[1]
    ):
        print(f"    {fn:<14} {share * 100:5.1f}% of CPU time")
    print(f"    PIM-oracle speedup limit: {profile.oracle_speedup:.1f}x")

    print("\nstep 2 — size the PIM representation (Theorem 4)")
    platform = pim_platform(pim_capacity_bytes=PIM_BYTES)
    s = choose_fnn_segments(n, dims, platform.pim)
    print(f"    array of {platform.pim.num_crossbars} crossbars "
          f"-> compressed segments s = {s} (of d = {dims})")

    print("\nstep 3 — enumerate execution plans (Eq. 13)")
    controller = PIMController(platform)
    default_pim = FNNPIMKNN(
        dims, n, controller=controller, n_segments=s
    ).fit(data)
    originals = [FNNBound(level) for level in default_pim.segment_ladder]
    for bound in originals:
        bound.prepare(data)
    reference = StandardKNN().fit(data)
    candidates = [default_pim.bounds[0]] + originals
    ratios = standalone_pruning_ratios(
        candidates, reference, queries[:2], K
    )
    planner = ExecutionPlanner(candidates, n, dims)
    for plan in planner.enumerate_plans(ratios)[:4]:
        print(f"    {plan.transfer_bits / 8 / 1024:10.1f} KiB  "
              f"{' + '.join(plan.names)}")
    best = planner.best_plan(ratios)

    print("\nstep 4 — run default vs optimized plan")
    default_profile = profile_knn(default_pim, queries, K)
    optimized = FNNPIMOptimizeKNN(list(best.bounds), controller).fit(data)
    optimized_profile = profile_knn(optimized, queries, K)
    print(f"    FNN              : {profile.total_time_ms:8.3f} ms")
    print(f"    FNN-PIM (default): {default_profile.total_time_ms:8.3f} ms")
    print(f"    FNN-PIM-optimize : {optimized_profile.total_time_ms:8.3f} ms"
          f"   (plan: {' + '.join(best.names)})")


if __name__ == "__main__":
    main()
