"""Serving tour: a sharded PIM cluster answering multi-tenant queries.

Walks the full ``repro.serving`` stack on the simulated clock:

1. shard one dataset across 4 PIM arrays and show that scatter/gather
   kNN is *bit-identical* to a single array (placement changes timing,
   never answers);
2. stand up a :class:`QueryService` with two tenants, token-bucket
   admission and a bounded queue, then drive Poisson traffic through it
   with a :class:`WorkloadDriver`;
3. overload the same service to watch backpressure kick in (sheds,
   rising tail latency) and read the :class:`SLOTracker` dashboard:
   p50/p95/p99, throughput, shed rate, per-shard utilization.

The same experiment is available without code via the CLI::

    python -m repro serve --shards 4 --requests 200 \
        --trace-out serve.trace.json

    python examples/serving_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import make_dataset, make_queries
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)


def show_summary(title: str, summary: dict) -> None:
    print(f"\n=== {title} ===")
    print(f"offered        : {summary['offered']}")
    print(f"completed      : {summary['completed']} "
          f"({summary['degraded']} degraded)")
    print(f"shed           : {summary['shed']} "
          f"({summary['shed_rate']:.1%}) {summary['shed_reasons']}")
    print(f"throughput     : {summary['throughput_qps']:,.0f} qps")
    print(f"latency p50/p95/p99 : "
          f"{summary['p50_ns'] / 1e3:.1f} / "
          f"{summary['p95_ns'] / 1e3:.1f} / "
          f"{summary['p99_ns'] / 1e3:.1f} us")
    utils = " ".join(f"{u:.0%}" for u in summary["shard_utilization"])
    print(f"shard util     : {utils}")


def main() -> None:
    data = make_dataset("MSD", n=2000, seed=0)

    # -- 1. sharding is invisible to answers --------------------------
    single = ShardManager(data, n_shards=1)
    cluster = ShardManager(data, n_shards=4, placement="hash")
    query = make_queries("MSD", data, n_queries=1, seed=3)[0]
    a = single.knn(query, k=10)
    b = cluster.knn(query, k=10)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.scores, b.scores)
    print("4-shard hash placement == 1 array: "
          f"identical top-10 {[int(i) for i in a.indices[:4]]}...")
    sizes = cluster.shard_sizes()
    print(f"shard sizes    : {sizes} (hash placement)")

    tenants = [
        TenantSpec("analytics", workload="near", k=10, weight=1.0),
        TenantSpec("interactive", workload="uniform", k=5,
                   weight=2.0, deadline_ns=2e6),
    ]
    driver = WorkloadDriver(data, tenants, seed=42)

    # -- 2. healthy load: everything completes ------------------------
    service = QueryService(
        cluster, tenants, max_batch=8, queue_capacity=32,
        policy="reject", tracker=SLOTracker(),
    )
    service.run(driver.open_loop(rate_qps=40_000, n_requests=150))
    show_summary("healthy load (40k qps offered)", service.summary())

    # -- 3. overload: admission control + shedding take over ----------
    cluster.reset_busy()
    overloaded = QueryService(
        cluster, tenants, max_batch=8, queue_capacity=16,
        policy="drop_oldest", tracker=SLOTracker(),
    )
    burst = WorkloadDriver(data, tenants, seed=42)
    overloaded.run(
        burst.open_loop(rate_qps=400_000, n_requests=300,
                        arrival="bursty", burstiness=6.0)
    )
    show_summary("10x overload, bursty arrivals, drop-oldest queue",
                 overloaded.summary())

    # -- closed loop: clients wait for answers ------------------------
    cluster.reset_busy()
    closed = QueryService(
        cluster, tenants, max_batch=8, tracker=SLOTracker(),
    )
    WorkloadDriver(data, tenants, seed=7).closed_loop(
        closed, n_clients=12, n_requests=120, think_ns=5e5
    )
    show_summary("closed loop, 12 clients", closed.summary())


if __name__ == "__main__":
    main()
