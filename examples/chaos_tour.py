"""Chaos tour: gray failures — slow is the new broken.

Walks the gray-failure defense ladder of ``repro.faults`` +
``repro.serving`` (DESIGN.md section 14):

1. **gray weather** — generate a seeded
   :meth:`FaultPlan.gray_chaos` plan (sustained straggler,
   intermittent slowdown, flaky host<->shard link) and show that none
   of it can change an answer, only its timing;
2. **detect** — serve a trace under a straggler and watch the
   :class:`LatencyOutlierDetector` grow suspicion on exactly the
   slow shard until it is ejected (demoted, never blocked);
3. **hedge** — compare the straggler's tail latency with the
   defenses off and on: adaptive p95-triggered hedges race a duplicate
   wave on a healthy replica, cancel on first win, and stay within a
   global :class:`HedgeBudget`;
4. **campaign** — run the full :class:`ChaosCampaign` A/B (five
   scenarios x defenses on/off at equal hardware) and read the
   timeline: zero exactness violations anywhere, p99 bought back
   under the straggler, hedge rate <= budget.

The same experiment is available without code via the CLI::

    python -m repro serve --shards 4 --replication 2 \
        --gray-chaos --outlier-ejection --hedge-budget 0.3

    python examples/chaos_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.faults import ChaosCampaign, FaultEvent, FaultPlan
from repro.serving import RecoveryPolicy, ShardManager

HORIZON_NS = 1.5e7


def main() -> None:
    # a low-dimensional workload keeps the waves device-dominated, so
    # the gray weather (which scales PIM time) is what moves the tail
    rng = np.random.default_rng(0)
    data = rng.random((1024, 48))
    queries = rng.normal(size=(80, 48))
    clean = ShardManager(data, n_shards=1)
    reference = [clean.knn(q, k=10) for q in queries]

    # -- 1. gray weather: slow, flaky, never wrong --------------------
    plan = FaultPlan.gray_chaos(4, HORIZON_NS, seed=11)
    print("gray fault plan (seed 11):")
    for event in plan.describe():
        window = (
            f"{event['t_ns'] / 1e6:.1f}-"
            f"{(event['t_ns'] + (event['duration_ns'] or 0)) / 1e6:.1f}ms"
        )
        print(f"  {event['kind']:<18} {event['target']:<7} {window}")

    def serve(policy: RecoveryPolicy, fault_plan=None):
        manager = ShardManager(
            data, n_shards=4, replication=2,
            fault_plan=fault_plan, recovery=policy, seed=0,
        )
        latencies = []
        exact = True
        t = 0.0
        for q, ref in zip(queries, reference):
            answers, timing = manager.knn_batch(
                np.atleast_2d(q), 10, now_ns=t
            )
            latencies.append(timing.service_ns)
            exact = exact and (
                answers[0].indices.tolist() == ref.indices.tolist()
                and answers[0].scores.tolist() == ref.scores.tolist()
            )
            t += timing.service_ns + HORIZON_NS / (len(queries) + 1)
        return manager, np.asarray(latencies), exact

    # -- 2. detect: suspicion lands on the straggler ------------------
    straggler = FaultPlan(
        (
            FaultEvent(
                t_ns=0.2 * HORIZON_NS,
                kind="slow_shard",
                target="shard1",
                duration_ns=0.6 * HORIZON_NS,
                params={"factor": 12.0},
            ),
        ),
        seed=11,
    )
    defended = RecoveryPolicy(
        outlier_ejection=True, adaptive_hedge=True, hedge_budget=0.3
    )
    manager, lat_on, exact_on = serve(defended, straggler)
    print("\ndetector verdicts under a 12x straggler on shard1:")
    for entry in manager.health.snapshot(HORIZON_NS):
        p95 = entry["observed_p95_ns"]
        p95_txt = f"{p95 / 1e3:.1f}us" if p95 is not None else "n/a"
        print(
            f"  shard{entry['shard']}: {entry['status']:<8} "
            f"suspicion={entry['suspicion']:.2f} "
            f"ejections={entry['ejections']} p95={p95_txt}"
        )

    # -- 3. hedge: the tail with defenses off vs on -------------------
    _, lat_off, exact_off = serve(RecoveryPolicy(), straggler)
    p99_off = float(np.percentile(lat_off, 99))
    p99_on = float(np.percentile(lat_on, 99))
    print("\nstraggler tail latency (same traffic, same hardware):")
    print(f"  defenses off : p99 {p99_off / 1e3:.1f} us")
    print(f"  defenses on  : p99 {p99_on / 1e3:.1f} us "
          f"({1 - p99_on / p99_off:+.0%})")
    print(f"  bit-exact    : off={exact_off} on={exact_on}")

    # -- 4. the full campaign -----------------------------------------
    campaign = ChaosCampaign(
        data, n_shards=4, replication=2, n_requests=60,
        horizon_ns=HORIZON_NS, hedge_budget=0.3, seed=0,
    )
    result = campaign.run()
    print("\nchaos campaign (5 scenarios x defenses off/on):")
    for scenario in result["scenarios"]:
        off = scenario["arms"]["detector_off"]
        on = scenario["arms"]["detector_on"]
        print(
            f"  {scenario['name']:<16} "
            f"p99 {off['latency_p99_ns'] / 1e3:7.1f} -> "
            f"{on['latency_p99_ns'] / 1e3:7.1f} us  "
            f"violations={off['exactness_violations']}"
            f"+{on['exactness_violations']}  "
            f"hedge_rate={on['hedge_rate']:.3f}"
        )


if __name__ == "__main__":
    main()
