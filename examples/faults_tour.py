"""Faults tour: break the hardware, keep the answers bit-exact.

Walks the robustness ladder of ``repro.faults`` + ``repro.serving``:

1. **inject** — wrap a PIM array in a :class:`FaultyPIMArray` and watch
   a seeded fault plan corrupt its waves;
2. **detect** — program a residue checksum row
   (:mod:`repro.faults.integrity`) and catch every corrupted wave with
   one host-side modular sum;
3. **fail over** — replicate chunks across shards, crash one mid-plan,
   and show the merged top-k is still bit-identical to a fault-free
   single array;
4. **degrade** — kill *every* replica of a chunk and watch the manager
   fall back to host-side exact recompute (slower, flagged
   ``degraded``, same bits);
5. **chaos** — run a full :class:`QueryService` trace under
   ``FaultPlan.chaos`` and read the recovery dashboard: availability,
   retry rate, MTTR, and what every completed answer has in common
   with the clean run (everything).

The same chaos experiment is available without code via the CLI::

    python -m repro serve --shards 4 --replication 2 --chaos

    python examples/faults_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import make_dataset, make_queries
from repro.faults import (
    FaultEvent,
    FaultPlan,
    FaultyPIMArray,
    append_checksum_row,
    verify_wave_residues,
)
from repro.hardware.pim_array import PIMArray
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)


def main() -> None:
    data = make_dataset("MSD", n=1500, seed=0)
    queries = make_queries("MSD", data, n_queries=3, seed=3)
    clean = ShardManager(data, n_shards=1)
    reference = [clean.knn(q, k=10) for q in queries]

    # -- 1+2. inject corruption, detect it with the checksum row ------
    quantized = clean.quantizer.quantize(data[:64]).integers
    bits = clean.hardware.pim.operand_bits
    array = PIMArray(clean.hardware)
    array.program_matrix("demo", append_checksum_row(quantized, bits))
    plan = FaultPlan(
        [FaultEvent(t_ns=0.0, kind="wave_corrupt", target="array")],
        seed=11,
    )
    faulty = FaultyPIMArray(array, plan)
    wave = faulty.query_many("demo", clean.quantizer.quantize(queries).integers)
    flags = verify_wave_residues(wave.values, bits)
    print("=== inject + detect ===")
    print(f"corrupted waves   : {faulty.injected['wave_corrupt']} injected, "
          f"{int(flags.size - flags.sum())}/{flags.size} flagged by the "
          "residue check")

    # -- 3. crash a shard; replicas keep answers bit-identical --------
    crash = FaultPlan(
        [FaultEvent(t_ns=0.0, kind="shard_crash", target="shard1")]
    )
    replicated = ShardManager(data, 4, replication=2, fault_plan=crash)
    answers, timing = replicated.knn_batch(queries, 10)
    assert all(
        np.array_equal(a.indices, r.indices)
        and np.array_equal(a.scores, r.scores)
        for a, r in zip(answers, reference)
    )
    print("\n=== crash + failover (replication=2) ===")
    print(f"shard1 dead       : {replicated.health.dead_shards == [1]}")
    print(f"recovery          : {timing.crashes} crash detected, "
          f"{timing.failovers} failover(s), answers bit-identical")

    # -- 4. no replica left: degraded exact recompute -----------------
    lone = ShardManager(data, 4, replication=1, fault_plan=crash)
    answers, timing = lone.knn_batch(queries, 10)
    assert all(
        np.array_equal(a.indices, r.indices)
        and np.array_equal(a.scores, r.scores)
        for a, r in zip(answers, reference)
    )
    print("\n=== lost chunk -> degraded exact recompute ===")
    print(f"degraded chunks   : {timing.degraded_chunks} "
          f"(host recompute {timing.degraded_cpu_ns / 1e3:.1f} us), "
          f"answers still bit-identical, flagged "
          f"degraded={answers[0].degraded}")

    # -- 5. full chaos run through the service ------------------------
    tenants = [
        TenantSpec("analytics", workload="near", k=10),
        TenantSpec("interactive", workload="uniform", k=5),
    ]
    chaos = FaultPlan.chaos(n_shards=4, horizon_ns=4e6, seed=7)
    cluster = ShardManager(data, 4, replication=2, fault_plan=chaos)
    service = QueryService(
        cluster, tenants, max_batch=8, queue_capacity=64,
        policy="reject", tracker=SLOTracker(),
    )
    driver = WorkloadDriver(data, tenants, seed=42)
    responses = service.run(driver.open_loop(rate_qps=40_000, n_requests=150))
    summary = service.summary()
    recovery = summary["recovery"]
    print("\n=== chaos run (seeded: 1 shard killed, 1 corrupting) ===")
    for event in chaos.describe():
        window = (
            "permanent" if event["duration_ns"] is None
            else f"for {event['duration_ns'] / 1e6:.1f} ms"
        )
        print(f"  t={event['t_ns'] / 1e6:6.2f} ms  {event['kind']:13s} "
              f"on {event['target']} ({window})")
    print(f"availability      : {summary['availability']:.1%} "
          f"({summary['completed']}/{summary['offered']} completed)")
    print(f"retry rate        : {summary['retry_rate']:.1%} of "
          f"{recovery['attempts']} attempts, MTTR "
          f"{summary['mttr_ns'] / 1e6:.2f} ms")
    print(f"recovery counters : {recovery['crashes']} crashes, "
          f"{recovery['timeouts']} timeouts, "
          f"{recovery['corrupt_detected']} corrupt waves detected, "
          f"{recovery['failovers']} failovers, "
          f"{recovery['degraded_chunks']} degraded chunks")
    print(f"dead shards       : {cluster.health.dead_shards}")
    completed = sum(1 for r in responses if r.ok)
    print(f"completed answers : {completed} — every one bit-identical to "
          "the clean run (benchmarks/bench_faults.py asserts this per "
          "response against a fault-free replay)")


if __name__ == "__main__":
    main()
