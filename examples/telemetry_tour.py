"""Telemetry tour: trace the simulated PIM stack into Perfetto.

Runs a kNN acceleration with the telemetry layer enabled, then shows
the three ways to look at what it recorded:

1. a span rollup on the *simulated* clock (where the nanoseconds the
   profiler reports actually went: waves, programming, host CPU);
2. the metrics registry (waves, batch flushes, prune ratios, buffer
   occupancy) as a fixed-width table;
3. the exported artifacts — ``tour.trace.json`` loads at
   https://ui.perfetto.dev (or chrome://tracing) and
   ``tour.metrics.jsonl`` is one JSON object per sample/summary.

The same capture is available without code via the CLI::

    python -m repro knn --pim --trace-out run.trace.json \
        --metrics-out run.metrics.jsonl

    python examples/telemetry_tour.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import PIMAccelerator, make_dataset, make_queries
from repro.telemetry import (
    summarize_metrics,
    telemetry_session,
    write_chrome_trace,
    write_metrics_jsonl,
)


def main() -> None:
    data = make_dataset("MSD", n=800, seed=0)
    queries = make_queries("MSD", data, n_queries=4)

    # everything inside the session reports to `tele`; outside it the
    # null recorder is active and instrumentation costs nothing
    with telemetry_session() as tele:
        report = PIMAccelerator().accelerate_knn(
            "Standard", data, queries, k=10
        )

    print("=== run outcome ===")
    print(f"speedup        : {report.speedup:.1f}x "
          f"(exact: {report.results_match})")

    print("\n=== simulated time by span category ===")
    by_category: dict[str, tuple[int, float]] = defaultdict(
        lambda: (0, 0.0)
    )
    for span in tele.finished_spans():
        count, total = by_category[span.category]
        by_category[span.category] = (count + 1, total + span.duration_ns)
    for category, (count, total) in sorted(
        by_category.items(), key=lambda kv: -kv[1][1]
    ):
        print(f"{category:15s}: {count:5d} spans, {total / 1e6:9.4f} ms")
    print(f"{'pim_dispatch total':20s} = "
          f"{tele.span_time_ns('pim_dispatch') / 1e6:.4f} ms "
          "(== the profiler's PIM wave time)")

    print("\n=== metrics registry ===")
    print(summarize_metrics(tele))

    n_events = write_chrome_trace(tele, "tour.trace.json")
    n_lines = write_metrics_jsonl(tele, "tour.metrics.jsonl")
    print(f"\nwrote tour.trace.json ({n_events} events) — open it at "
          "https://ui.perfetto.dev")
    print(f"wrote tour.metrics.jsonl ({n_lines} lines)")


if __name__ == "__main__":
    main()
