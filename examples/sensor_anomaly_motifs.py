"""Sensor-stream mining: motifs and outliers on PIM.

A monitoring pipeline over one long sensor stream, combining two of the
paper's Section II-C mining tasks:

1. **motif discovery** finds the stream's dominant repeated pattern
   (e.g. a machine cycle) — the closest pair of subsequences;
2. **outlier detection** over the same sliding windows flags the
   segments least like anything else (faults / anomalies).

Both tasks run on the CPU baseline and on the PIM-accelerated variant;
the results are identical, the exact-distance counts are not.

    python examples/sensor_anomaly_motifs.py
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.cost.model import CostModel
from repro.hardware.config import baseline_platform, pim_platform
from repro.mining.motif import (
    PIMMotifDiscovery,
    StandardMotifDiscovery,
    sliding_windows,
)
from repro.mining.outlier import PIMOutlierDetector, StandardOutlierDetector

WINDOW = 48
STREAM_LEN = 1000


def make_stream(seed: int = 0) -> np.ndarray:
    """A periodic machine signal with a planted repeat and two faults."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 24 * np.pi, STREAM_LEN)
    stream = np.sin(t) + 0.3 * np.sin(3.1 * t)
    stream += 0.08 * rng.standard_normal(STREAM_LEN)
    stream[150 : 150 + WINDOW] = stream[700 : 700 + WINDOW]  # exact repeat
    stream[384 : 384 + WINDOW] += 1.8 * rng.random(WINDOW)  # fault 1
    stream[864 : 864 + WINDOW] -= 1.8 * rng.random(WINDOW)  # fault 2
    return stream


def simulated_ms(counters, pim_ns: float, pim: bool) -> float:
    platform = pim_platform() if pim else baseline_platform()
    return (CostModel(platform).total_time_ns(counters) + pim_ns) / 1e6


def main() -> None:
    stream = make_stream()
    print(f"stream of {STREAM_LEN} samples, window {WINDOW}\n")

    # -- motifs ---------------------------------------------------------
    std_m = StandardMotifDiscovery(window=WINDOW).fit(stream).discover()
    pim_m = PIMMotifDiscovery(window=WINDOW).fit(stream).discover()
    assert pim_m.pair == std_m.pair

    # -- outliers over the same windows ----------------------------------
    # stride the windows so neighbours do not trivially overlap
    windows = sliding_windows(stream, WINDOW)[::WINDOW]
    std_o = (
        StandardOutlierDetector(n_neighbors=3, n_outliers=4)
        .fit(windows)
        .detect()
    )
    pim_o = (
        PIMOutlierDetector(n_neighbors=3, n_outliers=4)
        .fit(windows)
        .detect()
    )
    assert set(std_o.indices.tolist()) == set(pim_o.indices.tolist())

    rows = [
        [
            "motif discovery",
            f"pair {std_m.pair}",
            simulated_ms(std_m.counters, 0.0, pim=False),
            simulated_ms(pim_m.counters, pim_m.pim_time_ns, pim=True),
            f"{std_m.exact_computations} -> {pim_m.exact_computations}",
        ],
        [
            "outlier detection",
            f"windows {sorted((std_o.indices * WINDOW).tolist())}",
            simulated_ms(std_o.counters, 0.0, pim=False),
            simulated_ms(pim_o.counters, pim_o.pim_time_ns, pim=True),
            f"{std_o.exact_computations} -> {pim_o.exact_computations}",
        ],
    ]
    print(
        format_table(
            ["task", "finding", "CPU (ms)", "PIM (ms)", "exact EDs"],
            rows,
        )
    )
    print(
        "\nThe motif pair is the planted repeat at samples 150/700; the "
        "top outlier windows include the injected faults at samples 384 "
        "and 864. PIM finds the same answers from a fraction of the exact "
        "distance computations."
    )


if __name__ == "__main__":
    main()
