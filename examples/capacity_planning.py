"""Capacity planning: compression vs chunked re-programming.

A deployment question the paper's Section V-C answers by design rule:
given a PIM array of some size and a dataset that does not fit, should
you (a) compress the representation with Theorem 4 and program once, or
(b) split the dataset into chunks and re-program per query? This script
works through the decision for a range of array sizes, reporting the
Theorem 4 dimensionality, the per-query latency of both schemes, and
the projected device lifetime under chunking.

    python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.core.memory_manager import choose_fnn_segments
from repro.core.profiler import profile_knn
from repro.core.report import format_table
from repro.data.catalog import make_dataset, make_queries
from repro.errors import CapacityError
from repro.hardware.config import pim_platform
from repro.hardware.controller import PIMController
from repro.hardware.reprogramming import ChunkedDotProductEngine
from repro.mining.knn import StandardPIMKNN

CAPACITIES_KIB = [1024, 1536, 4096, 16384]
K = 10


def main() -> None:
    data = make_dataset("MSD", n=1500, seed=0)
    queries = make_queries("MSD", data, n_queries=3)
    n, dims = data.shape
    quantized = np.floor(data * 10**6).astype(np.int64)

    rows = []
    for kib in CAPACITIES_KIB:
        platform = pim_platform(pim_capacity_bytes=kib * 1024)

        # option (a): Theorem 4 compression, program once
        try:
            s = choose_fnn_segments(n, dims, platform.pim)
            algo = StandardPIMKNN(
                controller=PIMController(platform),
                n_segments=s if s < dims else None,
            ).fit(data)
            profile = profile_knn(algo, queries, K)
            compress_ms = profile.total_time_ms / len(queries)
            compress_desc = f"s={s}, {compress_ms:.3f} ms/query"
        except CapacityError:
            compress_desc = "does not fit"

        # option (b): chunked re-programming at full dimensionality
        engine = ChunkedDotProductEngine(platform)
        try:
            chunks = engine.load(quantized)
            for q in queries:
                engine.dot_products_all(
                    np.floor(q * 10**6).astype(np.int64)
                )
            chunk_desc = (
                f"{chunks} chunks, "
                f"{engine.amortized_query_time_ns() / 1e6:.3f} ms/query, "
                f"lifetime {engine.projected_lifetime_queries():.1e} q"
            )
        except CapacityError:
            chunk_desc = "not even one vector fits"

        rows.append([kib, compress_desc, chunk_desc])

    print(
        format_table(
            [
                "PIM capacity (KiB)",
                "(a) Theorem 4 compression",
                "(b) chunked re-programming",
            ],
            rows,
            title=f"Capacity planning for MSD-like {n}x{dims} (k={K})",
        )
    )
    print(
        "\nThe paper's rule reproduced: whenever compression fits at all "
        "it beats chunking on latency and never wears the device; "
        "chunking is the last resort for datasets below the s=1 floor."
    )


if __name__ == "__main__":
    main()
