"""Substrate tour: one workload, two PIM technologies, zero drift.

Walks the pluggable compute layer bottom-up:

1. program the same matrix into a ReRAM crossbar array and an HBM-PIM
   bank array and show the answers are bit-identical while the
   simulated nanoseconds (and the instruction mix) are not;
2. ask the capability descriptors what each backend *would* cost for
   two workload shapes, and watch the predicted winner flip;
3. serve a mixed fleet — crossbar and HBM-PIM shards behind one
   ShardManager — with the cost router steering each chunk's waves to
   the cheaper replica, and read the routing report;
4. repair across unlike backends: remap a worn HBM bank onto a spare
   and re-replicate a chunk from an HBM shard onto a crossbar shard,
   answers unchanged throughout.

    python examples/substrate_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.serving import ShardManager
from repro.substrate import (
    available_substrates,
    create_substrate,
    substrate_capabilities,
)

N_ROWS = 1024
DIMS = 24
K = 10
BATCH = 4


def main() -> None:
    rng = np.random.default_rng(11)

    # -- 1. one matrix, two devices, identical values -----------------
    matrix = rng.integers(0, 255, size=(N_ROWS, DIMS)).astype(np.int64)
    queries = rng.integers(0, 255, size=(BATCH, DIMS)).astype(np.int64)
    print(f"registered substrates: {available_substrates()}\n")
    results = {}
    for name in available_substrates():
        device = create_substrate(name)
        device.program_matrix("tour", matrix)
        results[name] = device.query_batch("tour", queries)
        line = (f"{name:<10} unit={device.unit_name:<8} "
                f"wave time {device.stats.pim_time_ns:10.1f} ns")
        if device.stats.extra:
            mix = ", ".join(
                f"{k.split('_')[0]}={int(v)}"
                for k, v in sorted(device.stats.extra.items())
            )
            line += f"  [{mix}]"
        print(line)
    a, b = (results[name].values for name in available_substrates())
    assert np.array_equal(a, b)
    print("=> identical accumulator values, different nanoseconds\n")

    # -- 2. capability descriptors predict the crossover --------------
    shapes = {"small wave": (256, 24, 4), "wide batch": (1024, 420, 16)}
    print(f"{'workload':<12} {'crossbar ns':>12} {'hbm_pim ns':>12}  winner")
    for label, (n, dims, batch) in shapes.items():
        costs = {
            name: substrate_capabilities(name).predict_query_ns(
                n, dims, batch
            )
            for name in available_substrates()
        }
        winner = min(costs, key=lambda name: costs[name])
        print(f"{label:<12} {costs['crossbar']:>12,.0f} "
              f"{costs['hbm_pim']:>12,.0f}  {winner}")
    print("=> bank MACs win small waves, crossbars win wide batches\n")

    # -- 3. a mixed fleet with cost-routed queries --------------------
    data = rng.random((N_ROWS, DIMS))
    fleet = ShardManager(
        data,
        n_shards=4,
        replication=2,
        substrates=["crossbar", "hbm_pim"] * 2,
    )
    baseline = ShardManager(data, n_shards=1)
    q = rng.random((BATCH, DIMS))
    want, _ = baseline.knn_batch(q, K)
    got, timing = fleet.knn_batch(q, K)
    for x, y in zip(want, got):
        assert np.array_equal(x.indices, y.indices)
        assert np.array_equal(x.scores, y.scores)
    report = fleet.routing_report()
    winners = [d["winner_substrate"] for d in report["decisions"]]
    print(f"mixed fleet    : substrates {report['substrates']}")
    print(f"routing        : objective={report['objective']}, "
          f"winners per chunk {winners}")
    print(f"service time   : {timing.service_ns:,.0f} ns, answers == "
          "single crossbar array\n")

    # -- 4. repair across unlike backends -----------------------------
    hbm = create_substrate("hbm_pim", spare_units=2)
    hbm.program_matrix("tour", matrix)
    before = hbm.query("tour", queries[0]).values
    victim = hbm.unit_ids_of("tour")[0]
    spare, ns = hbm.remap_unit(victim)
    assert np.array_equal(hbm.query("tour", queries[0]).values, before)
    print(f"bank remap     : bank {victim} -> spare {spare} in "
          f"{ns:,.0f} ns, values preserved")
    info = fleet.add_replica(1, 0)  # HBM-resident chunk onto a crossbar
    got2, _ = fleet.knn_batch(q, K)
    assert all(
        np.array_equal(x.indices, y.indices) for x, y in zip(want, got2)
    )
    print(f"re-replication : chunk 1 copied onto shard 0 "
          f"({info['rows']} rows, crossbar <- hbm_pim), answers intact")


if __name__ == "__main__":
    main()
